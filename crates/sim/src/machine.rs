//! The cycle-stepped TFlex machine: composition, distributed fetch,
//! dataflow execution, distributed commit, and flush protocols.
//!
//! ## Modeling notes (see DESIGN.md)
//!
//! * The **operand network** is a real contended mesh ([`clp_noc::Mesh`])
//!   — operand bandwidth is one of the two TFlex optimizations the paper
//!   calls out, so contention is modeled at link granularity.
//! * **Control messages** (fetch commands, hand-offs, completion
//!   notifications, commit handshakes) are charged analytic Manhattan-hop
//!   latencies without contention; with
//!   [`ProtocolTiming::Instant`](crate::ProtocolTiming) they cost one
//!   cycle, reproducing the idealized-handshake ablation of §6.4.
//! * Functional state (memory image, register values) is updated through
//!   speculation-safe structures (LSQ buffering, versioned registers), so
//!   every run checks end-to-end correctness against the IR interpreter.

use crate::config::{ProtocolTiming, SimConfig};
use crate::events::EventWheel;
use crate::fault::{CoreKill, FaultInjector};
use crate::regfile::{RegFile, RegRead};
use crate::stats::{CommitLatencyBreakdown, ComposeStats, ProcStats, RecoveryStats, RunStats};
use clp_isa::{Block, BlockAddr, BranchKind, EdgeProgram, Opcode, OpcodeClass, Reg, Target};
use clp_mem::{dbank_for, LoadResponse, LoadServe, MemorySystem, StoreResponse};
use clp_noc::{region_for, Mesh, NodeId, RegionError};
use clp_obs::{
    Bucket, FlushReason, IntervalSampler, ProcProfile, ProfileReport, SampleCounters,
    StatsSnapshot, TraceEvent, Tracer, TrendOptions, TrendRecorder, TrendReport,
};
use clp_predictor::{block_owner, ComposedPredictor, ExitOutcome, Prediction};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Identifies a logical processor within a [`Machine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub usize);

/// Failure to compose a logical processor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ComposeError {
    /// The requested region is invalid or does not fit.
    Region(RegionError),
    /// One of the requested cores already belongs to a processor.
    CoreBusy(usize),
    /// The workload passes more arguments than the `r1..=r8` argument
    /// registers can hold (the machine used to silently truncate these).
    TooManyArgs(usize),
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::Region(e) => write!(f, "{e}"),
            ComposeError::CoreBusy(c) => write!(f, "core {c} already composed"),
            ComposeError::TooManyArgs(n) => {
                write!(f, "{n} arguments exceed the 8 argument registers (r1..=r8)")
            }
        }
    }
}

impl std::error::Error for ComposeError {}

impl From<RegionError> for ComposeError {
    fn from(e: RegionError) -> Self {
        ComposeError::Region(e)
    }
}

/// Failure during a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The cycle budget was exhausted.
    CycleLimit(u64),
    /// The per-run deadline ([`SimConfig::deadline`](crate::SimConfig))
    /// was crossed and the watchdog aborted the run. Distinct from
    /// [`RunError::CycleLimit`] so callers can tell a policy kill (a job
    /// that outlived its budget and may deserve a retry with a larger
    /// one) from the safety net against simulator bugs.
    DeadlineExceeded {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// No forward progress for a long time (a protocol deadlock — this is
    /// a simulator bug if it ever fires).
    Deadlock {
        /// Cycle at which the stall was detected.
        cycle: u64,
    },
    /// The fault plan schedules a kill of a core that is not part of any
    /// composed processor (validated before the first cycle — a kill the
    /// machine could never observe is a configuration error, not a
    /// no-op).
    InvalidKill {
        /// The targeted core.
        core: usize,
    },
    /// The fault plan kills every core of a composed processor, leaving
    /// no survivor to run the recovery protocol.
    NoSurvivors {
        /// The doomed logical processor.
        proc: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::CycleLimit(n) => write!(f, "exceeded cycle budget of {n}"),
            RunError::DeadlineExceeded { budget } => {
                write!(f, "deadline kill: exceeded cycle deadline of {budget}")
            }
            RunError::Deadlock { cycle } => write!(f, "no progress near cycle {cycle}"),
            RunError::InvalidKill { core } => {
                write!(
                    f,
                    "scheduled kill targets core {core}, which is not composed"
                )
            }
            RunError::NoSurvivors { proc } => {
                write!(f, "scheduled kills leave proc{proc} with no surviving core")
            }
        }
    }
}

impl std::error::Error for RunError {}

// ---------------------------------------------------------------------------
// Profiling provenance (clp-prof)
// ---------------------------------------------------------------------------

/// Why a pending fetch exists. Recorded unconditionally (one byte per
/// fetch) and read only by the profiler, which maps the idle gap before
/// the block's fetch to a top-down bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum FetchReason {
    /// Program entry (first fetch after compose).
    #[default]
    Entry,
    /// Speculative owner-to-owner hand-off on the predicted chain.
    HandOff,
    /// Redirect after a next-block misprediction.
    Redirect,
    /// Refetch after a violation or overflow squash.
    Refetch,
    /// Non-speculative sequencing (single-block windows).
    Sequential,
    /// Resume after hard-fault recovery.
    Resume,
}

/// What kind of producer a last-arrival provenance edge points at.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum ProvKind {
    /// The instruction's own dispatch was the last arrival (all operands
    /// beat it into the window, or it has none).
    #[default]
    Dispatch,
    /// A dataflow producer (ALU/FPU result or null token).
    Exec,
    /// A register-read round trip at the owning bank.
    RegRead,
    /// A memory-system load reply.
    Load,
}

/// Last-arrival provenance carried alongside operand-class messages:
/// which instruction produced the value, where it departed from, when
/// the producer started (`origin`) and when the value left (`sent`).
///
/// Written on every path — a cheap `Copy` riding existing messages — but
/// never read by any scheduling decision, so runs with the profiler
/// disabled stay bit-identical.
#[derive(Clone, Copy, Debug, Default)]
struct Prov {
    kind: ProvKind,
    /// Producer instruction id within the block.
    inst: u8,
    /// Global core the value departed from (bank core for reads/loads).
    from: u8,
    /// Cycle the producer started (issue / read dispatch / load issue).
    origin: u64,
    /// Cycle the value left the producer and routing began.
    sent: u64,
    /// Load service class (0 = store forward, 1 = L1 hit, 2 = miss).
    aux: u8,
}

/// Per-block profiling state, allocated (one boxed struct per in-flight
/// block) only when profiling is enabled.
#[derive(Clone, Debug)]
struct BlkProf {
    reason: FetchReason,
    /// Per instruction: dispatch cycle.
    disp: Vec<u64>,
    /// Per instruction: cycle the last input arrived (became ready).
    ready: Vec<u64>,
    /// Per instruction: issue (fire) cycle.
    issue: Vec<u64>,
    /// Per instruction: the last-arrival edge that made it ready.
    edge: Vec<Prov>,
    /// Cycle the exit branch resolved at the owner.
    t_resolved: u64,
    /// Provenance of the exit branch message.
    bro_prov: Prov,
    /// Cycle the last output acknowledgment reached the owner.
    t_last_output: u64,
    /// Provenance of that last output.
    out_prov: Prov,
    /// Cycle the commit handshake started.
    t_commit_start: u64,
}

impl BlkProf {
    fn new(nops: usize, reason: FetchReason) -> Self {
        BlkProf {
            reason,
            disp: vec![0; nops],
            ready: vec![0; nops],
            issue: vec![0; nops],
            edge: vec![Prov::default(); nops],
            t_resolved: 0,
            bro_prov: Prov::default(),
            t_last_output: 0,
            out_prov: Prov::default(),
            t_commit_start: 0,
        }
    }
}

/// Machine-level profile accumulator (behind `Machine::enable_profiling`).
struct ProfAcc {
    per_proc: Vec<ProcProfile>,
    core_cycles: Vec<u64>,
    link_cycles: BTreeMap<(usize, usize), u64>,
    /// Per proc: end cycle of the previously committed block — the clip
    /// point of the commit-pull accounting.
    last_commit_end: Vec<u64>,
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum OpMsg {
    /// A dataflow operand (None = null token) for a consumer slot.
    Operand {
        proc: usize,
        seq: u64,
        target: Target,
        value: Option<u64>,
        prov: Prov,
    },
    /// Register-read request from an instruction's core to the bank.
    ReadReq {
        proc: usize,
        seq: u64,
        reg: Reg,
        targets: [Option<Target>; 2],
        prov: Prov,
    },
    /// Register write forwarded to its bank.
    WriteFwd {
        proc: usize,
        seq: u64,
        reg: Reg,
        value: Option<u64>,
        prov: Prov,
    },
    /// Memory request to a D-cache/LSQ bank.
    MemReq {
        proc: usize,
        seq: u64,
        lsid: u8,
        store: bool,
        addr: u64,
        size: u8,
        value: u64,
        targets: [Option<Target>; 2],
        prov: Prov,
    },
}

#[derive(Clone, Debug)]
enum Ev {
    /// Operand-class message delivered locally (same-core fast path, bank
    /// responses, NACK retries).
    Op(usize, OpMsg),
    /// One block output resolved. `lsid` is set when the output is a
    /// store slot (accepted store or null), which also feeds the
    /// conservative-ordering machinery for dependence-violating blocks.
    OutputDone {
        proc: usize,
        seq: u64,
        lsid: Option<u8>,
        prov: Prov,
    },
    /// The block's exit branch resolved.
    Branch {
        proc: usize,
        seq: u64,
        outcome: ExitOutcome,
        prov: Prov,
    },
    /// Next-block hand-off arrived at the new owner.
    HandOff { proc: usize, addr: BlockAddr },
    /// Fetch command arrived at a participating core.
    FetchCmd { proc: usize, seq: u64, part: usize },
    /// Route a produced value from `from` to the given targets.
    SendOperands {
        from: usize,
        proc: usize,
        seq: u64,
        targets: [Option<Target>; 2],
        value: Option<u64>,
        prov: Prov,
    },
    /// All commit acknowledgments arrived at the owner.
    CommitDone { proc: usize, seq: u64 },
    /// A window slot became visible as free to the fetch engine.
    SlotFree { proc: usize },
    /// An operand-network injection held back by the fault layer is
    /// released onto the mesh (only ever scheduled by injected NoC
    /// delays; never present on fault-free runs).
    Inject { from: usize, to: usize, msg: OpMsg },
}

// ---------------------------------------------------------------------------
// Per-instruction and per-block state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, Default)]
struct OpState {
    dispatched: bool,
    queued: bool,
    fired: bool,
    got: [bool; 3],
    val: [Option<u64>; 3], // Some(None-is-null) flattened: value when got
    is_null: [bool; 3],
}

#[derive(Clone, Debug)]
struct DispatchState {
    ids: Arc<[u8]>,
    next: usize,
    start_at: u64,
    done: bool,
}

/// Everything about a block that is identical across fetches of the
/// same address: built once per address (per composition) and shared by
/// refcount afterwards, so the fetch hot path never deep-clones a block
/// or re-walks its dispatch slices.
#[derive(Debug)]
struct FetchTemplate {
    block: Arc<Block>,
    /// Per participant core: instruction ids of its dispatch slice.
    slices: Vec<Arc<[u8]>>,
    outputs_needed: usize,
    store_mask: u32,
}

#[derive(Clone, Debug)]
struct Blk {
    seq: u64,
    addr: BlockAddr,
    block: Arc<Block>,
    ops: Vec<OpState>,
    outputs_needed: usize,
    outputs_done: usize,
    resolved: bool,
    outcome: Option<ExitOutcome>,
    /// Prediction this block's owner made for its successor.
    next_pred: Option<Prediction>,
    /// Address actually fetched after this block (speculatively or not).
    spec_next: Option<BlockAddr>,
    committing: bool,
    /// Dependence-predictor state: blocks that previously violated run
    /// with conservative load ordering (loads wait for older-LSID stores).
    conservative: bool,
    /// Bitmask of resolved store LSIDs (accepted or nulled).
    stores_resolved: u32,
    /// Bitmask of store LSIDs the block declares.
    store_mask: u32,
    /// Loads deferred by conservative ordering: `(part, inst id)`.
    deferred_loads: Vec<(usize, u8)>,
    dispatch: Vec<DispatchState>,
    dispatch_pending_cores: usize,
    /// Bitmask of parts with a started, unfinished dispatch slice (the
    /// slice's fetch command arrived and `done` is still false) — the
    /// exact set of slices `dispatch_stage` could make progress on.
    runnable: u32,
    // timing marks
    t_init: u64,
    predict_cycles: f64,
    hand_off_cycles: f64,
    t_cmds_sent: u64,
    t_last_cmd: u64,
    t_dispatch_done: u64,
    /// clp-prof per-block state; `None` whenever profiling is disabled.
    prof: Option<Box<BlkProf>>,
}

impl Blk {
    fn owner_part(&self, n: usize, centralized: bool) -> usize {
        if centralized {
            0
        } else {
            block_owner(self.addr, n)
        }
    }
}

/// The in-flight block window, ordered by sequence number.
///
/// Sequence numbers are allocated monotonically and blocks install in
/// order, so the deque is always sorted. The window never holds more
/// than `max_inflight` live blocks, which makes binary search over
/// contiguous storage far cheaper than the `BTreeMap` this replaced —
/// block lookup is the single hottest operation in the simulator
/// (every dispatch, issue, completion, and operand arrival pays one).
#[derive(Debug)]
struct BlockWindow {
    blocks: VecDeque<(u64, Blk)>,
}

impl BlockWindow {
    fn new() -> Self {
        BlockWindow {
            blocks: VecDeque::new(),
        }
    }

    #[inline]
    fn idx(&self, seq: u64) -> Result<usize, usize> {
        self.blocks.binary_search_by(|&(s, _)| s.cmp(&seq))
    }

    #[inline]
    fn get(&self, seq: &u64) -> Option<&Blk> {
        self.idx(*seq).ok().map(|i| &self.blocks[i].1)
    }

    #[inline]
    fn get_mut(&mut self, seq: &u64) -> Option<&mut Blk> {
        match self.idx(*seq) {
            Ok(i) => Some(&mut self.blocks[i].1),
            Err(_) => None,
        }
    }

    #[inline]
    fn contains_key(&self, seq: &u64) -> bool {
        self.idx(*seq).is_ok()
    }

    /// Installs a block; `seq` must exceed every stored sequence.
    fn insert(&mut self, seq: u64, b: Blk) {
        debug_assert!(self.blocks.back().is_none_or(|&(s, _)| s < seq));
        self.blocks.push_back((seq, b));
    }

    fn remove(&mut self, seq: &u64) -> Option<Blk> {
        let i = self.idx(*seq).ok()?;
        self.blocks.remove(i).map(|(_, b)| b)
    }

    fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Oldest in-flight block (lowest sequence number).
    fn first(&self) -> Option<(u64, &Blk)> {
        self.blocks.front().map(|(s, b)| (*s, b))
    }

    fn iter(&self) -> impl DoubleEndedIterator<Item = (u64, &Blk)> {
        self.blocks.iter().map(|(s, b)| (*s, b))
    }

    fn values(&self) -> impl DoubleEndedIterator<Item = &Blk> {
        self.blocks.iter().map(|(_, b)| b)
    }

    fn values_mut(&mut self) -> impl DoubleEndedIterator<Item = &mut Blk> {
        self.blocks.iter_mut().map(|(_, b)| b)
    }

    /// Sequence numbers at or above `from`, ascending.
    fn seqs_from(&self, from: u64) -> impl Iterator<Item = u64> + '_ {
        let i = self.blocks.partition_point(|&(s, _)| s < from);
        self.blocks.iter().skip(i).map(|&(s, _)| s)
    }

    /// Whether any block at or above `from` is in flight.
    fn has_from(&self, from: u64) -> bool {
        self.blocks.back().is_some_and(|&(s, _)| s >= from)
    }
}

impl std::ops::Index<&u64> for BlockWindow {
    type Output = Blk;
    fn index(&self, seq: &u64) -> &Blk {
        self.get(seq).expect("live block")
    }
}

/// A scheduled execution completion.
///
/// The derived `Ord` compares fields in declaration order, so a min-heap
/// of these pops by `(done, push_seq)`: earliest completion first, ties
/// broken by issue order — exactly the order the old FIFO scan produced
/// (every opcode latency is >= 1, so nothing can complete in arrears).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct ExecDone {
    /// Cycle the result becomes routable.
    done: u64,
    /// Monotonic per-processor push counter (FIFO tie-break).
    push_seq: u64,
    /// Owning block sequence number.
    seq: u64,
    /// Instruction id within the block.
    inst: u8,
    /// Produced value (`None` routes a null token).
    result: Option<u64>,
}

#[derive(Clone, Debug)]
struct PendingFetch {
    addr: BlockAddr,
    ready_at: u64,
    hand_off_cycles: f64,
    reason: FetchReason,
}

#[derive(Clone, Copy, Debug)]
struct WaitingRead {
    seq: u64,
    reg: Reg,
    targets: [Option<Target>; 2],
    bank_core: usize,
    prov: Prov,
}

struct Proc {
    cores: Vec<usize>, // global core ids
    n: usize,
    /// Physical base of this processor's address space: every data and
    /// instruction address is translated by this offset, isolating
    /// multiprogrammed workloads that use identical virtual layouts.
    addr_base: u64,
    program: EdgeProgram,
    /// Per-address fetch templates (see [`FetchTemplate`]); cleared on
    /// recomposition because dispatch slices depend on `n`.
    fetch_cache: BTreeMap<BlockAddr, FetchTemplate>,
    predictor: ComposedPredictor,
    regs: RegFile,
    blocks: BlockWindow,
    next_seq: u64,
    pending: Option<PendingFetch>,
    /// Target of the youngest live prediction: the hand-off the fetch
    /// engine is willing to accept next.
    chain_next: Option<BlockAddr>,
    slots_free: usize,
    max_inflight: usize,
    halted: bool,
    /// Sequence number of a resolved (possibly wrong-path) halt block;
    /// fetch stops while set, and flushing that block clears it.
    halt_seq: Option<u64>,
    /// Block addresses that suffered a load/store ordering violation:
    /// re-fetches of these run loads conservatively (the dependence
    /// predictor that keeps same-block violations from livelocking).
    violated_addrs: std::collections::BTreeSet<BlockAddr>,
    stats: ProcStats,
    waiting_reads: Vec<WaitingRead>,
    /// Per participant core: ready-to-issue (seq, inst) entries.
    ready: Vec<BTreeSet<(u64, u8)>>,
    /// Bitmask over parts: bit set iff `ready[part]` is non-empty.
    ready_mask: u32,
    /// Per participant core: in-flight completions, popped by done cycle
    /// (issue order within a cycle — see [`ExecDone`]).
    exec: Vec<BinaryHeap<Reverse<ExecDone>>>,
    /// Bitmask over parts: bit set iff `exec[part]` is non-empty.
    exec_mask: u32,
    /// Monotonic counter feeding [`ExecDone::push_seq`].
    exec_pushes: u64,
    /// Number of in-flight blocks with `runnable != 0`; lets the
    /// dispatch stage and the event horizon skip the block scan when
    /// nothing can dispatch.
    dispatch_armed: usize,
    /// Last cycle this processor made observable protocol progress —
    /// the "heartbeat" the hard-fault watchdog listens to. Only read
    /// when the fault plan schedules kills.
    last_beat: u64,
    /// Watchdog backoff state: each all-alive probe round doubles the
    /// silence threshold, up to `watchdog_timeout << watchdog_backoff_cap`.
    probe_round: u32,
    /// A heartbeat probe is in flight; at this deadline the survivors
    /// either declare unresponsive cores dead or back off.
    probe_deadline: Option<u64>,
    /// Dead participants were declared; recovery runs as soon as any
    /// point-of-no-return (committing) block finishes draining.
    recovery_pending: bool,
    /// Successor address of the most recently committed block — the
    /// architecturally correct resume point if recovery finds no
    /// in-flight block and no pending fetch.
    last_commit_target: Option<BlockAddr>,
}

// ---------------------------------------------------------------------------
// The machine
// ---------------------------------------------------------------------------

/// A TFlex chip: 32 cores, a shared memory system, and any number of
/// dynamically composed logical processors.
pub struct Machine {
    cfg: SimConfig,
    now: u64,
    mem: MemorySystem,
    opnet: Mesh<OpMsg>,
    local: EventWheel<Ev>,
    procs: Vec<Proc>,
    /// global core -> (proc, participant index)
    core_map: Vec<Option<(usize, usize)>>,
    last_progress: u64,
    tracer: Tracer,
    sampler: Option<IntervalSampler>,
    /// Deterministic fault injector (inert under `FaultPlan::none()`:
    /// zero PRNG draws, zero scheduling changes).
    faults: FaultInjector,
    /// Whether the fault plan schedules hard core kills. When false the
    /// watchdog and every dead-core check are skipped entirely, keeping
    /// kill-free runs bit-identical to builds without this machinery.
    has_kills: bool,
    /// Scheduled kills not yet applied, sorted by kill cycle.
    pending_kills: Vec<CoreKill>,
    /// Per global core: permanently silenced by a hard fault.
    dead: Vec<bool>,
    /// Per global core: cycle the kill fired (for detection latency).
    killed_at: Vec<Option<u64>>,
    /// Per global core: the watchdog already declared it dead.
    declared_dead: Vec<bool>,
    /// Hard-fault detection/recomposition counters.
    recovery_stats: RecoveryStats,
    /// `(cycle, insts_dispatched)` when the first recovery completed;
    /// everything after it is the degraded-mode portion of the run.
    recovery_mark: Option<(u64, u64)>,
    /// clp-prof accumulator; `None` (the default) keeps every hook down
    /// to a single branch and the run bit-identical to unprofiled builds.
    prof: Option<Box<ProfAcc>>,
    /// clp-trend columnar time-series recorder; `None` (the default)
    /// costs one branch per cycle and keeps the run bit-identical.
    trend: Option<Box<TrendRecorder>>,
    /// Composition-allocation counters (observation only).
    compose_stats: ComposeStats,
    /// Whether [`Machine::run`] may use event-driven skip-ahead. False
    /// only when the fault plan draws PRNG state every cycle
    /// (`noc_burst`), where skipping cycles would skip draws and change
    /// the injected-fault schedule.
    can_skip: bool,
    /// Reusable scratch buffers for the per-cycle stages, so the hot
    /// loop never allocates. Each is empty between uses.
    scratch_seqs: Vec<(u64, u32)>,
    scratch_ids: Vec<u8>,
    scratch_picks: Vec<(u64, u8)>,
    scratch_loads: Vec<(usize, u8)>,
    scratch_reads: Vec<WaitingRead>,
    scratch_evs: Vec<Ev>,
}

impl Machine {
    /// Creates an idle machine.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        let cores = cfg.chip_cores();
        let mut pending_kills: Vec<CoreKill> = cfg.faults.kills().collect();
        pending_kills.sort_by_key(|k| (k.cycle, k.core));
        let mut opnet = Mesh::new(cfg.operand_net);
        if cfg.threads > 1 {
            opnet.enable_sharding(cfg.threads);
        }
        Machine {
            now: 0,
            mem: MemorySystem::new(cfg.mem, cores),
            opnet,
            local: EventWheel::new(),
            procs: Vec::new(),
            core_map: vec![None; cores],
            last_progress: 0,
            tracer: Tracer::off(),
            sampler: None,
            faults: FaultInjector::new(cfg.faults),
            has_kills: !pending_kills.is_empty(),
            pending_kills,
            dead: vec![false; cores],
            killed_at: vec![None; cores],
            declared_dead: vec![false; cores],
            recovery_stats: RecoveryStats::default(),
            recovery_mark: None,
            prof: None,
            trend: None,
            compose_stats: ComposeStats::default(),
            can_skip: !cfg.faults.has_per_cycle_draws(),
            scratch_seqs: Vec::new(),
            scratch_ids: Vec::new(),
            scratch_picks: Vec::new(),
            scratch_loads: Vec::new(),
            scratch_reads: Vec::new(),
            scratch_evs: Vec::new(),
            cfg,
        }
    }

    /// Enables clp-prof cycle accounting: every committed block records
    /// last-arrival provenance, is walked backward from its commit
    /// handshake, and charges its cycles to the top-down buckets exposed
    /// by [`Machine::profile_report`]. Call before [`Machine::run`].
    ///
    /// Profiling is observational: it never changes scheduling, so cycle
    /// counts match unprofiled runs exactly.
    pub fn enable_profiling(&mut self) {
        let cores = self.cfg.chip_cores();
        self.prof = Some(Box::new(ProfAcc {
            per_proc: Vec::new(),
            core_cycles: vec![0; cores],
            link_cycles: BTreeMap::new(),
            last_commit_end: Vec::new(),
        }));
    }

    /// Whether [`Machine::enable_profiling`] was called.
    #[must_use]
    pub fn profiling_enabled(&self) -> bool {
        self.prof.is_some()
    }

    /// The accumulated cycle-accounting report, or `None` when profiling
    /// is disabled. Meaningful once the run has committed blocks; the
    /// `elapsed` field reflects the current cycle.
    #[must_use]
    pub fn profile_report(&self) -> Option<ProfileReport> {
        let acc = self.prof.as_deref()?;
        Some(ProfileReport {
            procs: acc.per_proc.clone(),
            core_cycles: acc.core_cycles.clone(),
            link_cycles: acc.link_cycles.iter().map(|(&k, &v)| (k, v)).collect(),
            mesh_width: self.cfg.operand_net.width,
            mesh_height: self.cfg.operand_net.height,
            elapsed: self.now,
        })
    }

    /// Enables clp-trend columnar time-series recording: one sample per
    /// `opts.period` cycles over the selected stats paths plus (when
    /// profiling is also enabled) the cycle-accounting buckets and the
    /// per-core heat rows. Call before [`Machine::run`]; collect with
    /// [`Machine::take_trend_report`].
    ///
    /// Recording is observational — samples are written on due cycles
    /// but never read back for timing, so cycle counts stay bit-identical
    /// to unrecorded runs.
    pub fn enable_trend(&mut self, opts: TrendOptions) {
        let cores = self.cfg.chip_cores();
        self.trend = Some(Box::new(TrendRecorder::new(opts, cores)));
    }

    /// Finalizes and returns the trend report (closing the last partial
    /// interval), or `None` when trend recording was never enabled.
    /// Recording stops; a second call returns `None`.
    #[must_use]
    pub fn take_trend_report(&mut self) -> Option<TrendReport> {
        let rec = self.trend.take()?;
        let stats = self.collect_stats();
        let root = stats.to_snapshot(Vec::new()).root;
        let insts = stats.total_insts();
        let prof = self.prof.as_deref().map(|acc| {
            let mut total = clp_obs::BucketCycles::default();
            for p in &acc.per_proc {
                total.merge(&p.run_buckets);
            }
            (total, acc.core_cycles.clone())
        });
        Some(rec.finish(
            self.now,
            &root,
            insts,
            prof.as_ref().map(|(b, h)| (b, h.as_slice())),
        ))
    }

    /// Closes the trend interval ending now. Only called on due cycles.
    fn trend_sample(&mut self) {
        let Some(mut rec) = self.trend.take() else {
            return;
        };
        let stats = self.collect_stats();
        let root = stats.to_snapshot(Vec::new()).root;
        let insts = stats.total_insts();
        let prof = self.prof.as_deref().map(|acc| {
            let mut total = clp_obs::BucketCycles::default();
            for p in &acc.per_proc {
                total.merge(&p.run_buckets);
            }
            (total, acc.core_cycles.clone())
        });
        rec.record(
            self.now,
            &root,
            insts,
            prof.as_ref().map(|(b, h)| (b, h.as_slice())),
        );
        self.trend = Some(rec);
    }

    /// Composition-allocation counters so far.
    #[must_use]
    pub fn compose_stats(&self) -> &ComposeStats {
        &self.compose_stats
    }

    /// Hard-fault detection/recomposition counters so far (all zero when
    /// the fault plan schedules no kills).
    #[must_use]
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.recovery_stats
    }

    /// Whether global core `core` has been silenced by a hard fault.
    #[must_use]
    pub fn is_core_dead(&self, core: usize) -> bool {
        self.dead[core]
    }

    /// What the fault layer injected so far (all zeros on fault-free
    /// runs).
    #[must_use]
    pub fn fault_stats(&self) -> &crate::fault::FaultStats {
        self.faults.stats()
    }

    /// Attaches a tracer; clones of the handle propagate to the memory
    /// system and the operand network so every subsystem stamps events
    /// into the same sink. Call before [`Machine::run`].
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.mem.set_tracer(tracer.clone());
        self.opnet.set_tracer(tracer.clone(), "operand");
        self.tracer = tracer;
    }

    /// The attached tracer handle.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Enables per-interval sampling: one [`clp_obs::IntervalSample`]
    /// every `period` cycles, surfaced through [`Machine::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn set_sample_period(&mut self, period: u64) {
        self.sampler = Some(IntervalSampler::new(period));
    }

    fn sample_counters(&self) -> SampleCounters {
        SampleCounters {
            insts_committed: self.procs.iter().map(|p| p.stats.insts_committed).sum(),
            blocks_committed: self.procs.iter().map(|p| p.stats.blocks_committed).sum(),
            blocks_flushed: self.procs.iter().map(|p| p.stats.blocks_flushed).sum(),
            operand_msgs: self.opnet.stats().delivered,
        }
    }

    /// The unified stats registry for the run so far: end-of-run totals
    /// as a navigable tree plus the sampled time series (which this call
    /// finalizes — the last partial window is closed and the sampler
    /// retired).
    #[must_use]
    pub fn snapshot(&mut self) -> StatsSnapshot {
        let counters = self.sample_counters();
        let intervals = match self.sampler.take() {
            Some(s) => s.finish(self.now, counters),
            None => Vec::new(),
        };
        let mut snap = self.collect_stats().to_snapshot(intervals);
        if let Some(report) = self.profile_report() {
            let root = std::mem::take(&mut snap.root);
            snap.root = root.child(report.to_node());
        }
        snap
    }

    /// The simulator configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Mutable access to the memory system (workload setup: initial
    /// image) — only meaningful before [`Machine::run`].
    pub fn memory_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Read access to the memory system (output verification).
    #[must_use]
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Composes a logical processor from `n_cores` cores (region `index`
    /// of the standard tiling) and loads `program` with up to 8 integer
    /// arguments in `r1..=r8`.
    ///
    /// # Errors
    ///
    /// Returns [`ComposeError`] if the region is invalid, overlaps an
    /// existing processor, or `args` exceeds the 8 argument registers
    /// (arguments are never silently truncated).
    pub fn compose(
        &mut self,
        n_cores: usize,
        index: usize,
        program: EdgeProgram,
        args: &[u64],
    ) -> Result<ProcId, ComposeError> {
        let base = (self.procs.len() as u64) << 36;
        self.compose_at(n_cores, index, program, args, base)
    }

    /// Like [`Machine::compose`], but with an explicit address-space
    /// base. Composing a new processor with the base of a *decomposed*
    /// predecessor hands the data over through the cache-coherence
    /// protocol — the §4.7 story: the new interleaving misses, and the
    /// directory forwards or invalidates the old banks' lines, with no
    /// flush on the composition change.
    ///
    /// # Errors
    ///
    /// Returns [`ComposeError`] if the region is invalid or overlaps an
    /// active processor.
    pub fn compose_at(
        &mut self,
        n_cores: usize,
        index: usize,
        program: EdgeProgram,
        args: &[u64],
        addr_base: u64,
    ) -> Result<ProcId, ComposeError> {
        if args.len() > 8 {
            return Err(ComposeError::TooManyArgs(args.len()));
        }
        let nodes = region_for(&self.cfg.operand_net, n_cores, index)?;
        let cores: Vec<usize> = nodes.iter().map(|n| n.0).collect();
        for &c in &cores {
            if self.core_map[c].is_some() {
                return Err(ComposeError::CoreBusy(c));
            }
        }
        let pid = self.procs.len();
        for (p, &c) in cores.iter().enumerate() {
            self.core_map[c] = Some((pid, p));
        }
        self.compose_stats.compositions += 1;
        self.compose_stats.cores_allocated += n_cores as u64;
        self.compose_stats.last_change_cycle = self.now;
        let base_core = cores[0];
        self.tracer
            .emit(self.now, || TraceEvent::ProcessorComposed {
                proc: pid,
                cores: n_cores,
                base_core,
                why: "compose",
            });
        let pred_banks = if self.cfg.centralized_control {
            1
        } else {
            n_cores
        };
        let mut regs = RegFile::new(clp_isa::NUM_ARCH_REGS);
        for (i, &a) in args.iter().enumerate() {
            regs.set_committed(Reg::new(1 + i), a);
        }
        regs.set_committed(Reg::SP, self.cfg.stack_top);
        let max_inflight = self.cfg.max_inflight.unwrap_or(n_cores).max(1);
        let entry = program.entry();
        self.procs.push(Proc {
            cores,
            n: n_cores,
            addr_base,
            program,
            fetch_cache: BTreeMap::new(),
            predictor: ComposedPredictor::new(self.cfg.predictor, pred_banks),
            regs,
            blocks: BlockWindow::new(),
            next_seq: 0,
            pending: Some(PendingFetch {
                addr: entry,
                ready_at: 0,
                hand_off_cycles: 0.0,
                reason: FetchReason::Entry,
            }),
            chain_next: None,
            slots_free: max_inflight,
            max_inflight,
            halted: false,
            halt_seq: None,
            violated_addrs: std::collections::BTreeSet::new(),
            stats: ProcStats::default(),
            waiting_reads: Vec::new(),
            ready: vec![BTreeSet::new(); n_cores],
            ready_mask: 0,
            exec: (0..n_cores).map(|_| BinaryHeap::new()).collect(),
            exec_mask: 0,
            exec_pushes: 0,
            dispatch_armed: 0,
            last_beat: 0,
            probe_round: 0,
            probe_deadline: None,
            recovery_pending: false,
            last_commit_target: None,
        });
        Ok(ProcId(pid))
    }

    // -- helpers ----------------------------------------------------------

    fn hops(&self, a: usize, b: usize) -> u64 {
        self.cfg.operand_net.hops(NodeId(a), NodeId(b)) as u64
    }

    fn ctrl_delay(&self, a: usize, b: usize) -> u64 {
        match self.cfg.protocol {
            ProtocolTiming::Instant => 1,
            ProtocolTiming::Modeled => 1 + self.hops(a, b),
        }
    }

    fn push_local(&mut self, at: u64, ev: Ev) {
        let at = at.max(self.now + 1);
        self.local.schedule(self.now, at, ev);
    }

    /// Injects an operand-class message onto the mesh — unless the fault
    /// layer decides to hold it back first, in which case the injection
    /// is re-scheduled as an [`Ev::Inject`] a few cycles out (modeling a
    /// slow or retried link). Fault-free plans take the direct path with
    /// zero overhead.
    fn inject_op_msg(&mut self, from: usize, to: usize, msg: OpMsg) {
        if self.faults.active() {
            if let Some(extra) = self.faults.noc_delay() {
                self.tracer.emit(self.now, || TraceEvent::FaultInjected {
                    kind: "noc_delay",
                    core: from,
                    extra_cycles: extra,
                });
                self.push_local(self.now + extra, Ev::Inject { from, to, msg });
                return;
            }
        }
        self.opnet.inject(NodeId(from), NodeId(to), msg);
    }

    /// Routes a produced value (or null token) to targets, from `from`.
    fn route_operands(
        &mut self,
        from: usize,
        proc: usize,
        seq: u64,
        targets: &[Option<Target>; 2],
        value: Option<u64>,
        prov: Prov,
    ) {
        let n = self.procs[proc].n;
        for t in targets.iter().flatten() {
            let part = t.inst.core_of(n);
            let dst = self.procs[proc].cores[part];
            let msg = OpMsg::Operand {
                proc,
                seq,
                target: *t,
                value,
                prov,
            };
            if dst == from {
                self.push_local(self.now + 1, Ev::Op(dst, msg));
            } else {
                self.inject_op_msg(from, dst, msg);
            }
        }
    }

    fn send_op(&mut self, from: usize, to: usize, msg: OpMsg) {
        if from == to {
            self.push_local(self.now + 1, Ev::Op(to, msg));
        } else {
            self.inject_op_msg(from, to, msg);
        }
    }

    // -- hard faults: kill, detect, recompose -------------------------------
    //
    // A scheduled kill permanently silences a core: deliveries to it are
    // dropped, its pipeline stages stop, and nothing it had queued ever
    // leaves. Survivors get NO side channel — they notice only that acks,
    // hand-offs, and operands stop arriving. The heartbeat watchdog turns
    // that silence into a declaration: after `watchdog_timeout` cycles
    // without protocol progress it probes the participants (a modeled
    // round trip on the control network); an unresponsive participant is
    // declared dead, an all-alive round doubles the threshold (bounded
    // exponential backoff, so long-but-healthy stalls like DRAM misses
    // don't thrash). Recovery then waits for any committing block to
    // drain (commit effects are past the point of no return), flushes
    // every in-flight block, migrates architectural state off the dead
    // cores (register banks by accounting — the register file is
    // logically unified — and dirty L1 lines physically through the
    // S-NUCA L2), recomputes every interleaving hash over the survivor
    // set (which may be non-power-of-two), and resumes fetch at the
    // architecturally correct next block. Modeled simplifications,
    // documented in DESIGN.md: a block whose commit handshake started
    // always completes it (its functional effects are already durable),
    // and mesh messages routed *through* a dead core's router are not
    // re-routed (only endpoints are silenced).

    /// Marks any kill whose cycle has arrived. Called once per step,
    /// only when the plan schedules kills.
    fn apply_due_kills(&mut self) {
        while self
            .pending_kills
            .first()
            .is_some_and(|k| k.cycle <= self.now)
        {
            let k = self.pending_kills.remove(0);
            let core = usize::from(k.core);
            if !self.dead[core] {
                self.dead[core] = true;
                self.killed_at[core] = Some(self.now);
                self.recovery_stats.cores_killed += 1;
                self.tracer
                    .emit(self.now, || TraceEvent::CoreKilled { core });
            }
        }
    }

    /// Modeled round trip of a heartbeat probe across the composition.
    fn probe_rtt(&self, pi: usize) -> u64 {
        let p = &self.procs[pi];
        let origin = p.cores[0];
        let max_hop = p
            .cores
            .iter()
            .map(|&c| self.ctrl_delay(origin, c))
            .max()
            .unwrap_or(1);
        2 * max_hop + 2
    }

    /// Emits death declarations (and detection-latency accounting) for
    /// every dead-but-undeclared participant of `pi`.
    fn declare_dead(&mut self, pi: usize) {
        let now = self.now;
        let cores = self.procs[pi].cores.clone();
        for core in cores {
            if self.dead[core] && !self.declared_dead[core] {
                self.declared_dead[core] = true;
                let det = now.saturating_sub(self.killed_at[core].unwrap_or(now));
                self.recovery_stats.detection_cycles += det;
                self.tracer.emit(now, || TraceEvent::CoreDeclaredDead {
                    proc: pi,
                    core,
                    detection_cycles: det,
                });
            }
        }
    }

    /// One watchdog evaluation for processor `pi` (kill plans only).
    /// Fully cycle-count driven — no PRNG draws — so detection timing is
    /// deterministic per plan.
    fn watchdog(&mut self, pi: usize) {
        let now = self.now;
        if self.procs[pi].recovery_pending {
            self.try_recover(pi);
            return;
        }
        if self.procs[pi].cores.is_empty() {
            return;
        }
        match self.procs[pi].probe_deadline {
            Some(d) if now >= d => {
                let any_dead = self.procs[pi].cores.iter().any(|&c| self.dead[c]);
                if any_dead {
                    self.declare_dead(pi);
                    self.procs[pi].recovery_pending = true;
                    self.try_recover(pi);
                } else {
                    // Spurious: the stall was slow, not dead. Back off.
                    let cap = self.cfg.watchdog_backoff_cap;
                    let p = &mut self.procs[pi];
                    p.probe_deadline = None;
                    p.probe_round = (p.probe_round + 1).min(cap);
                    p.last_beat = now;
                }
            }
            Some(_) => {}
            None => {
                let round = self.procs[pi]
                    .probe_round
                    .min(self.cfg.watchdog_backoff_cap);
                let timeout = self.cfg.watchdog_timeout << round;
                if now.saturating_sub(self.procs[pi].last_beat) > timeout {
                    let rtt = self.probe_rtt(pi);
                    self.procs[pi].probe_deadline = Some(now + rtt);
                    self.recovery_stats.probes += 1;
                }
            }
        }
    }

    /// Runs recovery once every point-of-no-return block has drained.
    fn try_recover(&mut self, pi: usize) {
        if self.procs[pi].halted {
            self.procs[pi].recovery_pending = false;
            return;
        }
        // A committing block's functional effects are already durable;
        // its handshake completes (CommitDone is pre-scheduled) and then
        // recovery flushes everything younger.
        if self.procs[pi].blocks.values().any(|b| b.committing) {
            return;
        }
        self.perform_recovery(pi);
    }

    /// The degraded-mode recomposition: flush, migrate, re-interleave,
    /// resume.
    fn perform_recovery(&mut self, pi: usize) {
        let now = self.now;
        let (old_n, old_cores) = {
            let p = &self.procs[pi];
            (p.n, p.cores.clone())
        };
        let dead_parts: Vec<usize> = (0..old_n)
            .filter(|&part| self.dead[old_cores[part]])
            .collect();
        if dead_parts.is_empty() {
            self.procs[pi].recovery_pending = false;
            return;
        }
        // Kills can land while a commit drains; declare any stragglers.
        self.declare_dead(pi);
        let new_n = old_n - dead_parts.len();
        assert!(new_n >= 1, "no-survivor plans are rejected before running");

        // Resume point, computed before the flush: the oldest in-flight
        // block is always on the architecturally correct path (its
        // predecessor resolved — and corrected any misprediction —
        // before committing).
        let resume = {
            let p = &self.procs[pi];
            p.blocks
                .values()
                .next()
                .map(|b| b.addr)
                .or(p.pending.as_ref().map(|f| f.addr))
                .or(p.last_commit_target)
                .unwrap_or_else(|| p.program.entry())
        };

        // Flush every in-flight block: any of them may hold operands,
        // LSQ entries, or dispatch slices on the dead cores.
        let flushed = self.procs[pi].blocks.len();
        if let Some((oldest, b)) = self.procs[pi].blocks.first() {
            let addr = b.addr;
            self.tracer.emit(now, || TraceEvent::BlockFlushed {
                proc: pi,
                addr,
                reason: FlushReason::Recovery,
            });
            self.flush_from(pi, oldest);
        }

        // Migrate architectural state. Registers interleave by the OLD
        // hash; banks on dead cores stream to survivors (the register
        // file is logically unified, so this is accounting + latency).
        let migrated_regs = (0..clp_isa::NUM_ARCH_REGS)
            .filter(|&r| dead_parts.contains(&Reg::new(r).bank_of(old_n)))
            .count() as u64;
        let mut migrated_lines = 0u64;
        let mut migrated_bytes = migrated_regs * 8;
        let mut bank_latency = 0u64;
        for &part in &dead_parts {
            let rep = self.mem.evacuate_core(old_cores[part]);
            migrated_lines += rep.dirty_lines;
            migrated_bytes += rep.bytes;
            // Dead banks drain in parallel; the slowest gates resume.
            bank_latency = bank_latency.max(rep.latency);
        }
        let migration_cycles = bank_latency + migrated_regs;

        // Recompose over the survivors: every interleaving hash
        // (register bank, D-bank/LSQ, instruction slot, block owner)
        // re-evaluates over `new_n`, which need not be a power of two.
        let survivors: Vec<usize> = old_cores
            .iter()
            .copied()
            .filter(|&c| !self.dead[c])
            .collect();
        for &part in &dead_parts {
            self.core_map[old_cores[part]] = None;
        }
        for (new_part, &c) in survivors.iter().enumerate() {
            self.core_map[c] = Some((pi, new_part));
        }
        let centralized = self.cfg.centralized_control;
        let pred_cfg = self.cfg.predictor;
        let max_inflight = self.cfg.max_inflight.unwrap_or(new_n).max(1);
        {
            let p = &mut self.procs[pi];
            p.cores = survivors;
            p.n = new_n;
            // Dispatch slices are hashed over `n`: stale templates
            // would dispatch dead-core slices.
            p.fetch_cache.clear();
            // The predictor restarts cold: its banked tables were hashed
            // over the old core set and the dead bank's history is gone.
            p.predictor = ComposedPredictor::new(pred_cfg, if centralized { 1 } else { new_n });
            p.ready = vec![BTreeSet::new(); new_n];
            p.ready_mask = 0;
            p.exec = (0..new_n).map(|_| BinaryHeap::new()).collect();
            p.exec_mask = 0;
            p.dispatch_armed = 0;
            p.waiting_reads.clear();
            p.max_inflight = max_inflight;
            p.slots_free = max_inflight;
            p.chain_next = None;
            p.halt_seq = None;
            p.pending = Some(PendingFetch {
                addr: resume,
                ready_at: now + migration_cycles,
                hand_off_cycles: 0.0,
                reason: FetchReason::Resume,
            });
            p.recovery_pending = false;
            p.probe_deadline = None;
            p.probe_round = 0;
            p.last_beat = now + migration_cycles;
        }
        self.last_progress = now;

        self.recovery_stats.recoveries += 1;
        // A recovery is a forced recomposition: the survivor set is a new
        // (smaller) core allocation for the same logical processor.
        self.compose_stats.recompositions += 1;
        self.compose_stats.cores_released += 1;
        self.compose_stats.last_change_cycle = now;
        self.recovery_stats.flushed_blocks += flushed as u64;
        self.recovery_stats.migrated_regs += migrated_regs;
        self.recovery_stats.migrated_lines += migrated_lines;
        self.recovery_stats.migrated_bytes += migrated_bytes;
        self.recovery_stats.migration_cycles += migration_cycles;
        if self.recovery_mark.is_none() {
            let insts: u64 = self.procs.iter().map(|p| p.stats.insts_dispatched).sum();
            self.recovery_mark = Some((now + migration_cycles, insts));
        }
        self.tracer.emit(now, || TraceEvent::RecoveryCompleted {
            proc: pi,
            survivors: new_n,
            flushed_blocks: flushed,
            migrated_bytes,
        });
    }

    /// True if the owner core of block `seq` on `pi` is dead (the block
    /// cannot run its resolution/commit protocol; its events are
    /// dropped, and recovery will flush it).
    fn owner_dead(&self, pi: usize, seq: u64) -> bool {
        if !self.has_kills {
            return false;
        }
        let p = &self.procs[pi];
        match p.blocks.get(&seq) {
            Some(b) => self.dead[p.cores[b.owner_part(p.n, self.cfg.centralized_control)]],
            None => false,
        }
    }

    // -- fetch engine -------------------------------------------------------

    fn fetch_stage(&mut self, pi: usize) {
        let now = self.now;
        let can_install = {
            let p = &self.procs[pi];
            !p.halted
                && p.halt_seq.is_none()
                && !p.recovery_pending
                && p.slots_free > 0
                && p.pending.as_ref().is_some_and(|f| f.ready_at <= now)
        };
        if !can_install {
            return;
        }
        // A pending fetch of a block that does not exist (wrong-path
        // beyond program bounds) waits until a redirect replaces it.
        let addr = self.procs[pi].pending.as_ref().expect("checked").addr;
        if self.procs[pi].program.block(addr).is_none() {
            return;
        }
        // A dead owner cannot run the fetch protocol: the fetch stalls
        // (survivors see only silence) until the watchdog recomposes.
        if self.has_kills {
            let p = &self.procs[pi];
            let owner_part = if self.cfg.centralized_control {
                0
            } else {
                block_owner(addr, p.n)
            };
            if self.dead[p.cores[owner_part]] {
                return;
            }
        }
        let pending = self.procs[pi].pending.take().expect("checked");
        self.install_block(pi, pending);
    }

    fn install_block(&mut self, pi: usize, pending: PendingFetch) {
        let now = self.now;
        self.last_progress = now;
        self.procs[pi].last_beat = now;
        let (seq, owner_core, n, speculate) = {
            let p = &mut self.procs[pi];
            let seq = p.next_seq;
            p.next_seq += 1;
            p.slots_free -= 1;
            let n = p.n;
            let owner_part = if self.cfg.centralized_control {
                0
            } else {
                block_owner(pending.addr, n)
            };
            (seq, p.cores[owner_part], n, p.max_inflight > 1)
        };
        // A non-zero hand-off means this fetch continues a predicted
        // chain; entry and redirect fetches are non-speculative.
        self.tracer.emit(now, || TraceEvent::BlockFetched {
            proc: pi,
            core: owner_core,
            addr: pending.addr,
            speculative: pending.hand_off_cycles > 0.0,
        });
        // First fetch of this address (since compose / recovery) builds
        // the per-address template: an `Arc` of the block plus the
        // per-core dispatch slices. Every later fetch is refcount
        // bumps instead of a deep block clone and `n` slice walks.
        if !self.procs[pi].fetch_cache.contains_key(&pending.addr) {
            let p = &mut self.procs[pi];
            let block = p.program.block(pending.addr).expect("caller checked");
            let tmpl = FetchTemplate {
                slices: (0..p.n)
                    .map(|part| {
                        block
                            .slice_for_core(part, p.n)
                            .map(|(i, _)| i as u8)
                            .collect()
                    })
                    .collect(),
                outputs_needed: block.output_count(),
                store_mask: block.store_lsids().iter().fold(0u32, |m, &l| m | (1 << l)),
                block: Arc::new(block.clone()),
            };
            p.fetch_cache.insert(pending.addr, tmpl);
        }
        let tmpl = self.procs[pi]
            .fetch_cache
            .get(&pending.addr)
            .expect("just filled");
        let block = Arc::clone(&tmpl.block);
        let outputs_needed = tmpl.outputs_needed;
        let store_mask = tmpl.store_mask;
        let slices = tmpl.slices.clone();

        // Declare register writes so younger readers wait (write mask is
        // part of the block header, known at fetch).
        for &(_, reg) in block.writes() {
            self.procs[pi].regs.declare_write(reg, seq);
        }

        // Per-core dispatch slices.
        let dispatch: Vec<DispatchState> = slices
            .into_iter()
            .map(|ids| DispatchState {
                ids,
                next: 0,
                start_at: u64::MAX,
                done: false,
            })
            .collect();

        let nops = block.len();
        let conservative = self.procs[pi].violated_addrs.contains(&pending.addr);
        let mut blk = Blk {
            seq,
            addr: pending.addr,
            block,
            ops: vec![OpState::default(); nops],
            outputs_needed,
            outputs_done: 0,
            resolved: false,
            outcome: None,
            next_pred: None,
            spec_next: None,
            committing: false,
            conservative,
            stores_resolved: 0,
            store_mask,
            deferred_loads: Vec::new(),
            dispatch,
            dispatch_pending_cores: n,
            runnable: 0,
            t_init: now,
            predict_cycles: 0.0,
            hand_off_cycles: pending.hand_off_cycles,
            t_cmds_sent: now + 1,
            t_last_cmd: now + 1,
            t_dispatch_done: now + 1,
            prof: self
                .prof
                .is_some()
                .then(|| Box::new(BlkProf::new(nops, pending.reason))),
        };

        // Tag access (1 cycle), then broadcast fetch commands.
        blk.t_cmds_sent = now + 1;
        blk.t_last_cmd = now + 1;
        for part in 0..n {
            let dst = self.procs[pi].cores[part];
            let d = self.ctrl_delay(owner_core, dst);
            self.push_local(
                now + 1 + d,
                Ev::FetchCmd {
                    proc: pi,
                    seq,
                    part,
                },
            );
        }

        // Predict the successor and hand off control.
        if speculate {
            let mut pred = self.procs[pi].predictor.predict(pending.addr);
            // Forced mispredict: steer the prediction one block frame off
            // its target. The checkpoint inside `pred` is untouched, so
            // rollback and resolution-time training follow the normal
            // mispredict recovery path; the wrong-path fetch either finds
            // a real (wrong) block or stalls until the redirect.
            if self.faults.active() && self.faults.flip_prediction() {
                let owner = owner_core;
                self.tracer.emit(now, || TraceEvent::FaultInjected {
                    kind: "mispredict",
                    core: owner,
                    extra_cycles: 0,
                });
                pred.target = pred.target.wrapping_add(clp_isa::BLOCK_FRAME_BYTES);
            }
            self.tracer.emit(now, || TraceEvent::BlockPredicted {
                core: owner_core,
                addr: pending.addr,
                target: pred.target,
            });
            let pred_lat = u64::from(self.procs[pi].predictor.latency());
            blk.predict_cycles = pred_lat as f64;
            // RAS traffic: a push/pop message to the stack-top core.
            let ras_extra = match pred.ras_core {
                Some(rc) if !self.cfg.centralized_control => {
                    let rc_core = self.procs[pi].cores[rc.min(n - 1)];
                    self.ctrl_delay(owner_core, rc_core)
                }
                _ => 0,
            };
            let next_owner_part = if self.cfg.centralized_control {
                0
            } else {
                block_owner(pred.target, n)
            };
            let next_owner_core = self.procs[pi].cores[next_owner_part];
            let send_at = now + 1 + pred_lat + ras_extra;
            let flight = self.ctrl_delay(owner_core, next_owner_core);
            blk.spec_next = Some(pred.target);
            self.procs[pi].chain_next = Some(pred.target);
            // Delayed hand-off: the control message to the next owner
            // simply takes longer, as if the control mesh were congested.
            let mut handoff_at = send_at + flight;
            if self.faults.active() {
                if let Some(extra) = self.faults.handoff_delay() {
                    let owner = owner_core;
                    self.tracer.emit(now, || TraceEvent::FaultInjected {
                        kind: "handoff_delay",
                        core: owner,
                        extra_cycles: extra,
                    });
                    handoff_at += extra;
                }
            }
            self.push_local(
                handoff_at,
                Ev::HandOff {
                    proc: pi,
                    addr: pred.target,
                },
            );
            blk.next_pred = Some(pred);
        }
        self.procs[pi].blocks.insert(seq, blk);
    }

    fn on_handoff(&mut self, pi: usize, addr: BlockAddr) {
        // Wrong-path hand-offs are dropped when the proc already halted,
        // a redirect replaced the chain, or the speculation they continue
        // was squashed.
        let (accept, prev_owner, next_owner) = {
            let p = &self.procs[pi];
            if p.halted || p.halt_seq.is_some() || p.pending.is_some() || p.chain_next != Some(addr)
            {
                (false, 0, 0)
            } else {
                let po = p
                    .blocks
                    .values()
                    .next_back()
                    .map(|b| b.owner_part(p.n, self.cfg.centralized_control))
                    .unwrap_or(0);
                let no = if self.cfg.centralized_control {
                    0
                } else {
                    block_owner(addr, p.n)
                };
                (true, p.cores[po], p.cores[no])
            }
        };
        if !accept {
            return;
        }
        // A hand-off from or to a dead core is lost in flight.
        if self.has_kills && (self.dead[prev_owner] || self.dead[next_owner]) {
            return;
        }
        self.tracer.emit(self.now, || TraceEvent::FetchHandoff {
            proc: pi,
            from_core: prev_owner,
            to_core: next_owner,
            addr,
        });
        let flight = self.ctrl_delay(prev_owner, next_owner) as f64;
        self.procs[pi].chain_next = None;
        self.procs[pi].pending = Some(PendingFetch {
            addr,
            ready_at: self.now,
            hand_off_cycles: flight,
            reason: FetchReason::HandOff,
        });
    }

    // -- dispatch -----------------------------------------------------------

    fn on_fetch_cmd(&mut self, pi: usize, seq: u64, part: usize) {
        let now = self.now;
        let (core, addr, n, exists) = {
            let p = &self.procs[pi];
            match p.blocks.get(&seq) {
                Some(b) => (p.cores[part], b.addr, p.n, true),
                None => (0, 0, 1, false),
            }
        };
        if !exists {
            return;
        }
        // A dead core never services its fetch command; the slice simply
        // never dispatches and the watchdog eventually flushes the block.
        if self.has_kills && self.dead[core] {
            return;
        }
        let lat =
            self.mem
                .fetch_block_slice(core, addr.wrapping_add(self.procs[pi].addr_base), part, n);
        let p = &mut self.procs[pi];
        let mut newly_armed = false;
        if let Some(b) = p.blocks.get_mut(&seq) {
            b.t_last_cmd = b.t_last_cmd.max(now);
            let ds = &mut b.dispatch[part];
            ds.start_at = now + u64::from(lat);
            if ds.ids.is_empty() {
                ds.done = true;
                b.dispatch_pending_cores -= 1;
                b.t_dispatch_done = b.t_dispatch_done.max(now);
            } else {
                newly_armed = b.runnable == 0;
                b.runnable |= 1 << part;
            }
        }
        if newly_armed {
            p.dispatch_armed += 1;
        }
    }

    fn dispatch_stage(&mut self, pi: usize) {
        if self.procs[pi].dispatch_armed == 0 {
            return;
        }
        let now = self.now;
        let n = self.procs[pi].n;
        let bw = self.cfg.core.dispatch_per_cycle;
        // Only blocks with a runnable slice matter: every other slice is
        // either `done` or still waiting for its fetch command
        // (`start_at` unset), so the per-part scan would skip it without
        // consuming budget. Filtering up front is behavior-neutral. The
        // snapshot of `runnable` is safe to branch on inside the part
        // loop because a part's processing only ever clears its own bit.
        let mut seqs = std::mem::take(&mut self.scratch_seqs);
        debug_assert!(seqs.is_empty());
        seqs.extend(
            self.procs[pi]
                .blocks
                .iter()
                .filter(|(_, b)| b.runnable != 0)
                .map(|(seq, b)| (seq, b.runnable)),
        );
        if seqs.is_empty() {
            self.scratch_seqs = seqs;
            return;
        }
        let mut to_dispatch = std::mem::take(&mut self.scratch_ids);
        debug_assert!(to_dispatch.is_empty());
        let mut disarmed = 0;
        for part in 0..n {
            if self.has_kills && self.dead[self.procs[pi].cores[part]] {
                continue;
            }
            let mut budget = bw;
            for &(seq, runnable) in &seqs {
                if budget == 0 {
                    break;
                }
                if runnable & (1 << part) == 0 {
                    continue;
                }
                // Collect ids to dispatch this cycle.
                to_dispatch.clear();
                {
                    let b = match self.procs[pi].blocks.get_mut(&seq) {
                        Some(b) => b,
                        None => continue,
                    };
                    let ds = &mut b.dispatch[part];
                    if ds.done || ds.start_at > now {
                        continue;
                    }
                    while budget > 0 && ds.next < ds.ids.len() {
                        to_dispatch.push(ds.ids[ds.next]);
                        ds.next += 1;
                        budget -= 1;
                    }
                    if ds.next == ds.ids.len() {
                        ds.done = true;
                        b.dispatch_pending_cores -= 1;
                        b.t_dispatch_done = b.t_dispatch_done.max(now);
                        b.runnable &= !(1 << part);
                        if b.runnable == 0 {
                            disarmed += 1;
                        }
                    }
                }
                for &id in &to_dispatch {
                    self.dispatch_inst(pi, seq, part, id);
                }
            }
        }
        self.procs[pi].dispatch_armed -= disarmed;
        to_dispatch.clear();
        self.scratch_ids = to_dispatch;
        seqs.clear();
        self.scratch_seqs = seqs;
    }

    fn dispatch_inst(&mut self, pi: usize, seq: u64, part: usize, id: u8) {
        self.last_progress = self.now;
        self.procs[pi].last_beat = self.now;
        let now = self.now;
        let (opcode, reg, targets) = {
            let p = &mut self.procs[pi];
            let b = p.blocks.get_mut(&seq).expect("dispatching live block");
            b.ops[id as usize].dispatched = true;
            if let Some(pr) = b.prof.as_deref_mut() {
                pr.disp[id as usize] = now;
            }
            let inst = &b.block.instructions()[id as usize];
            (inst.opcode, inst.reg, inst.targets)
        };
        match opcode {
            Opcode::Read => {
                let reg = reg.expect("read has reg");
                let (bank_core, from) = {
                    let p = &self.procs[pi];
                    (p.cores[reg.bank_of(p.n)], p.cores[part])
                };
                self.send_op(
                    from,
                    bank_core,
                    OpMsg::ReadReq {
                        proc: pi,
                        seq,
                        reg,
                        targets,
                        prov: Prov {
                            kind: ProvKind::RegRead,
                            inst: id,
                            from: from as u8,
                            origin: now,
                            sent: now,
                            aux: 0,
                        },
                    },
                );
            }
            _ => {
                self.maybe_ready(
                    pi,
                    seq,
                    part,
                    id,
                    Prov {
                        origin: now,
                        sent: now,
                        ..Prov::default()
                    },
                );
            }
        }
    }

    /// Enqueues the instruction for issue if all its inputs are present.
    /// `trigger` is the provenance of the arrival that prompted this call
    /// (the instruction's own dispatch, or an operand delivery); when the
    /// call transitions the instruction to ready it is, by construction,
    /// the last-arrival edge the profiler records.
    fn maybe_ready(&mut self, pi: usize, seq: u64, part: usize, id: u8, trigger: Prov) {
        enum Action {
            None,
            Queue,
            Write {
                from: usize,
                bank_core: usize,
                reg: Reg,
                value: Option<u64>,
            },
        }
        let now = self.now;
        let action = {
            let p = &mut self.procs[pi];
            let Some(b) = p.blocks.get_mut(&seq) else {
                return;
            };
            let inst = &b.block.instructions()[id as usize];
            if inst.opcode == Opcode::Read {
                return;
            }
            let arity = inst.data_arity();
            let need_pred = inst.is_predicated();
            let is_write = inst.opcode == Opcode::Write;
            let reg = inst.reg;
            let st = &mut b.ops[id as usize];
            if !st.dispatched || st.queued || st.fired {
                Action::None
            } else {
                let have = (arity < 1 || st.got[0]) && (arity < 2 || st.got[1]);
                let have_pred = !need_pred || st.got[2];
                if !(have && have_pred) {
                    Action::None
                } else if is_write {
                    st.fired = true;
                    let value = if st.is_null[0] { None } else { st.val[0] };
                    let reg = reg.expect("write has reg");
                    if let Some(pr) = b.prof.as_deref_mut() {
                        // Writes fire the moment their input lands.
                        pr.ready[id as usize] = now;
                        pr.issue[id as usize] = now;
                        pr.edge[id as usize] = trigger;
                    }
                    Action::Write {
                        from: p.cores[part],
                        bank_core: p.cores[reg.bank_of(p.n)],
                        reg,
                        value,
                    }
                } else {
                    st.queued = true;
                    if let Some(pr) = b.prof.as_deref_mut() {
                        pr.ready[id as usize] = now;
                        pr.edge[id as usize] = trigger;
                    }
                    Action::Queue
                }
            }
        };
        match action {
            Action::None => {}
            Action::Queue => {
                let p = &mut self.procs[pi];
                p.ready[part].insert((seq, id));
                p.ready_mask |= 1 << part;
            }
            Action::Write {
                from,
                bank_core,
                reg,
                value,
            } => {
                let p = &mut self.procs[pi];
                p.stats.insts_fired += 1;
                p.stats.reg_writes += 1;
                self.send_op(
                    from,
                    bank_core,
                    OpMsg::WriteFwd {
                        proc: pi,
                        seq,
                        reg,
                        value,
                        prov: Prov {
                            kind: ProvKind::Exec,
                            inst: id,
                            from: from as u8,
                            origin: now,
                            sent: now,
                            aux: 0,
                        },
                    },
                );
            }
        }
    }

    // -- issue & execute ----------------------------------------------------

    fn issue_stage(&mut self, pi: usize) {
        if self.procs[pi].ready_mask == 0 {
            return;
        }
        let n = self.procs[pi].n;
        let mut picks = std::mem::take(&mut self.scratch_picks);
        debug_assert!(picks.is_empty());
        for part in 0..n {
            if self.procs[pi].ready_mask & (1 << part) == 0 {
                continue;
            }
            if self.has_kills && self.dead[self.procs[pi].cores[part]] {
                continue;
            }
            let mut total = self.cfg.core.issue_width;
            let mut fp = self.cfg.core.fp_issue;
            picks.clear();
            {
                let p = &self.procs[pi];
                for &(seq, id) in &p.ready[part] {
                    if total == 0 {
                        break;
                    }
                    let Some(b) = p.blocks.get(&seq) else {
                        continue;
                    };
                    let is_fp =
                        b.block.instructions()[id as usize].opcode.class() == OpcodeClass::Float;
                    if is_fp {
                        if fp == 0 {
                            continue;
                        }
                        fp -= 1;
                    }
                    total -= 1;
                    picks.push((seq, id));
                }
            }
            for &(seq, id) in &picks {
                self.procs[pi].ready[part].remove(&(seq, id));
                self.execute_inst(pi, seq, part, id);
            }
            if self.procs[pi].ready[part].is_empty() {
                self.procs[pi].ready_mask &= !(1 << part);
            }
        }
        picks.clear();
        self.scratch_picks = picks;
    }

    fn execute_inst(&mut self, pi: usize, seq: u64, part: usize, id: u8) {
        self.last_progress = self.now;
        self.procs[pi].last_beat = self.now;
        let now = self.now;
        let (opcode, imm, lsid, branch, targets, pred, vals, nulls, blk_addr) = {
            let p = &mut self.procs[pi];
            let Some(b) = p.blocks.get_mut(&seq) else {
                return;
            };
            let st = &mut b.ops[id as usize];
            st.fired = true;
            let vals = st.val;
            let nulls = st.is_null;
            if let Some(pr) = b.prof.as_deref_mut() {
                pr.issue[id as usize] = now;
            }
            let inst = &b.block.instructions()[id as usize];
            (
                inst.opcode,
                inst.imm,
                inst.lsid,
                inst.branch,
                inst.targets,
                inst.pred,
                vals,
                nulls,
                b.addr,
            )
        };
        {
            let p = &mut self.procs[pi];
            p.stats.insts_fired += 1;
            if opcode.class() == OpcodeClass::Float {
                p.stats.fp_ops += 1;
            } else {
                p.stats.int_ops += 1;
            }
        }
        let issue_core = self.procs[pi].cores[part];
        self.tracer.emit(now, || TraceEvent::InstIssued {
            proc: pi,
            core: issue_core,
            block: blk_addr,
            inst: id as usize,
            opcode: opcode.mnemonic(),
        });

        // Predicated-off instructions consume the slot and vanish.
        if let Some(sense) = pred {
            let pv = vals[2].unwrap_or(0);
            let pv = if nulls[2] { 0 } else { pv };
            if !sense.matches(pv) {
                return;
            }
        }

        let left = if nulls[0] { 0 } else { vals[0].unwrap_or(0) };
        let right = if nulls[1] { 0 } else { vals[1].unwrap_or(0) };
        let latency = u64::from(opcode.latency());

        match opcode {
            Opcode::Bro => {
                let info = branch.expect("bro has branch info");
                let actual = match info.kind {
                    BranchKind::Return => left,
                    _ => info
                        .target
                        .unwrap_or(self.procs[pi].blocks[&seq].addr + 512),
                };
                let outcome = ExitOutcome {
                    exit_id: info.exit_id,
                    kind: info.kind,
                    target: actual,
                };
                let (owner_core, from) = {
                    let p = &self.procs[pi];
                    let b = &p.blocks[&seq];
                    let op = b.owner_part(p.n, self.cfg.centralized_control);
                    (p.cores[op], p.cores[part])
                };
                let d = self.ctrl_delay(from, owner_core);
                self.push_local(
                    now + latency + d,
                    Ev::Branch {
                        proc: pi,
                        seq,
                        outcome,
                        prov: Prov {
                            kind: ProvKind::Exec,
                            inst: id,
                            from: from as u8,
                            origin: now,
                            sent: now + latency,
                            aux: 0,
                        },
                    },
                );
            }
            op if op.is_load() || op.is_store() => {
                let l = lsid.expect("memory op has lsid").index() as u8;
                if op.is_load() {
                    // Conservative ordering for previously-violating
                    // blocks: the load waits until every older-LSID store
                    // slot has resolved (the LSID order is acyclic, so
                    // this cannot deadlock).
                    let defer = {
                        let b = &self.procs[pi].blocks[&seq];
                        let older = b.store_mask & ((1u32 << l) - 1);
                        b.conservative && older & !b.stores_resolved != 0
                    };
                    if defer {
                        self.procs[pi]
                            .blocks
                            .get_mut(&seq)
                            .expect("exists")
                            .deferred_loads
                            .push((part, id));
                        return;
                    }
                }
                self.send_mem_req(
                    pi,
                    seq,
                    part,
                    id,
                    op.is_store(),
                    l,
                    imm,
                    left,
                    right,
                    targets,
                );
            }
            Opcode::Null if lsid.is_some() => {
                // Store-slot nullification: an output resolves.
                let (owner_core, from) = {
                    let p = &self.procs[pi];
                    let b = &p.blocks[&seq];
                    let op = b.owner_part(p.n, self.cfg.centralized_control);
                    (p.cores[op], p.cores[part])
                };
                let d = self.ctrl_delay(from, owner_core);
                self.push_local(
                    now + latency + d,
                    Ev::OutputDone {
                        proc: pi,
                        seq,
                        lsid: Some(lsid.expect("checked").index() as u8),
                        prov: Prov {
                            kind: ProvKind::Exec,
                            inst: id,
                            from: from as u8,
                            origin: now,
                            sent: now + latency,
                            aux: 0,
                        },
                    },
                );
            }
            Opcode::Null => {
                // Null token to consumers (typically a WRITE).
                let from = self.procs[pi].cores[part];
                self.push_local(
                    now + latency,
                    Ev::SendOperands {
                        from,
                        proc: pi,
                        seq,
                        targets,
                        value: None,
                        prov: Prov {
                            kind: ProvKind::Exec,
                            inst: id,
                            from: from as u8,
                            origin: now,
                            sent: now + latency,
                            aux: 0,
                        },
                    },
                );
            }
            _ => {
                let result = clp_isa::value::eval(opcode, imm, left, right);
                let from = self.procs[pi].cores[part];
                let p = &mut self.procs[pi];
                let push_seq = p.exec_pushes;
                p.exec_pushes += 1;
                p.exec_mask |= 1 << part;
                p.exec[part].push(Reverse(ExecDone {
                    done: now + latency,
                    push_seq,
                    seq,
                    inst: id,
                    result: Some(result),
                }));
                let _ = from;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn send_mem_req(
        &mut self,
        pi: usize,
        seq: u64,
        part: usize,
        id: u8,
        store: bool,
        lsid: u8,
        imm: i64,
        left: u64,
        right: u64,
        targets: [Option<Target>; 2],
    ) {
        let ea = ((left as i64).wrapping_add(imm) as u64).wrapping_add(self.procs[pi].addr_base);
        let (size, origin) = {
            let b = &self.procs[pi].blocks[&seq];
            let size = match b.block.instructions()[id as usize].opcode {
                Opcode::Ldb | Opcode::Stb => 1,
                _ => 8,
            };
            // MemWait starts at the load/store's issue cycle — deferred
            // loads released by conservative ordering keep their original
            // issue as origin, so the deferral charges to MemWait.
            let origin = b.prof.as_deref().map_or(0, |pr| pr.issue[id as usize]);
            (size, origin)
        };
        let (bank_core, from) = {
            let p = &self.procs[pi];
            let bank_part = dbank_for(ea, p.n);
            (p.cores[bank_part], p.cores[part])
        };
        let msg = OpMsg::MemReq {
            proc: pi,
            seq,
            lsid,
            store,
            addr: ea,
            size,
            value: right,
            targets,
            prov: Prov {
                kind: ProvKind::Load,
                inst: id,
                from: from as u8,
                origin,
                sent: self.now,
                aux: 0,
            },
        };
        if bank_core == from {
            self.push_local(self.now + 1, Ev::Op(bank_core, msg));
        } else {
            self.inject_op_msg(from, bank_core, msg);
        }
    }

    fn completion_stage(&mut self, pi: usize) {
        if self.procs[pi].exec_mask == 0 {
            return;
        }
        let now = self.now;
        let n = self.procs[pi].n;
        for part in 0..n {
            if self.procs[pi].exec_mask & (1 << part) == 0 {
                continue;
            }
            if self.has_kills && self.dead[self.procs[pi].cores[part]] {
                continue;
            }
            loop {
                // The heap pops by (done, issue order): every latency is
                // >= 1, so due items complete exactly this cycle and come
                // out in the same order the old FIFO scan produced.
                let item = {
                    let q = &mut self.procs[pi].exec[part];
                    match q.peek() {
                        Some(&Reverse(e)) if e.done <= now => q.pop().map(|Reverse(e)| e),
                        _ => None,
                    }
                };
                let Some(ExecDone {
                    seq,
                    inst: id,
                    result,
                    ..
                }) = item
                else {
                    break;
                };
                let (alive, targets, origin) = {
                    let p = &self.procs[pi];
                    match p.blocks.get(&seq) {
                        Some(b) => (
                            true,
                            b.block.instructions()[id as usize].targets,
                            b.prof.as_deref().map_or(0, |pr| pr.issue[id as usize]),
                        ),
                        None => (false, [None, None], 0),
                    }
                };
                if alive {
                    let from = self.procs[pi].cores[part];
                    let prov = Prov {
                        kind: ProvKind::Exec,
                        inst: id,
                        from: from as u8,
                        origin,
                        sent: now,
                        aux: 0,
                    };
                    self.route_operands(from, pi, seq, &targets, result, prov);
                }
            }
            if self.procs[pi].exec[part].is_empty() {
                self.procs[pi].exec_mask &= !(1 << part);
            }
        }
    }

    // -- message handling -----------------------------------------------------

    fn handle_op(&mut self, core: usize, msg: OpMsg) {
        // Messages delivered to a dead core vanish — its receive queues
        // are powered off along with everything else.
        if self.has_kills && self.dead[core] {
            return;
        }
        match msg {
            OpMsg::Operand {
                proc,
                seq,
                target,
                value,
                prov,
            } => {
                let part = match self.core_map[core] {
                    Some((pp, part)) if pp == proc => part,
                    _ => return,
                };
                {
                    let p = &mut self.procs[proc];
                    let Some(b) = p.blocks.get_mut(&seq) else {
                        return;
                    };
                    let st = &mut b.ops[target.inst.index()];
                    let slot = target.operand.encode() as usize;
                    st.got[slot] = true;
                    st.val[slot] = value;
                    st.is_null[slot] = value.is_none();
                }
                self.maybe_ready(proc, seq, part, target.inst.index() as u8, prov);
            }
            OpMsg::ReadReq {
                proc,
                seq,
                reg,
                targets,
                prov,
            } => {
                if !self.procs[proc].blocks.contains_key(&seq) {
                    return;
                }
                self.try_read(proc, seq, reg, targets, core, prov);
            }
            OpMsg::WriteFwd {
                proc,
                seq,
                reg,
                value,
                prov,
            } => {
                let alive = self.procs[proc].blocks.contains_key(&seq);
                if !alive {
                    return;
                }
                self.procs[proc].regs.forward_write(reg, seq, value);
                // Output resolves at the owner.
                let owner_core = {
                    let p = &self.procs[proc];
                    let b = &p.blocks[&seq];
                    let op = b.owner_part(p.n, self.cfg.centralized_control);
                    p.cores[op]
                };
                let d = self.ctrl_delay(core, owner_core);
                self.push_local(
                    self.now + d,
                    Ev::OutputDone {
                        proc,
                        seq,
                        lsid: None,
                        prov,
                    },
                );
                self.retry_waiting_reads(proc, reg);
            }
            OpMsg::MemReq {
                proc,
                seq,
                lsid,
                store,
                addr,
                size,
                value,
                targets,
                prov,
            } => {
                if !self.procs[proc].blocks.contains_key(&seq) {
                    return;
                }
                let gseq = seq * 32 + u64::from(lsid);
                // Forced NACK: the bank refuses a request it could have
                // accepted. The request retries through the existing
                // NACK/replay path; no overflow eviction (the LSQ is not
                // actually full, so no forward-progress action is owed).
                if self.faults.active() && self.faults.forced_nack() {
                    let retry_wait = u64::from(self.cfg.nack_retry);
                    self.tracer.emit(self.now, || TraceEvent::FaultInjected {
                        kind: "forced_nack",
                        core,
                        extra_cycles: retry_wait,
                    });
                    self.mem.note_injected_nack(core, addr);
                    self.procs[proc].stats.nack_retries += 1;
                    self.push_local(
                        self.now + retry_wait,
                        Ev::Op(
                            core,
                            OpMsg::MemReq {
                                proc,
                                seq,
                                lsid,
                                store,
                                addr,
                                size,
                                value,
                                targets,
                                prov,
                            },
                        ),
                    );
                    return;
                }
                if store {
                    match self.mem.execute_store(core, gseq, addr, size, value) {
                        StoreResponse::Nack => {
                            self.procs[proc].stats.nack_retries += 1;
                            self.overflow_flush(proc, core, seq);
                            let retry = self.now + u64::from(self.cfg.nack_retry);
                            self.push_local(
                                retry,
                                Ev::Op(
                                    core,
                                    OpMsg::MemReq {
                                        proc,
                                        seq,
                                        lsid,
                                        store,
                                        addr,
                                        size,
                                        value,
                                        targets,
                                        prov,
                                    },
                                ),
                            );
                        }
                        StoreResponse::Ok { violation } => {
                            self.procs[proc].stats.stores += 1;
                            let owner_core = {
                                let p = &self.procs[proc];
                                let b = &p.blocks[&seq];
                                let op = b.owner_part(p.n, self.cfg.centralized_control);
                                p.cores[op]
                            };
                            let d = self.ctrl_delay(core, owner_core);
                            self.push_local(
                                self.now + d,
                                Ev::OutputDone {
                                    proc,
                                    seq,
                                    lsid: Some(lsid),
                                    prov: Prov {
                                        from: core as u8,
                                        sent: self.now,
                                        ..prov
                                    },
                                },
                            );
                            if let Some(vseq) = violation {
                                self.procs[proc].stats.violations += 1;
                                let vblock = vseq / 32;
                                self.violation_flush(proc, vblock, FlushReason::Violation);
                            }
                        }
                    }
                } else {
                    match self.mem.execute_load(core, gseq, addr, size) {
                        LoadResponse::Nack => {
                            self.procs[proc].stats.nack_retries += 1;
                            self.overflow_flush(proc, core, seq);
                            let retry = self.now + u64::from(self.cfg.nack_retry);
                            self.push_local(
                                retry,
                                Ev::Op(
                                    core,
                                    OpMsg::MemReq {
                                        proc,
                                        seq,
                                        lsid,
                                        store,
                                        addr,
                                        size,
                                        value,
                                        targets,
                                        prov,
                                    },
                                ),
                            );
                        }
                        LoadResponse::Ok {
                            value,
                            latency,
                            served,
                        } => {
                            self.procs[proc].stats.loads += 1;
                            // DRAM spike: the reply is charged extra
                            // cycles, as if the line had missed all the
                            // way to a busy memory controller. The value
                            // is unchanged — only its arrival time moves.
                            let mut total = u64::from(latency);
                            if self.faults.active() {
                                if let Some(extra) = self.faults.dram_spike() {
                                    self.tracer.emit(self.now, || TraceEvent::FaultInjected {
                                        kind: "dram_spike",
                                        core,
                                        extra_cycles: extra,
                                    });
                                    self.mem.note_injected_dram_spike(core, extra);
                                    total += extra;
                                }
                            }
                            self.push_local(
                                self.now + total,
                                Ev::SendOperands {
                                    from: core,
                                    proc,
                                    seq,
                                    targets,
                                    value: Some(value),
                                    prov: Prov {
                                        kind: ProvKind::Load,
                                        inst: prov.inst,
                                        from: core as u8,
                                        origin: prov.origin,
                                        sent: self.now + total,
                                        aux: match served {
                                            LoadServe::Forward => 0,
                                            LoadServe::L1 => 1,
                                            LoadServe::Miss => 2,
                                        },
                                    },
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    fn try_read(
        &mut self,
        proc: usize,
        seq: u64,
        reg: Reg,
        targets: [Option<Target>; 2],
        bank_core: usize,
        prov: Prov,
    ) {
        match self.procs[proc].regs.read(reg, seq) {
            RegRead::Ready(v) => {
                self.procs[proc].stats.reg_reads += 1;
                self.push_local(
                    self.now + 1,
                    Ev::SendOperands {
                        from: bank_core,
                        proc,
                        seq,
                        targets,
                        value: Some(v),
                        prov: Prov {
                            kind: ProvKind::RegRead,
                            inst: prov.inst,
                            from: bank_core as u8,
                            origin: prov.origin,
                            sent: self.now + 1,
                            aux: 0,
                        },
                    },
                );
            }
            RegRead::Wait => {
                self.procs[proc].waiting_reads.push(WaitingRead {
                    seq,
                    reg,
                    targets,
                    bank_core,
                    prov,
                });
            }
        }
    }

    fn retry_waiting_reads(&mut self, proc: usize, reg: Reg) {
        // Stable in-place partition: matching reads move (in order) to
        // the scratch buffer, the rest compact down without reordering.
        // Retries that miss again re-append behind the kept entries —
        // exactly the order the old drain-and-partition produced, and
        // order matters: each retry schedules a SendOperands whose
        // within-cycle position feeds mesh arbitration.
        let mut hit = std::mem::take(&mut self.scratch_reads);
        debug_assert!(hit.is_empty());
        {
            let p = &mut self.procs[proc];
            let mut kept = 0;
            for i in 0..p.waiting_reads.len() {
                let w = p.waiting_reads[i];
                if w.reg == reg {
                    hit.push(w);
                } else {
                    p.waiting_reads[kept] = w;
                    kept += 1;
                }
            }
            p.waiting_reads.truncate(kept);
        }
        for &w in &hit {
            if self.procs[proc].blocks.contains_key(&w.seq) {
                self.try_read(proc, w.seq, w.reg, w.targets, w.bank_core, w.prov);
            }
        }
        hit.clear();
        self.scratch_reads = hit;
    }

    // -- owner logic: resolution, flush, commit -----------------------------

    fn on_branch(&mut self, pi: usize, seq: u64, outcome: ExitOutcome, prov: Prov) {
        let now = self.now;
        let exists = self.procs[pi].blocks.contains_key(&seq);
        if !exists || self.procs[pi].blocks[&seq].resolved {
            return;
        }
        // The resolution protocol runs on the block's owner; a dead
        // owner never sees the branch arrive.
        if self.owner_dead(pi, seq) {
            return;
        }
        {
            let b = self.procs[pi].blocks.get_mut(&seq).expect("exists");
            b.resolved = true;
            b.outcome = Some(outcome);
            b.outputs_done += 1; // the branch is an output
            if let Some(pr) = b.prof.as_deref_mut() {
                pr.t_resolved = now;
                pr.bro_prov = prov;
            }
        }
        let next_pred = self.procs[pi].blocks[&seq].next_pred;
        let spec_next = self.procs[pi].blocks[&seq].spec_next;
        let addr = self.procs[pi].blocks[&seq].addr;
        let is_halt = outcome.kind == BranchKind::Halt;

        match next_pred {
            Some(pred) => {
                let mispredicted = is_halt || pred.target != outcome.target;
                self.tracer.emit(now, || TraceEvent::BranchResolved {
                    proc: pi,
                    addr,
                    correct: !mispredicted,
                });
                if mispredicted {
                    self.procs[pi].stats.mispredicts += 1;
                    self.tracer.emit(now, || TraceEvent::BlockFlushed {
                        proc: pi,
                        addr,
                        reason: FlushReason::Mispredict,
                    });
                    // Roll back orphaned younger predictions, youngest first.
                    self.flush_from(pi, seq + 1);
                    {
                        let p = &mut self.procs[pi];
                        p.predictor.resolve(addr, &pred, &outcome, true);
                        p.pending = None;
                        p.chain_next = None;
                        if is_halt {
                            p.halt_seq = Some(seq);
                        }
                    }
                    if !is_halt {
                        // The flush broadcast must reach every core before
                        // the corrected chain restarts.
                        let owner = {
                            let p = &self.procs[pi];
                            let op = if self.cfg.centralized_control {
                                0
                            } else {
                                block_owner(addr, p.n)
                            };
                            p.cores[op]
                        };
                        let redirect_delay = self.procs[pi]
                            .cores
                            .iter()
                            .map(|&c| self.ctrl_delay(owner, c))
                            .max()
                            .unwrap_or(1);
                        self.procs[pi].pending = Some(PendingFetch {
                            addr: outcome.target,
                            ready_at: now + redirect_delay,
                            hand_off_cycles: 0.0,
                            reason: FetchReason::Redirect,
                        });
                    }
                } else {
                    let p = &mut self.procs[pi];
                    p.predictor.resolve(addr, &pred, &outcome, false);
                }
            }
            None => {
                // Non-speculative sequencing (single-block windows or a
                // freshly redirected chain whose successor is not yet
                // pending).
                if is_halt {
                    if self.procs[pi].blocks.has_from(seq + 1) {
                        self.tracer.emit(now, || TraceEvent::BlockFlushed {
                            proc: pi,
                            addr,
                            reason: FlushReason::Mispredict,
                        });
                    }
                    self.flush_from(pi, seq + 1);
                    self.procs[pi].halt_seq = Some(seq);
                    self.procs[pi].pending = None;
                    self.procs[pi].chain_next = None;
                } else if spec_next.is_none() && self.procs[pi].max_inflight == 1 {
                    let p = &mut self.procs[pi];
                    if p.pending.is_none() {
                        p.pending = Some(PendingFetch {
                            addr: outcome.target,
                            ready_at: now + 1,
                            hand_off_cycles: 0.0,
                            reason: FetchReason::Sequential,
                        });
                    }
                }
            }
        }
        self.check_commit(pi);
    }

    /// Rolls back orphaned predictions and squashes blocks `>= from`.
    fn flush_from(&mut self, pi: usize, from: u64) {
        let seqs: Vec<u64> = {
            let p = &self.procs[pi];
            p.blocks.seqs_from(from).collect()
        };
        // Roll back orphaned speculation youngest-first (their own
        // next_preds, i.e. predictions for blocks beyond them).
        for &s in seqs.iter().rev() {
            let pred = self.procs[pi]
                .blocks
                .get_mut(&s)
                .and_then(|b| b.next_pred.take());
            if let Some(p) = pred {
                self.procs[pi].predictor.rollback(&p);
            }
        }
        let p = &mut self.procs[pi];
        if p.halt_seq.is_some_and(|h| h >= from) {
            p.halt_seq = None;
        }
        for &s in &seqs {
            if let Some(b) = p.blocks.remove(&s) {
                if b.runnable != 0 {
                    p.dispatch_armed -= 1;
                }
            }
            p.slots_free += 1;
            p.stats.blocks_flushed += 1;
        }
        if !seqs.is_empty() {
            // The block numbering restarts after the flushed range so
            // stale in-flight messages can never alias re-fetched blocks.
            p.regs.flush_from(from);
            p.ready_mask = 0;
            for (part, set) in p.ready.iter_mut().enumerate() {
                set.retain(|&(s, _)| s < from);
                if !set.is_empty() {
                    p.ready_mask |= 1 << part;
                }
            }
            p.exec_mask = 0;
            for (part, q) in p.exec.iter_mut().enumerate() {
                q.retain(|&Reverse(e)| e.seq < from);
                if !q.is_empty() {
                    p.exec_mask |= 1 << part;
                }
            }
            p.waiting_reads.retain(|w| w.seq < from);
            self.mem.flush_from(&self.procs[pi].cores, from * 32);
            // Re-check surviving reads that may have been waiting on
            // flushed writers, in order; misses re-append behind via
            // the normal Wait path. The scratch buffer keeps this
            // allocation-free.
            let mut retry = std::mem::take(&mut self.scratch_reads);
            debug_assert!(retry.is_empty());
            retry.append(&mut self.procs[pi].waiting_reads);
            for &w in &retry {
                if self.procs[pi].blocks.contains_key(&w.seq) {
                    self.try_read(pi, w.seq, w.reg, w.targets, w.bank_core, w.prov);
                }
            }
            retry.clear();
            self.scratch_reads = retry;
        }
        // The youngest surviving block no longer speculates a successor.
        if let Some(b) = self.procs[pi].blocks.values_mut().next_back() {
            if b.seq < from {
                // Its spec_next (if it pointed at a flushed block) is now
                // moot; keep next_pred for training at resolution.
                if b.next_pred.is_none() {
                    b.spec_next = None;
                }
            }
        }
    }

    /// Forward progress for the NACK overflow protocol: a request from
    /// the *oldest* in-flight block that keeps getting NACKed can only be
    /// satisfied by freeing LSQ entries, so the youngest block is
    /// squashed (and refetched later). Bank capacity (44) exceeds one
    /// block's LSID budget (32), so the oldest block alone always fits.
    fn overflow_flush(&mut self, pi: usize, bank_core: usize, nacked_seq: u64) {
        // Age-based eviction (the forward-progress half of the NACK
        // protocol): if the full bank holds entries from a block younger
        // than the requester, squash that youngest block; its re-fetch
        // re-executes long after the NACKed request retries, so older
        // requests always make progress.
        let Some(y_gseq) = self.mem.lsq_youngest(bank_core) else {
            return;
        };
        let y_block = y_gseq / 32;
        if y_block > nacked_seq && self.procs[pi].blocks.contains_key(&y_block) {
            self.violation_flush(pi, y_block, FlushReason::Overflow);
        }
    }

    /// Flush after a load/store ordering violation (or LSQ overflow
    /// eviction) at block `vblock`: squash it and everything younger,
    /// then refetch the same address.
    fn violation_flush(&mut self, pi: usize, vblock: u64, reason: FlushReason) {
        let Some(addr) = self.procs[pi].blocks.get(&vblock).map(|b| b.addr) else {
            return;
        };
        self.tracer.emit(self.now, || TraceEvent::BlockFlushed {
            proc: pi,
            addr,
            reason,
        });
        // Train the dependence predictor: future fetches of this block
        // order their loads behind older stores.
        self.procs[pi].violated_addrs.insert(addr);
        self.flush_from(pi, vblock);
        let p = &mut self.procs[pi];
        p.chain_next = None;
        p.pending = Some(PendingFetch {
            addr,
            ready_at: self.now + 2,
            hand_off_cycles: 0.0,
            reason: FetchReason::Refetch,
        });
    }

    fn on_output_done(&mut self, pi: usize, seq: u64, lsid: Option<u8>, prov: Prov) {
        // Output acks collect at the block's owner; a dead owner never
        // tallies them.
        if self.owner_dead(pi, seq) {
            return;
        }
        let now = self.now;
        let mut ready_loads = std::mem::take(&mut self.scratch_loads);
        debug_assert!(ready_loads.is_empty());
        if let Some(b) = self.procs[pi].blocks.get_mut(&seq) {
            b.outputs_done += 1;
            if !b.committing {
                if let Some(pr) = b.prof.as_deref_mut() {
                    pr.t_last_output = now;
                    pr.out_prov = prov;
                }
            }
            if let Some(l) = lsid {
                b.stores_resolved |= 1 << l;
                // Release conservative loads whose older stores resolved
                // — a stable in-place partition: released loads collect
                // (in order) into the scratch buffer, the rest compact
                // down without reordering or reallocating.
                let resolved = b.stores_resolved;
                let mask = b.store_mask;
                let block = &b.block;
                let mut kept = 0;
                for i in 0..b.deferred_loads.len() {
                    let (part, id) = b.deferred_loads[i];
                    let ll = block.instructions()[id as usize]
                        .lsid
                        .expect("load has lsid")
                        .index() as u8;
                    let older = mask & ((1u32 << ll) - 1);
                    if older & !resolved == 0 {
                        ready_loads.push((part, id));
                    } else {
                        b.deferred_loads[kept] = (part, id);
                        kept += 1;
                    }
                }
                b.deferred_loads.truncate(kept);
            }
        }
        for &(part, id) in &ready_loads {
            let (op_is_store, l, imm, left, right, targets) = {
                let b = &self.procs[pi].blocks[&seq];
                let inst = &b.block.instructions()[id as usize];
                let st = &b.ops[id as usize];
                (
                    inst.opcode.is_store(),
                    inst.lsid.expect("has lsid").index() as u8,
                    inst.imm,
                    if st.is_null[0] {
                        0
                    } else {
                        st.val[0].unwrap_or(0)
                    },
                    if st.is_null[1] {
                        0
                    } else {
                        st.val[1].unwrap_or(0)
                    },
                    inst.targets,
                )
            };
            self.send_mem_req(pi, seq, part, id, op_is_store, l, imm, left, right, targets);
        }
        ready_loads.clear();
        self.scratch_loads = ready_loads;
        self.check_commit(pi);
    }

    fn check_commit(&mut self, pi: usize) {
        let now = self.now;
        // No new block passes the commit point while a recovery is
        // draining — only already-committing blocks finish.
        if self.procs[pi].recovery_pending {
            return;
        }
        let Some((seq, _)) = self.procs[pi].blocks.first() else {
            return;
        };
        // A dead owner cannot run the commit handshake.
        if self.owner_dead(pi, seq) {
            return;
        }
        let ready = {
            let b = &self.procs[pi].blocks[&seq];
            !b.committing
                && b.resolved
                && b.outputs_done >= b.outputs_needed
                && b.dispatch_pending_cores == 0
        };
        if !ready {
            return;
        }
        self.last_progress = now;
        // Commit: functional effects now; timing modeled analytically.
        let (owner_core, n) = {
            let p = &self.procs[pi];
            let b = &p.blocks[&seq];
            let op = b.owner_part(p.n, self.cfg.centralized_control);
            (p.cores[op], p.n)
        };
        // Count register writes per bank before committing them. A
        // block writes at most 32 registers, so a fixed array replaces
        // the per-commit heap allocation (`n <= 32` participants).
        let mut reg_writes_per_bank = [0u32; 32];
        {
            let b = &self.procs[pi].blocks[&seq];
            for &(_, reg) in b.block.writes() {
                reg_writes_per_bank[reg.bank_of(n)] += 1;
            }
        }
        self.procs[pi].regs.commit(seq);
        let lo = seq * 32;
        let hi = lo + 32;
        let mut last_ack = now + 1;
        let mut max_update = 0u64;
        for (part, &bank_writes) in reg_writes_per_bank.iter().enumerate().take(n) {
            let core = self.procs[pi].cores[part];
            let cmd = self.ctrl_delay(owner_core, core);
            let store_lat = u64::from(self.mem.commit_stores_core(core, lo, hi));
            let update = store_lat.max(u64::from(bank_writes));
            max_update = max_update.max(update);
            let ack = now + cmd + update + cmd;
            last_ack = last_ack.max(ack);
        }
        {
            let b = self.procs[pi].blocks.get_mut(&seq).expect("exists");
            b.committing = true;
            b.t_dispatch_done = b.t_dispatch_done.max(b.t_init);
            if let Some(pr) = b.prof.as_deref_mut() {
                pr.t_commit_start = now;
            }
        }
        // Record commit-latency components.
        {
            let p = &mut self.procs[pi];
            p.stats.commit_lat_sum.arch_update += max_update as f64;
            p.stats.commit_lat_sum.handshake += (last_ack - now) as f64 - max_update as f64;
            p.stats.commit_samples += 1;
        }
        self.push_local(last_ack, Ev::CommitDone { proc: pi, seq });
    }

    fn on_commit_done(&mut self, pi: usize, seq: u64) {
        let now = self.now;
        let Some(b) = self.procs[pi].blocks.remove(&seq) else {
            return;
        };
        // Commit gates on dispatch_pending_cores == 0, so every slice is
        // done and the block can't still be counted as armed.
        debug_assert_eq!(b.runnable, 0);
        // Commit completion is past the point of no return: the block's
        // functional effects applied when the handshake started, so it
        // finishes even if its owner died mid-handshake (modeling
        // simplification, see DESIGN.md).
        self.last_progress = now;
        self.procs[pi].last_beat = now;
        let (owner_core, max_hop) = {
            let p = &self.procs[pi];
            let op = b.owner_part(p.n, self.cfg.centralized_control);
            let owner = p.cores[op];
            let mh = p
                .cores
                .iter()
                .map(|&c| self.ctrl_delay(owner, c))
                .max()
                .unwrap_or(1);
            (owner, mh)
        };
        let fired = b.ops.iter().filter(|o| o.fired).count();
        self.tracer.emit(now, || TraceEvent::BlockCommitted {
            proc: pi,
            core: owner_core,
            addr: b.addr,
            insts: fired,
        });
        {
            let p = &mut self.procs[pi];
            p.stats.blocks_committed += 1;
            p.stats.insts_dispatched += b.block.len() as u64;
            p.stats.insts_committed += fired as u64;
            // Fig 9a components for this committed block.
            p.stats.fetch_lat_sum.prediction += b.predict_cycles;
            p.stats.fetch_lat_sum.tag_access += 1.0;
            p.stats.fetch_lat_sum.hand_off += b.hand_off_cycles;
            p.stats.fetch_lat_sum.fetch_distribution +=
                b.t_last_cmd.saturating_sub(b.t_cmds_sent) as f64;
            p.stats.fetch_lat_sum.dispatch += b.t_dispatch_done.saturating_sub(b.t_last_cmd) as f64;
            p.stats.fetch_samples += 1;
        }
        // Dealloc: the fetch engine learns about the free slot after the
        // dealloc broadcast reaches the prospective owner.
        self.push_local(now + max_hop, Ev::SlotFree { proc: pi });
        if b.outcome.map(|o| o.kind) == Some(BranchKind::Halt) {
            let p = &mut self.procs[pi];
            p.halted = true;
            p.stats.cycles = now;
        } else if let Some(o) = b.outcome {
            // Recovery resume point of last resort: the architecturally
            // committed successor of the last committed block.
            self.procs[pi].last_commit_target = Some(o.target);
        }
        if self.prof.is_some() {
            self.profile_commit(pi, &b, now);
        }
        self.check_commit(pi);
    }

    /// Attributes every cycle of a committed block's fetch-to-commit span
    /// to a top-down bucket by walking last-arrival edges backward from
    /// the commit handshake.
    ///
    /// Two books are kept:
    /// * **block-level** — the full `[t_init, t_end)` span, tiled exactly
    ///   by the segments the backward walk cuts (buckets sum to the span);
    /// * **run-level** — the same segments clipped at the previous commit
    ///   end, so overlapped blocks are not double-counted and per-proc run
    ///   totals sum to the final commit cycle.
    fn profile_commit(&mut self, pi: usize, b: &Blk, t_end: u64) {
        let Some(pr) = b.prof.as_deref() else {
            return;
        };
        let n = self.procs[pi].n;
        let cores = &self.procs[pi].cores;
        let owner = cores[b.owner_part(n, self.cfg.centralized_control)];
        let mesh = self.cfg.operand_net;
        let t0 = b.t_init.min(t_end);

        // A backward "cutter": each cut takes `[max(t0, min(start,
        // cursor)), cursor)` and lowers the cursor, so the segments tile
        // `[t0, t_end)` exactly regardless of timestamp noise.
        type Seg = (u64, u64, Bucket, usize, Option<(usize, usize)>);
        struct Cutter {
            t0: u64,
            cursor: u64,
            segs: Vec<Seg>,
        }
        impl Cutter {
            fn cut(
                &mut self,
                start: u64,
                bucket: Bucket,
                core: usize,
                link: Option<(usize, usize)>,
            ) {
                let s = start.clamp(self.t0, self.cursor);
                if s < self.cursor {
                    self.segs.push((s, self.cursor, bucket, core, link));
                }
                self.cursor = s;
            }
        }
        let mut cutter = Cutter {
            t0,
            cursor: t_end,
            segs: Vec::with_capacity(16),
        };

        cutter.cut(pr.t_commit_start, Bucket::Commit, owner, None);

        // Which event gated commit? Ties break toward the later stage
        // (output drain >= branch resolution >= dispatch).
        let g_out = pr.t_last_output;
        let g_res = pr.t_resolved;
        let g_disp = b.t_dispatch_done;
        let mut chain_from: Option<Prov> = None;
        if g_out >= g_res && g_out >= g_disp {
            cutter.cut(g_out, Bucket::CommitWait, owner, None);
            cutter.cut(pr.out_prov.origin, Bucket::OutputDrain, owner, None);
            chain_from = Some(pr.out_prov);
        } else if g_res >= g_disp {
            cutter.cut(g_res, Bucket::CommitWait, owner, None);
            cutter.cut(pr.bro_prov.origin, Bucket::Resolve, owner, None);
            chain_from = Some(pr.bro_prov);
        } else {
            cutter.cut(g_disp, Bucket::CommitWait, owner, None);
        }

        // Walk the last-arrival chain backward through the dataflow graph.
        let mut edges = 0u64;
        let mut load_class = [0u64; 3];
        if let Some(head) = chain_from {
            let core_of = |inst: u8| cores[(inst as usize) % n];
            let mut i = head.inst as usize;
            for _ in 0..(4 * pr.edge.len().max(1)) {
                if cutter.cursor <= t0 || i >= pr.edge.len() {
                    break;
                }
                edges += 1;
                let here = core_of(i as u8);
                cutter.cut(pr.ready[i], Bucket::IssueWait, here, None);
                let e = pr.edge[i];
                match e.kind {
                    ProvKind::Dispatch => break,
                    ProvKind::Exec => {
                        if e.from as usize == here {
                            cutter.cut(e.sent, Bucket::OperandLocal, here, None);
                        } else {
                            cutter.cut(
                                e.sent,
                                Bucket::OperandNoc,
                                here,
                                Some((e.from as usize, here)),
                            );
                        }
                        cutter.cut(e.origin, Bucket::Execute, e.from as usize, None);
                        i = e.inst as usize;
                    }
                    ProvKind::Load => {
                        if e.from as usize == here {
                            cutter.cut(e.sent, Bucket::OperandLocal, here, None);
                        } else {
                            cutter.cut(
                                e.sent,
                                Bucket::OperandNoc,
                                here,
                                Some((e.from as usize, here)),
                            );
                        }
                        cutter.cut(e.origin, Bucket::MemWait, e.from as usize, None);
                        load_class[(e.aux as usize).min(2)] += 1;
                        // Continue through the load's own address operands.
                        i = e.inst as usize;
                    }
                    ProvKind::RegRead => {
                        if e.from as usize == here {
                            cutter.cut(e.sent, Bucket::OperandLocal, here, None);
                        } else {
                            cutter.cut(
                                e.sent,
                                Bucket::OperandNoc,
                                here,
                                Some((e.from as usize, here)),
                            );
                        }
                        cutter.cut(e.origin, Bucket::RegWait, e.from as usize, None);
                        break;
                    }
                }
            }
        }
        // Whatever remains below the walk is block fetch/dispatch work.
        cutter.cut(t0, Bucket::Fetch, owner, None);

        let chain_len = edges;
        let acc = self.prof.as_deref_mut().expect("profiling enabled");
        if acc.per_proc.len() <= pi {
            acc.per_proc.resize_with(pi + 1, ProcProfile::default);
        }
        if acc.last_commit_end.len() <= pi {
            acc.last_commit_end.resize(pi + 1, 0);
        }
        let lc = acc.last_commit_end[pi];
        let pp = &mut acc.per_proc[pi];

        // Block-level book: the unclipped span.
        pp.blocks += 1;
        pp.block_cycles += t_end - t0;
        pp.record_span(b.addr, t_end - t0);
        for &(s, e, bucket, _, _) in &cutter.segs {
            pp.block_buckets.add(bucket, e - s);
        }
        pp.crit_path_edges += edges;
        pp.longest_chain = pp.longest_chain.max(chain_len);
        pp.crit_loads_forwarded += load_class[0];
        pp.crit_loads_l1 += load_class[1];
        pp.crit_loads_missed += load_class[2];

        // Run-level book: commit-pull accounting. The gap between the
        // previous commit end and this block's init is charged to the
        // reason this block was fetched; segments are clipped at `lc`.
        if t0 > lc {
            let gap_bucket = match pr.reason {
                FetchReason::Entry | FetchReason::Sequential => Bucket::Fetch,
                FetchReason::HandOff => Bucket::HandOff,
                FetchReason::Redirect => Bucket::Mispredict,
                FetchReason::Refetch | FetchReason::Resume => Bucket::Squash,
            };
            let gap = t0 - lc;
            pp.run_buckets.add(gap_bucket, gap);
            acc.core_cycles[owner] += gap;
        }
        for &(s, e, bucket, core, link) in &cutter.segs {
            let s = s.max(lc);
            if s >= e {
                continue;
            }
            let d = e - s;
            pp.run_buckets.add(bucket, d);
            acc.core_cycles[core] += d;
            if let Some((a, bb)) = link {
                // Spread the stall across the dimension-order route.
                let path = mesh.route_nodes(NodeId(a), NodeId(bb));
                let hops = path.len().saturating_sub(1) as u64;
                if let Some(share) = d.checked_div(hops) {
                    let extra = (d % hops) as usize;
                    for (k, w) in path.windows(2).enumerate() {
                        let amount = share + u64::from(k < extra);
                        if amount > 0 {
                            *acc.link_cycles.entry((w[0].0, w[1].0)).or_insert(0) += amount;
                        }
                    }
                }
            }
        }
        pp.crit_path_cycles += t_end.saturating_sub(lc);
        acc.last_commit_end[pi] = t_end;
        let cum = pp.run_buckets.0;
        if self.tracer.enabled() {
            self.tracer.emit(t_end, || TraceEvent::ProfileBuckets {
                proc: pi,
                buckets: cum,
            });
        }
    }

    // -- main loop ------------------------------------------------------------

    /// Advances the machine one cycle.
    pub fn step(&mut self) {
        self.now += 1;
        self.mem.set_cycle(self.now);
        // Rotate the event wheel first: far events whose cycle just
        // entered the window must land in their slot before anything
        // this cycle can schedule after them.
        self.local.advance(self.now);
        // 0a. Hard faults: silence any core whose kill cycle arrived.
        if self.has_kills {
            self.apply_due_kills();
        }
        // 0. Fault layer: maybe start a link-contention burst (clamps
        // the operand mesh to bandwidth 1 for the burst length). One
        // Bernoulli draw per cycle; zero draws when the kind is off.
        if self.faults.active() {
            if let Some(len) = self.faults.noc_burst() {
                self.tracer.emit(self.now, || TraceEvent::FaultInjected {
                    kind: "noc_burst",
                    core: 0,
                    extra_cycles: len,
                });
                self.opnet.throttle(len);
            }
        }
        // 1. Networks.
        self.opnet.step();
        let delivered = self.opnet.drain_delivered();
        for (node, msg) in delivered {
            self.handle_op(node.0, msg);
        }
        // 2. Scheduled local/control events.
        let mut evs = std::mem::take(&mut self.scratch_evs);
        debug_assert!(evs.is_empty());
        self.local.pop_due(self.now, &mut evs);
        {
            for ev in evs.drain(..) {
                match ev {
                    Ev::Op(core, msg) => self.handle_op(core, msg),
                    Ev::OutputDone {
                        proc,
                        seq,
                        lsid,
                        prov,
                    } => self.on_output_done(proc, seq, lsid, prov),
                    Ev::Branch {
                        proc,
                        seq,
                        outcome,
                        prov,
                    } => self.on_branch(proc, seq, outcome, prov),
                    Ev::HandOff { proc, addr } => self.on_handoff(proc, addr),
                    Ev::FetchCmd { proc, seq, part } => self.on_fetch_cmd(proc, seq, part),
                    Ev::SendOperands {
                        from,
                        proc,
                        seq,
                        targets,
                        value,
                        prov,
                    } => {
                        // A dead sender's queued operands never leave.
                        if self.has_kills && self.dead[from] {
                            continue;
                        }
                        if self.procs[proc].blocks.contains_key(&seq) {
                            self.route_operands(from, proc, seq, &targets, value, prov);
                        }
                    }
                    Ev::CommitDone { proc, seq } => self.on_commit_done(proc, seq),
                    Ev::SlotFree { proc } => {
                        // Clamp: a recovery resets slots to the (possibly
                        // smaller) degraded allocation while dealloc
                        // broadcasts from pre-recovery commits are still
                        // in flight. No-op on healthy runs.
                        let p = &mut self.procs[proc];
                        p.slots_free = (p.slots_free + 1).min(p.max_inflight);
                    }
                    Ev::Inject { from, to, msg } => {
                        // A dead core's NoC ports are powered off.
                        if self.has_kills && self.dead[from] {
                            continue;
                        }
                        self.opnet.inject(NodeId(from), NodeId(to), msg);
                    }
                }
            }
        }
        self.scratch_evs = evs;
        // 3. Per-proc pipeline stages.
        for pi in 0..self.procs.len() {
            if self.procs[pi].halted {
                continue;
            }
            if self.has_kills {
                self.watchdog(pi);
                if self.procs[pi].halted {
                    continue;
                }
            }
            self.fetch_stage(pi);
            self.dispatch_stage(pi);
            self.completion_stage(pi);
            self.issue_stage(pi);
            self.check_commit(pi);
        }
        // 4. Interval sampling: one integer compare unless a window
        // closes this cycle.
        if self.sampler.as_ref().is_some_and(|s| s.due(self.now)) {
            let counters = self.sample_counters();
            if let Some(s) = self.sampler.as_mut() {
                s.sample(self.now, counters);
            }
        }
        // 5. clp-trend columnar recording: same one-compare contract.
        if self.trend.as_ref().is_some_and(|t| t.due(self.now)) {
            self.trend_sample();
        }
    }

    /// The earliest future cycle at which any subsystem can do work —
    /// the event-driven skip-ahead horizon.
    ///
    /// Deliberately conservative: it may name a cycle *earlier* than
    /// the true next event (waking up to a quiet cycle is a provable
    /// no-op) but never later (sleeping past an event would change the
    /// run). Every state transition in the machine is driven by one of
    /// the sources below — scheduled local events, mesh traffic, exec
    /// completions, dispatch slices, the fetch engine, the watchdog and
    /// kill schedule, and the samplers — so between `now` and the
    /// returned cycle every [`Machine::step`] is an empty loop over
    /// empty queues. `u64::MAX` means nothing is scheduled at all.
    fn next_event_cycle(&self) -> u64 {
        // In-flight mesh traffic moves every cycle.
        if !self.opnet.is_idle() {
            return self.now + 1;
        }
        let mut h = u64::MAX;
        // Scheduled local/control events.
        h = h.min(self.local.next_due(self.now));
        for p in &self.procs {
            if p.halted {
                continue;
            }
            // A draining recovery re-evaluates every cycle.
            if p.recovery_pending {
                return self.now + 1;
            }
            // Ready-to-issue instructions issue on the next step.
            if p.ready_mask != 0 {
                return self.now + 1;
            }
            // Earliest in-flight execution completion per core.
            let mut em = p.exec_mask;
            while em != 0 {
                let part = em.trailing_zeros() as usize;
                em &= em - 1;
                if let Some(&Reverse(e)) = p.exec[part].peek() {
                    h = h.min(e.done);
                }
            }
            // The fetch engine acts once its pending block is ready.
            // The dead-owner stall is deliberately ignored: waking to a
            // cycle where fetch still can't install is harmless.
            if p.halt_seq.is_none() && p.slots_free > 0 {
                if let Some(f) = &p.pending {
                    if p.program.block(f.addr).is_some() {
                        h = h.min(f.ready_at);
                    }
                }
            }
            // Dispatch slices whose fetch command has arrived: exactly
            // the `runnable` bits (`start_at` stays `u64::MAX` until the
            // FetchCmd event — which the local horizon already covers).
            if p.dispatch_armed > 0 {
                for b in p.blocks.values() {
                    let mut rm = b.runnable;
                    while rm != 0 {
                        let part = rm.trailing_zeros() as usize;
                        rm &= rm - 1;
                        h = h.min(b.dispatch[part].start_at);
                    }
                }
            }
        }
        if self.has_kills {
            if let Some(k) = self.pending_kills.first() {
                h = h.min(k.cycle);
            }
            for p in &self.procs {
                if p.halted || p.cores.is_empty() {
                    continue;
                }
                match p.probe_deadline {
                    // An armed probe is judged at its deadline.
                    Some(d) => h = h.min(d),
                    // Otherwise the watchdog fires one cycle past the
                    // current (backed-off) silence threshold.
                    None => {
                        let round = p.probe_round.min(self.cfg.watchdog_backoff_cap);
                        let timeout = self.cfg.watchdog_timeout << round;
                        h = h.min(p.last_beat + timeout + 1);
                    }
                }
            }
        }
        // Interval boundaries are events too: skipping past a due cycle
        // would shift every later window.
        if let Some(s) = &self.sampler {
            h = h.min(s.next_due_cycle());
        }
        if let Some(t) = &self.trend {
            h = h.min(t.next_due_cycle());
        }
        h
    }

    /// Runs until every composed processor halts, using event-driven
    /// skip-ahead: whole idle stretches (no tile has work, nothing in
    /// flight) are jumped over instead of stepped. Cycle counts, stats,
    /// traces, profiles, and trends are bit-identical to
    /// [`Machine::run_stepped`]; only wall-clock time differs. Plans
    /// with per-cycle PRNG draws (`noc_burst`) fall back to stepping so
    /// the draw schedule is preserved.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::CycleLimit`] past the configured budget,
    /// [`RunError::DeadlineExceeded`] past a configured per-run
    /// deadline, or [`RunError::Deadlock`] if nothing progresses for a
    /// long time.
    pub fn run(&mut self) -> Result<RunStats, RunError> {
        self.run_inner(self.can_skip)
    }

    /// The reference single-step loop: semantically identical to
    /// [`Machine::run`] but advances one cycle at a time with no
    /// skip-ahead. Exists so equivalence tests (and benchmarks) can
    /// compare the optimized engine against the plainly-correct one.
    ///
    /// # Errors
    ///
    /// Same contract as [`Machine::run`].
    pub fn run_stepped(&mut self) -> Result<RunStats, RunError> {
        self.run_inner(false)
    }

    fn run_inner(&mut self, skip: bool) -> Result<RunStats, RunError> {
        // Kill schedules are validated against the *composed* machine:
        // every target must be a participating core, and every logical
        // processor must keep at least one survivor.
        if self.has_kills {
            let mut kills_on_proc = vec![0usize; self.procs.len()];
            for k in &self.pending_kills {
                let core = usize::from(k.core);
                match self.core_map.get(core).copied().flatten() {
                    Some((pi, _)) => kills_on_proc[pi] += 1,
                    None => return Err(RunError::InvalidKill { core }),
                }
            }
            for (pi, &n_kills) in kills_on_proc.iter().enumerate() {
                if n_kills >= self.procs[pi].n {
                    return Err(RunError::NoSurvivors { proc: pi });
                }
            }
        }
        // Horizon backoff: during work-dense phases the skip check
        // never fires, so its cost is pure overhead. After each failed
        // attempt the next one is deferred exponentially (up to 64
        // steps). This only changes *when* a skip is attempted — a
        // cycle the horizon could have jumped is instead stepped, and
        // stepping an idle cycle is exactly equivalent — so reported
        // cycles stay bit-identical while dense phases pay (almost)
        // nothing for the feature.
        let mut backoff_steps = 0u32;
        let mut fail_streak = 0u32;
        let mut steps = 0u64;
        while self.procs.iter().any(|p| !p.halted) {
            if self.now >= self.cfg.max_cycles {
                return Err(RunError::CycleLimit(self.cfg.max_cycles));
            }
            if let Some(d) = self.cfg.deadline {
                if self.now >= d {
                    return Err(RunError::DeadlineExceeded { budget: d });
                }
            }
            if self.now.saturating_sub(self.last_progress) > 500_000 {
                return Err(RunError::Deadlock { cycle: self.now });
            }
            if skip && backoff_steps == 0 {
                // Jump to one cycle *before* the horizon so the next
                // step lands exactly on it. The clamp makes the
                // CycleLimit / Deadlock checks above trip at the same
                // `now` a stepped run reports: a stepped run's last
                // executed step lands on `max_cycles` (or
                // `last_progress + 500_001`), then the loop top errors.
                let h = self.next_event_cycle();
                let mut stop =
                    (self.cfg.max_cycles.saturating_sub(1)).min(self.last_progress + 500_000);
                // A skip may never jump past the deadline: the stepped
                // run's last executed step lands exactly on it, then the
                // loop top reports the kill at the same `now`.
                if let Some(d) = self.cfg.deadline {
                    stop = stop.min(d.saturating_sub(1));
                }
                let target = h.saturating_sub(1).min(stop);
                if target > self.now {
                    // The mesh keeps its own cycle counter (it stamps
                    // injections and ages throttles); an idle mesh step
                    // is a pure increment, so syncing the counter is
                    // exactly equivalent to stepping it.
                    self.opnet.skip_to(target);
                    self.now = target;
                    fail_streak = 0;
                } else {
                    fail_streak = (fail_streak + 1).min(6);
                    backoff_steps = 1 << fail_streak;
                }
            } else {
                backoff_steps = backoff_steps.saturating_sub(1);
            }
            self.step();
            steps += 1;
        }
        if std::env::var_os("CLP_ENGINE_DEBUG").is_some() {
            eprintln!("engine: {steps} steps over {} cycles", self.now);
        }
        Ok(self.collect_stats())
    }

    fn collect_stats(&self) -> RunStats {
        let mut stats = RunStats {
            cycles: self.now,
            procs: self.procs.iter().map(|p| p.stats.clone()).collect(),
            mem: self.mem.stats(),
            operand_net: *self.opnet.stats(),
            control_net: Default::default(),
            faults: *self.faults.stats(),
            recovery: {
                let mut r = self.recovery_stats;
                if let Some((c0, i0)) = self.recovery_mark {
                    let insts: u64 = self.procs.iter().map(|p| p.stats.insts_dispatched).sum();
                    r.degraded_cycles = self.now.saturating_sub(c0);
                    r.degraded_insts = insts.saturating_sub(i0);
                }
                r
            },
            compose: self.compose_stats,
        };
        for (i, p) in self.procs.iter().enumerate() {
            stats.procs[i].predictor = *p.predictor.stats();
            if stats.procs[i].cycles == 0 {
                stats.procs[i].cycles = self.now;
            }
        }
        stats
    }

    /// The committed value of register `reg` on processor `pid` (read
    /// after the run; `r1` is the entry function's return value).
    #[must_use]
    pub fn register(&self, pid: ProcId, reg: Reg) -> u64 {
        self.procs[pid.0].regs.committed(reg)
    }

    /// Releases a halted processor's cores so they can be recomposed.
    /// The released cores' L1 caches are deliberately *not* flushed: the
    /// directory keeps them coherent, which is what lets composition
    /// changes hand data over on demand (§4.7).
    ///
    /// # Panics
    ///
    /// Panics if the processor has not halted (its speculative state
    /// would be dangling).
    pub fn decompose(&mut self, pid: ProcId) {
        assert!(
            self.procs[pid.0].halted,
            "decompose requires a halted processor"
        );
        let released = self.procs[pid.0].cores.len();
        for &c in &self.procs[pid.0].cores {
            self.core_map[c] = None;
        }
        self.procs[pid.0].cores.clear();
        self.compose_stats.decompositions += 1;
        self.compose_stats.cores_released += released as u64;
        self.compose_stats.last_change_cycle = self.now;
        self.tracer
            .emit(self.now, || TraceEvent::ProcessorDecomposed {
                proc: pid.0,
                cores: released,
            });
    }

    /// The physical base of processor `pid`'s address space (multiply
    /// composed programs use identical virtual layouts; read their final
    /// memory at `addr_base + virtual`).
    #[must_use]
    pub fn addr_base(&self, pid: ProcId) -> u64 {
        self.procs[pid.0].addr_base
    }

    /// Whether processor `pid` has halted.
    #[must_use]
    pub fn is_halted(&self, pid: ProcId) -> bool {
        self.procs[pid.0].halted
    }

    /// The current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.now
    }

    /// A human-readable snapshot of in-flight state (stall debugging).
    #[must_use]
    pub fn debug_snapshot(&self) -> String {
        let mut out = format!("cycle {}\n", self.now);
        for (pi, p) in self.procs.iter().enumerate() {
            out.push_str(&format!(
                "proc{pi}: halted={} halt_seq={:?} slots_free={} pending={:?} chain_next={:?}\n",
                p.halted,
                p.halt_seq,
                p.slots_free,
                p.pending.as_ref().map(|f| (f.addr, f.ready_at)),
                p.chain_next,
            ));
            for (seq, b) in p.blocks.iter() {
                out.push_str(&format!(
                    "  blk {seq} @{:#x}: outputs {}/{} resolved={} committing={} disp_pending={}\n",
                    b.addr,
                    b.outputs_done,
                    b.outputs_needed,
                    b.resolved,
                    b.committing,
                    b.dispatch_pending_cores
                ));
                for (i, st) in b.ops.iter().enumerate() {
                    let inst = &b.block.instructions()[i];
                    if !st.fired {
                        out.push_str(&format!(
                            "    i{i} {} disp={} queued={} got={:?} arity={} pred={}\n",
                            inst.opcode,
                            st.dispatched,
                            st.queued,
                            st.got,
                            inst.data_arity(),
                            inst.is_predicated()
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "  rf pendings={:?} versions={:?}\n",
                p.regs.pending_entries(),
                p.regs.version_entries()
            ));
            out.push_str("  regs:");
            for r in 9..24 {
                out.push_str(&format!(" r{r}={}", p.regs.committed(Reg::new(r))));
            }
            out.push('\n');
            out.push_str(&format!(
                "  waiting_reads={:?} ready={:?} exec={:?} local_events={}\n",
                p.waiting_reads
                    .iter()
                    .map(|w| (w.seq, w.reg))
                    .collect::<Vec<_>>(),
                p.ready.iter().map(|r| r.len()).collect::<Vec<_>>(),
                p.exec.iter().map(|q| q.len()).collect::<Vec<_>>(),
                self.local.len(),
            ));
        }
        out
    }

    /// The commit-latency breakdown helper for tests.
    #[must_use]
    pub fn commit_breakdown(&self, pid: ProcId) -> CommitLatencyBreakdown {
        self.procs[pid.0].stats.commit_latency()
    }
}
