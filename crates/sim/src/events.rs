//! A timer wheel for the machine's scheduled local events.
//!
//! The hot loop schedules and drains thousands of events per simulated
//! kilocycle, almost all of them within a few hundred cycles of `now`
//! (control hops, cache latencies, DRAM refills). A `BTreeMap<u64,
//! Vec<Ev>>` pays a tree walk per schedule and per drain; the wheel
//! turns both into an indexed `Vec` push/drain. Events further out than
//! the wheel window (rare: only pathological fault delays) overflow
//! into a `BTreeMap` and migrate into the wheel as `now` approaches.
//!
//! Determinism: events for the same cycle drain in schedule order,
//! exactly like the `Vec` per key of the map this replaces. Far events
//! migrate at the *start* of the first cycle whose window reaches them
//! — before any same-cycle scheduling can run — so a far-scheduled
//! event still precedes any later-scheduled event for the same cycle.

use std::collections::BTreeMap;

/// Wheel window in cycles. Power of two; must exceed every common
/// event delay (control hops, L2 sweeps, DRAM at 150 cycles) so the
/// overflow map stays cold.
const WHEEL: u64 = 256;
const MASK: u64 = WHEEL - 1;

/// A monotonic schedule of `(cycle, event)` pairs drained cycle by
/// cycle. See the module docs for the layout and ordering contract.
#[derive(Debug)]
pub(crate) struct EventWheel<T> {
    /// `slots[c & MASK]` holds the events due at cycle `c` for every
    /// `c` within `WHEEL - 1` cycles of the owner's current cycle.
    slots: Vec<Vec<T>>,
    /// Occupancy bitmask over `slots` (one bit per slot) so the
    /// skip-ahead horizon can find the next non-empty slot without
    /// scanning all of them.
    occupied: [u64; (WHEEL / 64) as usize],
    /// Events at least `WHEEL` cycles out, keyed by due cycle.
    far: BTreeMap<u64, Vec<T>>,
    /// Events currently in `slots` (kept for the debug dump).
    near: usize,
}

impl<T> EventWheel<T> {
    pub(crate) fn new() -> Self {
        EventWheel {
            slots: (0..WHEEL).map(|_| Vec::new()).collect(),
            occupied: [0; (WHEEL / 64) as usize],
            far: BTreeMap::new(),
            near: 0,
        }
    }

    #[inline]
    fn set_bit(&mut self, slot: u64) {
        self.occupied[(slot / 64) as usize] |= 1 << (slot % 64);
    }

    #[inline]
    fn clear_bit(&mut self, slot: u64) {
        self.occupied[(slot / 64) as usize] &= !(1 << (slot % 64));
    }

    /// Schedules `ev` at cycle `at`, which must be strictly after the
    /// owner's current cycle `now`.
    pub(crate) fn schedule(&mut self, now: u64, at: u64, ev: T) {
        debug_assert!(at > now, "events must be scheduled in the future");
        if at - now < WHEEL {
            let slot = at & MASK;
            self.slots[slot as usize].push(ev);
            self.set_bit(slot);
            self.near += 1;
        } else {
            self.far.entry(at).or_default().push(ev);
        }
    }

    /// Rotates the wheel to `now`: far events whose cycle just entered
    /// the window move into their slot. Must run at the start of each
    /// cycle, before any `schedule` calls for that cycle.
    pub(crate) fn advance(&mut self, now: u64) {
        while let Some(entry) = self.far.first_entry() {
            let at = *entry.key();
            if at - now >= WHEEL {
                break;
            }
            let mut evs = entry.remove();
            let slot = at & MASK;
            self.near += evs.len();
            debug_assert!(self.slots[slot as usize].is_empty());
            self.slots[slot as usize].append(&mut evs);
            self.set_bit(slot);
        }
    }

    /// Moves every event due at `now` into `out`, in schedule order.
    pub(crate) fn pop_due(&mut self, now: u64, out: &mut Vec<T>) {
        let slot = now & MASK;
        let bucket = &mut self.slots[slot as usize];
        if bucket.is_empty() {
            return;
        }
        self.near -= bucket.len();
        out.append(bucket);
        self.clear_bit(slot);
    }

    /// The earliest cycle after `now` with a scheduled event, or
    /// `u64::MAX` if nothing is scheduled.
    pub(crate) fn next_due(&self, now: u64) -> u64 {
        if self.near > 0 {
            // Scan the occupancy bitmask circularly starting just past
            // `now`'s slot; distance in slots = distance in cycles
            // because every near event is within one wheel turn.
            let start = (now + 1) & MASK;
            for d in 0..(WHEEL / 64) + 1 {
                let word_idx = ((start / 64 + d) % (WHEEL / 64)) as usize;
                let mut word = self.occupied[word_idx];
                if d == 0 {
                    // Mask off slots at or before `start` in this word.
                    word &= !0u64 << (start % 64);
                } else if d == WHEEL / 64 {
                    // Wrapped back to the first word: only slots up to
                    // and including `now & MASK` remain unchecked.
                    word &= !(!0u64 << (start % 64));
                }
                if word != 0 {
                    let slot = (word_idx as u64) * 64 + u64::from(word.trailing_zeros());
                    let delta = (slot.wrapping_sub(now + 1)) & MASK;
                    return now + 1 + delta;
                }
            }
        }
        self.far.first_key_value().map_or(u64::MAX, |(&at, _)| at)
    }

    /// Total scheduled events (near and far) — debug dumps only.
    pub(crate) fn len(&self) -> usize {
        self.near + self.far.values().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_schedule_order() {
        let mut w: EventWheel<u32> = EventWheel::new();
        w.schedule(0, 3, 1);
        w.schedule(0, 3, 2);
        w.schedule(0, 5, 3);
        let mut out = Vec::new();
        for c in 1..=5 {
            w.advance(c);
            w.pop_due(c, &mut out);
        }
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn far_events_migrate_before_same_cycle_schedules() {
        let mut w: EventWheel<u32> = EventWheel::new();
        let at = WHEEL + 10;
        w.schedule(0, at, 1); // far
        assert_eq!(w.len(), 1);
        // Advance until `at` enters the window, then schedule another
        // event for the same cycle: the far one must drain first.
        let now = at - WHEEL + 1;
        w.advance(now);
        w.schedule(now, at, 2);
        let mut out = Vec::new();
        w.advance(at);
        w.pop_due(at, &mut out);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn next_due_finds_near_and_far() {
        let mut w: EventWheel<u32> = EventWheel::new();
        assert_eq!(w.next_due(0), u64::MAX);
        w.schedule(0, WHEEL * 3, 9);
        assert_eq!(w.next_due(0), WHEEL * 3);
        w.schedule(0, 7, 1);
        assert_eq!(w.next_due(0), 7);
        w.schedule(0, 2, 2);
        assert_eq!(w.next_due(0), 2);
        let mut out = Vec::new();
        for c in 1..=7 {
            w.advance(c);
            w.pop_due(c, &mut out);
        }
        assert_eq!(w.next_due(7), WHEEL * 3);
    }

    #[test]
    fn next_due_wraps_around_the_wheel() {
        let mut w: EventWheel<u32> = EventWheel::new();
        // Place `now` late in the wheel so the next event's slot index
        // is numerically smaller (wrap-around).
        let now = WHEEL - 2;
        w.schedule(now, now + 5, 1);
        assert_eq!(w.next_due(now), now + 5);
        let mut out = Vec::new();
        for c in now + 1..=now + 5 {
            w.advance(c);
            w.pop_due(c, &mut out);
        }
        assert_eq!(out, vec![1]);
    }
}
