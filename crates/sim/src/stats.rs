//! Simulation statistics, including the Figure 9 latency breakdowns.

use crate::fault::FaultStats;
use clp_mem::MemStats;
use clp_noc::MeshStats;
use clp_predictor::PredictorStats;
use serde::{Deserialize, Serialize};

/// Average per-block distributed-fetch latency components (Figure 9a).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FetchLatencyBreakdown {
    /// Next-block prediction (0 for unspeculated single-core runs).
    pub prediction: f64,
    /// I-cache tag access at the owner.
    pub tag_access: f64,
    /// Control hand-off from the previous owner.
    pub hand_off: f64,
    /// Broadcasting the fetch command to participating cores.
    pub fetch_distribution: f64,
    /// Fetching and dispatching the block's instructions into the window.
    pub dispatch: f64,
}

impl FetchLatencyBreakdown {
    /// Sum of all components.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.prediction + self.tag_access + self.hand_off + self.fetch_distribution + self.dispatch
    }
}

/// Average per-block commit latency components (Figure 9b).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CommitLatencyBreakdown {
    /// Commit command + acknowledgment handshaking across cores.
    pub handshake: f64,
    /// Writing architectural state (register writes + store drain).
    pub arch_update: f64,
}

impl CommitLatencyBreakdown {
    /// Sum of all components.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.handshake + self.arch_update
    }
}

/// Counters for one logical processor's run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ProcStats {
    /// Cycles until this processor halted.
    pub cycles: u64,
    /// Blocks committed.
    pub blocks_committed: u64,
    /// Blocks squashed (mispredict, violation, or wrong-path).
    pub blocks_flushed: u64,
    /// Instructions actually fired (including predicated no-op firings).
    pub insts_fired: u64,
    /// Block slots in committed blocks (every slot, fired or not).
    pub insts_dispatched: u64,
    /// Instructions that actually fired in committed blocks.
    pub insts_committed: u64,
    /// Integer-class ALU executions.
    pub int_ops: u64,
    /// Floating-point executions.
    pub fp_ops: u64,
    /// Register-bank reads performed.
    pub reg_reads: u64,
    /// Register writes forwarded.
    pub reg_writes: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Branch mispredictions (target-level).
    pub mispredicts: u64,
    /// Load/store ordering violations (pipeline flushes).
    pub violations: u64,
    /// Memory requests retried after an LSQ NACK.
    pub nack_retries: u64,
    /// Next-block predictor counters.
    pub predictor: PredictorStats,
    /// Accumulated fetch-latency components (sums; divide by
    /// `fetch_samples`).
    pub fetch_lat_sum: FetchLatencyBreakdown,
    /// Blocks contributing to `fetch_lat_sum`.
    pub fetch_samples: u64,
    /// Accumulated commit-latency components.
    pub commit_lat_sum: CommitLatencyBreakdown,
    /// Blocks contributing to `commit_lat_sum`.
    pub commit_samples: u64,
}

impl ProcStats {
    /// Mean fetch-latency breakdown per block.
    #[must_use]
    pub fn fetch_latency(&self) -> FetchLatencyBreakdown {
        let n = self.fetch_samples.max(1) as f64;
        FetchLatencyBreakdown {
            prediction: self.fetch_lat_sum.prediction / n,
            tag_access: self.fetch_lat_sum.tag_access / n,
            hand_off: self.fetch_lat_sum.hand_off / n,
            fetch_distribution: self.fetch_lat_sum.fetch_distribution / n,
            dispatch: self.fetch_lat_sum.dispatch / n,
        }
    }

    /// Mean commit-latency breakdown per block.
    #[must_use]
    pub fn commit_latency(&self) -> CommitLatencyBreakdown {
        let n = self.commit_samples.max(1) as f64;
        CommitLatencyBreakdown {
            handshake: self.commit_lat_sum.handshake / n,
            arch_update: self.commit_lat_sum.arch_update / n,
        }
    }

    /// Dispatched (block-slot) instructions per cycle — the useful-work
    /// rate the figures plot: every slot of a committed block, fired or
    /// predicated off.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts_dispatched as f64 / self.cycles as f64
        }
    }

    /// Committed instructions per cycle, counting only instructions that
    /// actually fired in committed blocks. Always `<= ipc()`; the gap is
    /// the predicated-off and never-fired slot fraction.
    #[must_use]
    pub fn committed_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts_committed as f64 / self.cycles as f64
        }
    }

    /// Renders these counters as a stats-registry node named `name`.
    #[must_use]
    pub fn to_node(&self, name: &str) -> clp_obs::StatsNode {
        let fetch = self.fetch_latency();
        let commit = self.commit_latency();
        clp_obs::StatsNode::new(name)
            .count("cycles", self.cycles)
            .count("blocks_committed", self.blocks_committed)
            .count("blocks_flushed", self.blocks_flushed)
            .count("insts_fired", self.insts_fired)
            .count("insts_dispatched", self.insts_dispatched)
            .count("insts_committed", self.insts_committed)
            .count("int_ops", self.int_ops)
            .count("fp_ops", self.fp_ops)
            .count("reg_reads", self.reg_reads)
            .count("reg_writes", self.reg_writes)
            .count("loads", self.loads)
            .count("stores", self.stores)
            .count("mispredicts", self.mispredicts)
            .count("violations", self.violations)
            .count("nack_retries", self.nack_retries)
            .gauge("ipc", self.ipc())
            .gauge("committed_ipc", self.committed_ipc())
            .child(self.predictor.to_node("predictor"))
            .child(
                clp_obs::StatsNode::new("fetch_latency")
                    .gauge("prediction", fetch.prediction)
                    .gauge("tag_access", fetch.tag_access)
                    .gauge("hand_off", fetch.hand_off)
                    .gauge("fetch_distribution", fetch.fetch_distribution)
                    .gauge("dispatch", fetch.dispatch)
                    .gauge("total", fetch.total()),
            )
            .child(
                clp_obs::StatsNode::new("commit_latency")
                    .gauge("handshake", commit.handshake)
                    .gauge("arch_update", commit.arch_update)
                    .gauge("total", commit.total()),
            )
    }
}

/// Counters for hard-fault detection and degraded-mode recomposition.
///
/// All zero unless the fault plan scheduled core kills and at least one
/// fired during the run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Cores killed by the fault plan during the run.
    pub cores_killed: u64,
    /// Completed recovery episodes (one may cover several dead cores).
    pub recoveries: u64,
    /// Heartbeat probe rounds issued by the watchdog (including the
    /// all-alive rounds that only fed the exponential backoff).
    pub probes: u64,
    /// Total cycles from each kill to its detection (sum over dead cores;
    /// divide by `cores_killed` for the mean detection latency).
    pub detection_cycles: u64,
    /// In-flight blocks flushed by recovery (speculative work discarded
    /// because it might have depended on the dead cores).
    pub flushed_blocks: u64,
    /// Architectural registers migrated off dead cores' banks.
    pub migrated_regs: u64,
    /// Dirty L1 lines written back through the S-NUCA L2 during state
    /// evacuation.
    pub migrated_lines: u64,
    /// Bytes of architectural state moved (registers + dirty lines).
    pub migrated_bytes: u64,
    /// Cycles charged to state migration before fetch resumed.
    pub migration_cycles: u64,
    /// Instructions dispatched after the first recovery completed.
    pub degraded_insts: u64,
    /// Cycles executed after the first recovery completed.
    pub degraded_cycles: u64,
}

impl RecoveryStats {
    /// Mean kill-to-detection latency in cycles (0 if nothing died).
    #[must_use]
    pub fn mean_detection_latency(&self) -> f64 {
        if self.cores_killed == 0 {
            0.0
        } else {
            self.detection_cycles as f64 / self.cores_killed as f64
        }
    }

    /// Dispatched IPC over the post-recovery (degraded) portion of the
    /// run; 0 if no recovery happened.
    #[must_use]
    pub fn degraded_ipc(&self) -> f64 {
        if self.degraded_cycles == 0 {
            0.0
        } else {
            self.degraded_insts as f64 / self.degraded_cycles as f64
        }
    }

    /// Renders these counters as a stats-registry node named
    /// `"recovery"`.
    #[must_use]
    pub fn to_node(&self) -> clp_obs::StatsNode {
        clp_obs::StatsNode::new("recovery")
            .count("cores_killed", self.cores_killed)
            .count("recoveries", self.recoveries)
            .count("probes", self.probes)
            .count("detection_cycles", self.detection_cycles)
            .gauge("mean_detection_latency", self.mean_detection_latency())
            .count("flushed_blocks", self.flushed_blocks)
            .count("migrated_regs", self.migrated_regs)
            .count("migrated_lines", self.migrated_lines)
            .count("migrated_bytes", self.migrated_bytes)
            .count("migration_cycles", self.migration_cycles)
            .count("degraded_insts", self.degraded_insts)
            .count("degraded_cycles", self.degraded_cycles)
            .gauge("degraded_ipc", self.degraded_ipc())
    }
}

/// Counters for composition-allocation decisions: when logical
/// processors were composed, decomposed, or recomposed, and over how
/// many cores. Lets trend series be aligned with allocation changes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComposeStats {
    /// Logical processors composed (including the initial composition).
    pub compositions: u64,
    /// Processors that released their cores back to the chip.
    pub decompositions: u64,
    /// Degraded-mode recompositions after a hard core failure.
    pub recompositions: u64,
    /// Total cores allocated across all compositions.
    pub cores_allocated: u64,
    /// Total cores released across all decompositions.
    pub cores_released: u64,
    /// Cycle of the most recent allocation change (0 if none happened
    /// after cycle 0).
    pub last_change_cycle: u64,
}

impl ComposeStats {
    /// Renders these counters as a stats-registry node named
    /// `"compose"`.
    #[must_use]
    pub fn to_node(&self) -> clp_obs::StatsNode {
        clp_obs::StatsNode::new("compose")
            .count("compositions", self.compositions)
            .count("decompositions", self.decompositions)
            .count("recompositions", self.recompositions)
            .count("cores_allocated", self.cores_allocated)
            .count("cores_released", self.cores_released)
            .count("last_change_cycle", self.last_change_cycle)
    }
}

/// Chip-level statistics for a completed run (inputs to the power model).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Total machine cycles simulated.
    pub cycles: u64,
    /// Per-logical-processor counters.
    pub procs: Vec<ProcStats>,
    /// Memory-hierarchy counters.
    pub mem: MemStats,
    /// Operand-network counters.
    pub operand_net: MeshStats,
    /// Control-network counters.
    pub control_net: MeshStats,
    /// Fault-injection counters (all zero on fault-free runs).
    pub faults: FaultStats,
    /// Hard-fault detection/recomposition counters (all zero unless a
    /// scheduled core kill fired).
    pub recovery: RecoveryStats,
    /// Composition-allocation counters (when, how many cores).
    pub compose: ComposeStats,
}

impl RunStats {
    /// Sums a field across processors.
    #[must_use]
    pub fn total_blocks_committed(&self) -> u64 {
        self.procs.iter().map(|p| p.blocks_committed).sum()
    }

    /// Total committed instructions across processors.
    #[must_use]
    pub fn total_insts(&self) -> u64 {
        self.procs.iter().map(|p| p.insts_dispatched).sum()
    }

    /// Builds the unified hierarchical stats registry for this run.
    ///
    /// The tree shape is stable:
    ///
    /// ```text
    /// run
    /// ├── proc0, proc1, …   (ProcStats, each with predictor/fetch/commit)
    /// ├── mem               (MemStats)
    /// ├── operand_net       (MeshStats)
    /// ├── control_net       (MeshStats)
    /// ├── faults            (FaultStats — zeros on fault-free runs)
    /// ├── recovery          (RecoveryStats — zeros unless a core died)
    /// └── compose           (ComposeStats — allocation decisions)
    /// ```
    ///
    /// `intervals` carries the per-interval samples collected during the
    /// run (empty when sampling was off).
    #[must_use]
    pub fn to_snapshot(&self, intervals: Vec<clp_obs::IntervalSample>) -> clp_obs::StatsSnapshot {
        let mut root = clp_obs::StatsNode::new("run")
            .count("cycles", self.cycles)
            .count("total_blocks_committed", self.total_blocks_committed())
            .count("total_insts", self.total_insts());
        for (i, p) in self.procs.iter().enumerate() {
            root = root.child(p.to_node(&format!("proc{i}")));
        }
        root = root
            .child(self.mem.to_node())
            .child(self.operand_net.to_node("operand_net"))
            .child(self.control_net.to_node("control_net"))
            .child(self.faults.to_node())
            .child(self.recovery.to_node())
            .child(self.compose.to_node());
        clp_obs::StatsSnapshot {
            cycles: self.cycles,
            root,
            intervals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let f = FetchLatencyBreakdown {
            prediction: 3.0,
            tag_access: 1.0,
            hand_off: 2.0,
            fetch_distribution: 4.0,
            dispatch: 8.0,
        };
        assert!((f.total() - 18.0).abs() < 1e-12);
        let c = CommitLatencyBreakdown {
            handshake: 5.0,
            arch_update: 2.0,
        };
        assert!((c.total() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn averages_divide_by_samples() {
        let mut p = ProcStats::default();
        p.fetch_lat_sum.dispatch = 30.0;
        p.fetch_samples = 10;
        assert!((p.fetch_latency().dispatch - 3.0).abs() < 1e-12);
        p.commit_lat_sum.handshake = 40.0;
        p.commit_samples = 20;
        assert!((p.commit_latency().handshake - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ipc_guards_zero_cycles() {
        let p = ProcStats::default();
        assert_eq!(p.ipc(), 0.0);
    }
}
