//! The speculative, versioned architectural register file.
//!
//! TFlex forwards register outputs of older in-flight blocks to younger
//! readers through the distributed register banks. This module models
//! that functionally: each block's register writes create *versions*
//! ordered by block sequence number; a read by block `s` observes the
//! youngest version older than `s`, or stalls if an older in-flight block
//! still owes a write to that register.

use clp_isa::Reg;
use std::collections::BTreeMap;

/// Result of attempting a speculative register read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegRead {
    /// The value is available.
    Ready(u64),
    /// An older in-flight block will write this register and has not yet
    /// forwarded a value: the reader must wait.
    Wait,
}

/// One logical processor's register state.
///
/// # Examples
///
/// ```
/// use clp_sim::{RegFile, RegRead};
/// use clp_isa::Reg;
///
/// let mut rf = RegFile::new(128);
/// rf.declare_write(Reg::new(5), 1);             // block 1 will write r5
/// assert_eq!(rf.read(Reg::new(5), 2), RegRead::Wait);
/// rf.forward_write(Reg::new(5), 1, Some(42));   // value forwarded
/// assert_eq!(rf.read(Reg::new(5), 2), RegRead::Ready(42));
/// rf.commit(1);
/// assert_eq!(rf.committed(Reg::new(5)), 42);
/// ```
#[derive(Clone, Debug)]
pub struct RegFile {
    committed: Vec<u64>,
    /// Forwarded (speculative) versions: (reg, block seq) -> value.
    versions: BTreeMap<(u8, u64), u64>,
    /// Outstanding writes: (reg, block seq) of blocks that declare a
    /// write they have not yet forwarded (or nulled).
    pending: BTreeMap<(u8, u64), ()>,
}

impl RegFile {
    /// Creates a register file with `n` registers, all zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        RegFile {
            committed: vec![0; n],
            versions: BTreeMap::new(),
            pending: BTreeMap::new(),
        }
    }

    /// Direct access to the committed value (used for initialization and
    /// final-state inspection).
    #[must_use]
    pub fn committed(&self, reg: Reg) -> u64 {
        self.committed[reg.index()]
    }

    /// Sets a committed value (machine initialization).
    pub fn set_committed(&mut self, reg: Reg, value: u64) {
        self.committed[reg.index()] = value;
    }

    /// Declares that block `seq` will write `reg` (called at dispatch of
    /// the block's WRITE instructions). Readers younger than `seq` wait
    /// until the write is forwarded or nulled.
    pub fn declare_write(&mut self, reg: Reg, seq: u64) {
        self.pending.insert((reg.index() as u8, seq), ());
    }

    /// Forwards block `seq`'s write of `reg`. `value` is `None` for a
    /// null (predicated-off) write, which resolves the pending entry
    /// without creating a version.
    pub fn forward_write(&mut self, reg: Reg, seq: u64, value: Option<u64>) {
        let key = (reg.index() as u8, seq);
        self.pending.remove(&key);
        if let Some(v) = value {
            self.versions.insert(key, v);
        }
    }

    /// Attempts a read of `reg` on behalf of block `seq`.
    #[must_use]
    pub fn read(&self, reg: Reg, seq: u64) -> RegRead {
        let r = reg.index() as u8;
        // Any older pending write blocks the read.
        if self.pending.range((r, 0)..(r, seq)).next().is_some() {
            return RegRead::Wait;
        }
        match self.versions.range((r, 0)..(r, seq)).next_back() {
            Some((_, &v)) => RegRead::Ready(v),
            None => RegRead::Ready(self.committed[reg.index()]),
        }
    }

    /// Commits block `seq`: its versions become the committed values.
    /// Returns the number of architectural writes performed.
    pub fn commit(&mut self, seq: u64) -> usize {
        let keys: Vec<(u8, u64)> = self
            .versions
            .keys()
            .copied()
            .filter(|&(_, s)| s == seq)
            .collect();
        let mut n = 0;
        for (r, s) in keys {
            let v = self.versions.remove(&(r, s)).expect("key exists");
            self.committed[r as usize] = v;
            n += 1;
        }
        // Pending entries of a committed block must all be resolved.
        debug_assert!(!self.pending.keys().any(|&(_, s)| s == seq));
        n
    }

    /// Squashes all speculative state of blocks with `seq >= from`.
    pub fn flush_from(&mut self, from: u64) {
        self.versions.retain(|&(_, s), _| s < from);
        self.pending.retain(|&(_, s), _| s < from);
    }

    /// Outstanding declared-but-unforwarded writes `(reg, seq)` (debug).
    #[must_use]
    pub fn pending_entries(&self) -> Vec<(u8, u64)> {
        self.pending.keys().copied().collect()
    }

    /// Forwarded speculative versions `(reg, seq)` (debug).
    #[must_use]
    pub fn version_entries(&self) -> Vec<(u8, u64)> {
        self.versions.keys().copied().collect()
    }

    /// True if no speculative state is outstanding.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.versions.is_empty() && self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: usize) -> Reg {
        Reg::new(n)
    }

    #[test]
    fn read_committed_when_no_versions() {
        let mut f = RegFile::new(128);
        f.set_committed(r(5), 42);
        assert_eq!(f.read(r(5), 10), RegRead::Ready(42));
    }

    #[test]
    fn read_waits_for_older_pending_write() {
        let mut f = RegFile::new(128);
        f.declare_write(r(3), 1);
        assert_eq!(f.read(r(3), 2), RegRead::Wait);
        // The writing block itself (and older blocks) do not wait.
        assert_eq!(f.read(r(3), 1), RegRead::Ready(0));
        f.forward_write(r(3), 1, Some(7));
        assert_eq!(f.read(r(3), 2), RegRead::Ready(7));
    }

    #[test]
    fn null_write_unblocks_with_old_value() {
        let mut f = RegFile::new(128);
        f.set_committed(r(3), 9);
        f.declare_write(r(3), 1);
        f.forward_write(r(3), 1, None);
        assert_eq!(f.read(r(3), 2), RegRead::Ready(9));
    }

    #[test]
    fn youngest_older_version_wins() {
        let mut f = RegFile::new(128);
        f.forward_write(r(4), 1, Some(10));
        f.forward_write(r(4), 3, Some(30));
        assert_eq!(f.read(r(4), 2), RegRead::Ready(10));
        assert_eq!(f.read(r(4), 4), RegRead::Ready(30));
        assert_eq!(f.read(r(4), 1), RegRead::Ready(0), "own age excluded");
    }

    #[test]
    fn commit_promotes_and_clears() {
        let mut f = RegFile::new(128);
        f.declare_write(r(4), 1);
        f.forward_write(r(4), 1, Some(10));
        assert_eq!(f.commit(1), 1);
        assert_eq!(f.committed(r(4)), 10);
        assert!(f.is_clean());
    }

    #[test]
    fn flush_discards_speculation() {
        let mut f = RegFile::new(128);
        f.set_committed(r(4), 1);
        f.declare_write(r(4), 5);
        f.forward_write(r(4), 5, Some(99));
        f.declare_write(r(6), 6);
        f.flush_from(5);
        assert!(f.is_clean());
        assert_eq!(f.read(r(4), 10), RegRead::Ready(1));
    }

    #[test]
    fn flush_keeps_older_state() {
        let mut f = RegFile::new(128);
        f.forward_write(r(4), 2, Some(20));
        f.declare_write(r(7), 3);
        f.flush_from(3);
        assert_eq!(f.read(r(4), 5), RegRead::Ready(20));
        assert_eq!(f.read(r(7), 5), RegRead::Ready(0));
    }
}
