fn main() {
    use clp_compiler::{compile, CompileOptions, FunctionBuilder, ProgramBuilder};
    use clp_isa::Opcode;
    let mut f = FunctionBuilder::new("branchy", 2);
    let base = f.param(0);
    let n = f.param(1);
    let i = f.c(0);
    let odds = f.c(0);
    let (h, body, odd_bb, even_bb, next, exit) = (
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
    );
    f.jump(h);
    f.switch_to(h);
    let c = f.bin(Opcode::Tlt, i, n);
    f.branch(c, body, exit);
    f.switch_to(body);
    let eight = f.c(8);
    let off = f.bin(Opcode::Mul, i, eight);
    let addr = f.bin(Opcode::Add, base, off);
    let v = f.load(addr, 0);
    let one = f.c(1);
    let bit = f.bin(Opcode::And, v, one);
    f.branch(bit, odd_bb, even_bb);
    f.switch_to(odd_bb);
    let vp1 = f.bin(Opcode::Add, v, one);
    f.store(addr, 0, vp1);
    f.bin_into(odds, Opcode::Add, odds, one);
    f.jump(next);
    f.switch_to(even_bb);
    let two = f.c(2);
    let v2 = f.bin(Opcode::Mul, v, two);
    f.store(addr, 0, v2);
    f.jump(next);
    f.switch_to(next);
    f.bin_into(i, Opcode::Add, i, one);
    f.jump(h);
    f.switch_to(exit);
    f.ret(Some(odds));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let p = pb.finish(id);
    let edge = compile(&p, &CompileOptions::default()).unwrap();
    for (addr, block) in edge.iter() {
        println!("=== block {addr:#x} ===");
        println!("{}", clp_isa::asm::format_block(block));
    }
}
