//! End-to-end correctness: IR programs compiled to EDGE and run on the
//! TFlex machine must reproduce the IR interpreter's results at every
//! composition size and in TRIPS mode.

use clp_compiler::{compile, interpret, CompileOptions, FunctionBuilder, ProgramBuilder};
use clp_isa::{Opcode, Reg};
use clp_mem::MemoryImage;
use clp_sim::{Machine, ProcId, SimConfig};

/// Compiles, runs on `n_cores`, and returns (r1, cycles, machine).
fn run_on(
    program: &clp_compiler::Program,
    args: &[u64],
    cfg: SimConfig,
    n_cores: usize,
    init_mem: &[(u64, Vec<u64>)],
) -> (u64, u64, Machine, ProcId) {
    let edge = compile(program, &CompileOptions::default()).expect("compiles");
    let mut m = Machine::new(cfg);
    for (addr, words) in init_mem {
        m.memory_mut().image.load_words(*addr, words);
    }
    let pid = m.compose(n_cores, 0, edge, args).expect("composes");
    let stats = m.run().expect("runs to halt");
    let r1 = m.register(pid, Reg::new(1));
    (r1, stats.cycles, m, pid)
}

fn golden(
    program: &clp_compiler::Program,
    args: &[u64],
    init_mem: &[(u64, Vec<u64>)],
) -> (Option<u64>, MemoryImage) {
    let mut image = MemoryImage::new();
    for (addr, words) in init_mem {
        image.load_words(*addr, words);
    }
    let r = interpret(program, args, &mut image, 50_000_000).expect("interprets");
    (r.ret, image)
}

fn straightline_program() -> clp_compiler::Program {
    let mut f = FunctionBuilder::new("axpb", 3);
    let (a, x, b) = (f.param(0), f.param(1), f.param(2));
    let ax = f.bin(Opcode::Mul, a, x);
    let y = f.bin(Opcode::Add, ax, b);
    f.ret(Some(y));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    pb.finish(id)
}

fn loop_sum_program() -> clp_compiler::Program {
    let mut f = FunctionBuilder::new("sum", 2);
    let base = f.param(0);
    let n = f.param(1);
    let i = f.c(0);
    let acc = f.c(0);
    let (h, body, exit) = (f.new_block(), f.new_block(), f.new_block());
    f.jump(h);
    f.switch_to(h);
    let c = f.bin(Opcode::Tlt, i, n);
    f.branch(c, body, exit);
    f.switch_to(body);
    let eight = f.c(8);
    let off = f.bin(Opcode::Mul, i, eight);
    let addr = f.bin(Opcode::Add, base, off);
    let v = f.load(addr, 0);
    f.bin_into(acc, Opcode::Add, acc, v);
    let one = f.c(1);
    f.bin_into(i, Opcode::Add, i, one);
    f.jump(h);
    f.switch_to(exit);
    f.ret(Some(acc));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    pb.finish(id)
}

fn branchy_store_program() -> clp_compiler::Program {
    // Walk an array; store 2*v for even values, v+1 for odd, and count odds.
    let mut f = FunctionBuilder::new("branchy", 2);
    let base = f.param(0);
    let n = f.param(1);
    let i = f.c(0);
    let odds = f.c(0);
    let (h, body, odd_bb, even_bb, next, exit) = (
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
    );
    f.jump(h);
    f.switch_to(h);
    let c = f.bin(Opcode::Tlt, i, n);
    f.branch(c, body, exit);
    f.switch_to(body);
    let eight = f.c(8);
    let off = f.bin(Opcode::Mul, i, eight);
    let addr = f.bin(Opcode::Add, base, off);
    let v = f.load(addr, 0);
    let one = f.c(1);
    let bit = f.bin(Opcode::And, v, one);
    f.branch(bit, odd_bb, even_bb);
    f.switch_to(odd_bb);
    let vp1 = f.bin(Opcode::Add, v, one);
    f.store(addr, 0, vp1);
    f.bin_into(odds, Opcode::Add, odds, one);
    f.jump(next);
    f.switch_to(even_bb);
    let two = f.c(2);
    let v2 = f.bin(Opcode::Mul, v, two);
    f.store(addr, 0, v2);
    f.jump(next);
    f.switch_to(next);
    f.bin_into(i, Opcode::Add, i, one);
    f.jump(h);
    f.switch_to(exit);
    f.ret(Some(odds));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    pb.finish(id)
}

fn call_program() -> clp_compiler::Program {
    // entry(n) = fib(n) by naive double recursion: exercises calls,
    // returns, the RAS, and stack save/restore.
    let mut pb = ProgramBuilder::new();
    let fib = pb.declare();
    let mut f = FunctionBuilder::new("fib", 1);
    let n = f.param(0);
    let two = f.c(2);
    let small = f.bin(Opcode::Tlt, n, two);
    let (base_bb, rec_bb, cont1, cont2) =
        (f.new_block(), f.new_block(), f.new_block(), f.new_block());
    f.branch(small, base_bb, rec_bb);
    f.switch_to(base_bb);
    f.ret(Some(n));
    f.switch_to(rec_bb);
    let one = f.c(1);
    let nm1 = f.bin(Opcode::Sub, n, one);
    let a = f.vreg();
    f.call(fib, &[nm1], Some(a), cont1);
    f.switch_to(cont1);
    let two2 = f.c(2);
    let nm2 = f.bin(Opcode::Sub, n, two2);
    let b = f.vreg();
    f.call(fib, &[nm2], Some(b), cont2);
    f.switch_to(cont2);
    let s = f.bin(Opcode::Add, a, b);
    f.ret(Some(s));
    pb.set_function(fib, f.finish());
    pb.finish(fib)
}

#[test]
fn straightline_matches_interpreter_on_all_compositions() {
    let p = straightline_program();
    let args = [3u64, 7, 11];
    let (ret, _) = golden(&p, &args, &[]);
    for n in [1usize, 2, 4, 8, 16, 32] {
        let (r1, cycles, _, _) = run_on(&p, &args, SimConfig::tflex(), n, &[]);
        assert_eq!(Some(r1), ret, "wrong result on {n} cores");
        assert!(
            cycles > 0 && cycles < 10_000,
            "cycles {cycles} on {n} cores"
        );
    }
}

#[test]
fn loop_matches_interpreter_on_all_compositions() {
    let p = loop_sum_program();
    let data: Vec<u64> = (1..=40).collect();
    let mem = vec![(0x1000u64, data.clone())];
    let args = [0x1000u64, data.len() as u64];
    let (ret, _) = golden(&p, &args, &mem);
    assert_eq!(ret, Some((1..=40).sum::<u64>()));
    for n in [1usize, 2, 4, 8, 16, 32] {
        let (r1, _, _, _) = run_on(&p, &args, SimConfig::tflex(), n, &mem);
        assert_eq!(Some(r1), ret, "wrong sum on {n} cores");
    }
}

#[test]
fn branchy_stores_match_interpreter_and_memory() {
    let p = branchy_store_program();
    let data: Vec<u64> = (0..32).map(|i| (i * 7 + 3) % 23).collect();
    let mem = vec![(0x2000u64, data.clone())];
    let args = [0x2000u64, data.len() as u64];
    let (ret, gimage) = golden(&p, &args, &mem);
    for n in [1usize, 2, 4, 8, 32] {
        let (r1, _, m, _) = run_on(&p, &args, SimConfig::tflex(), n, &mem);
        assert_eq!(Some(r1), ret, "odd count differs on {n} cores");
        let got = m.memory().image.read_words(0x2000, data.len());
        let want = gimage.read_words(0x2000, data.len());
        assert_eq!(got, want, "memory differs on {n} cores");
    }
}

#[test]
fn recursion_matches_interpreter() {
    let p = call_program();
    let (ret, _) = golden(&p, &[10], &[]);
    assert_eq!(ret, Some(55));
    for n in [1usize, 4, 16] {
        let (r1, _, _, _) = run_on(&p, &[10], SimConfig::tflex(), n, &[]);
        assert_eq!(r1, 55, "fib(10) wrong on {n} cores");
    }
}

#[test]
fn trips_mode_is_functionally_identical() {
    let p = branchy_store_program();
    let data: Vec<u64> = (0..24).map(|i| i * 3 + 1).collect();
    let mem = vec![(0x3000u64, data.clone())];
    let args = [0x3000u64, data.len() as u64];
    let (ret, _) = golden(&p, &args, &mem);
    let (r1, cycles, _, _) = run_on(&p, &args, SimConfig::trips(), 16, &mem);
    assert_eq!(Some(r1), ret);
    assert!(cycles > 0);
}

#[test]
fn runs_are_deterministic() {
    let p = branchy_store_program();
    let data: Vec<u64> = (0..16).collect();
    let mem = vec![(0x4000u64, data.clone())];
    let args = [0x4000u64, data.len() as u64];
    let (_, c1, _, _) = run_on(&p, &args, SimConfig::tflex(), 8, &mem);
    let (_, c2, _, _) = run_on(&p, &args, SimConfig::tflex(), 8, &mem);
    assert_eq!(c1, c2, "same config must give identical cycle counts");
}

#[test]
fn composition_speeds_up_a_parallel_loop() {
    // A loop with plenty of ILP should run faster on more cores.
    let p = loop_sum_program();
    let data: Vec<u64> = (0..200).collect();
    let mem = vec![(0x8000u64, data.clone())];
    let args = [0x8000u64, data.len() as u64];
    let (_, c1, _, _) = run_on(&p, &args, SimConfig::tflex(), 1, &mem);
    let (_, c16, _, _) = run_on(&p, &args, SimConfig::tflex(), 16, &mem);
    assert!(
        c16 < c1,
        "16 cores ({c16} cycles) should beat 1 core ({c1} cycles)"
    );
}

#[test]
fn stats_are_populated() {
    let p = loop_sum_program();
    let data: Vec<u64> = (0..50).collect();
    let args = [0x5000u64, data.len() as u64];
    let edge = compile(&p, &CompileOptions::default()).expect("compiles");
    let mut m = Machine::new(SimConfig::tflex());
    m.memory_mut().image.load_words(0x5000, &data);
    let _ = m.compose(8, 0, edge, &args).unwrap();
    let stats = m.run().unwrap();
    let ps = &stats.procs[0];
    assert!(ps.blocks_committed > 40, "blocks {}", ps.blocks_committed);
    assert!(ps.loads >= 50, "loads {}", ps.loads);
    assert!(ps.reg_reads > 0 && ps.reg_writes > 0);
    assert!(ps.predictor.predictions > 0);
    assert!(stats.mem.l1d_hits > 0);
    assert!(
        stats.operand_net.delivered > 0,
        "mesh should carry operands"
    );
    assert!(ps.fetch_samples > 0 && ps.commit_samples > 0);
    assert!(ps.fetch_latency().dispatch >= 0.0);
}
