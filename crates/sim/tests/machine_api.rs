//! API-level tests of the [`Machine`]: composition validation, register
//! initialization, address-space bases, and error reporting.

use clp_compiler::{compile, CompileOptions, FunctionBuilder, ProgramBuilder};
use clp_isa::{Opcode, Reg};
use clp_sim::{ComposeError, Machine, RunError, SimConfig};

fn tiny_program() -> clp_isa::EdgeProgram {
    let mut f = FunctionBuilder::new("t", 2);
    let a = f.param(0);
    let b = f.param(1);
    let s = f.bin(Opcode::Add, a, b);
    f.ret(Some(s));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    compile(&pb.finish(id), &CompileOptions::default()).expect("compiles")
}

#[test]
fn compose_rejects_overlap_and_bad_sizes() {
    let mut m = Machine::new(SimConfig::tflex());
    let p = tiny_program();
    assert!(m.compose(3, 0, p.clone(), &[]).is_err(), "non power of two");
    assert!(m.compose(64, 0, p.clone(), &[]).is_err(), "too big");
    m.compose(16, 0, p.clone(), &[]).expect("first half");
    let err = m.compose(32, 0, p.clone(), &[]).unwrap_err();
    assert!(matches!(err, ComposeError::CoreBusy(_)), "{err}");
    // The second 16-core region is still free.
    m.compose(16, 1, p, &[]).expect("second half");
}

#[test]
fn arguments_arrive_in_r1_and_up() {
    let mut m = Machine::new(SimConfig::tflex());
    let pid = m.compose(2, 0, tiny_program(), &[40, 2]).unwrap();
    m.run().expect("runs");
    assert_eq!(m.register(pid, Reg::new(1)), 42);
    assert!(m.is_halted(pid));
}

#[test]
fn address_spaces_are_disjoint_per_processor() {
    let mut m = Machine::new(SimConfig::tflex());
    let a = m.compose(4, 0, tiny_program(), &[1, 1]).unwrap();
    let b = m.compose(4, 1, tiny_program(), &[2, 2]).unwrap();
    assert_ne!(m.addr_base(a), m.addr_base(b));
    m.run().expect("both run");
    assert_eq!(m.register(a, Reg::new(1)), 2);
    assert_eq!(m.register(b, Reg::new(1)), 4);
}

#[test]
fn cycle_limit_is_reported() {
    // An infinite loop must hit the budget, not hang.
    let mut f = FunctionBuilder::new("spin", 0);
    let h = f.new_block();
    f.jump(h);
    f.switch_to(h);
    let x = f.c(1);
    let y = f.c(0);
    let c = f.bin(Opcode::Tgt, x, y);
    let exit = f.new_block();
    f.branch(c, h, exit);
    f.switch_to(exit);
    f.ret(None);
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let edge = compile(&pb.finish(id), &CompileOptions::default()).unwrap();

    let mut cfg = SimConfig::tflex();
    cfg.max_cycles = 5_000;
    let mut m = Machine::new(cfg);
    m.compose(2, 0, edge, &[]).unwrap();
    assert_eq!(m.run(), Err(RunError::CycleLimit(5_000)));
}

#[test]
fn deadline_kill_is_typed_and_distinct_from_cycle_limit() {
    // Same infinite loop as above, but killed by the policy deadline
    // long before the max_cycles safety net.
    let mut f = FunctionBuilder::new("spin", 0);
    let h = f.new_block();
    f.jump(h);
    f.switch_to(h);
    let x = f.c(1);
    let y = f.c(0);
    let c = f.bin(Opcode::Tgt, x, y);
    let exit = f.new_block();
    f.branch(c, h, exit);
    f.switch_to(exit);
    f.ret(None);
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let edge = compile(&pb.finish(id), &CompileOptions::default()).unwrap();

    let mut cfg = SimConfig::tflex();
    cfg.max_cycles = 5_000;
    cfg.deadline = Some(700);
    let mut m = Machine::new(cfg);
    m.compose(2, 0, edge, &[]).unwrap();
    assert_eq!(m.run(), Err(RunError::DeadlineExceeded { budget: 700 }));
}

#[test]
fn generous_deadline_does_not_perturb_the_run() {
    // A deadline the job never reaches must be invisible: identical
    // result and identical cycle count (the skip-ahead clamp must not
    // change behavior, only bound it).
    let run = |deadline: Option<u64>| {
        let mut cfg = SimConfig::tflex();
        cfg.deadline = deadline;
        let mut m = Machine::new(cfg);
        let pid = m.compose(2, 0, tiny_program(), &[40, 2]).unwrap();
        let stats = m.run().expect("runs");
        (m.register(pid, Reg::new(1)), stats.procs[0].cycles)
    };
    let (ret_a, cyc_a) = run(None);
    let (ret_b, cyc_b) = run(Some(1_000_000));
    assert_eq!(ret_a, 42);
    assert_eq!((ret_a, cyc_a), (ret_b, cyc_b));
}

#[test]
fn snapshot_is_informative() {
    let mut m = Machine::new(SimConfig::tflex());
    let _ = m.compose(2, 0, tiny_program(), &[1, 2]).unwrap();
    for _ in 0..3 {
        m.step();
    }
    let snap = m.debug_snapshot();
    assert!(snap.contains("proc0"), "{snap}");
    assert!(snap.contains("cycle"), "{snap}");
}

#[test]
fn error_types_render() {
    assert_eq!(
        RunError::CycleLimit(7).to_string(),
        "exceeded cycle budget of 7"
    );
    assert!(RunError::Deadlock { cycle: 3 }.to_string().contains("3"));
    assert!(ComposeError::CoreBusy(5).to_string().contains("5"));
}

#[test]
fn stats_collected_even_for_multi_proc_runs() {
    let mut m = Machine::new(SimConfig::tflex());
    let _ = m.compose(8, 0, tiny_program(), &[3, 4]).unwrap();
    let _ = m.compose(8, 1, tiny_program(), &[5, 6]).unwrap();
    let stats = m.run().expect("runs");
    assert_eq!(stats.procs.len(), 2);
    for p in &stats.procs {
        assert!(p.blocks_committed >= 2, "start + body blocks commit");
        assert!(p.cycles > 0);
    }
}

#[test]
fn decompose_and_recompose_hand_data_over_coherently() {
    // Phase 1: one core computes and commits results.
    let producer = {
        let mut f = FunctionBuilder::new("produce", 1);
        let base = f.param(0);
        let n = f.c(16);
        let i = f.c(0);
        let (h, b, x) = (f.new_block(), f.new_block(), f.new_block());
        f.jump(h);
        f.switch_to(h);
        let c = f.bin(Opcode::Tlt, i, n);
        f.branch(c, b, x);
        f.switch_to(b);
        let three = f.c(3);
        let off = f.bin(Opcode::Shl, i, three);
        let addr = f.bin(Opcode::Add, base, off);
        let sq = f.bin(Opcode::Mul, i, i);
        f.store(addr, 0, sq);
        let one = f.c(1);
        f.bin_into(i, Opcode::Add, i, one);
        f.jump(h);
        f.switch_to(x);
        f.ret(Some(i));
        let mut pb = ProgramBuilder::new();
        let id = pb.add_function(f.finish());
        compile(&pb.finish(id), &CompileOptions::default()).unwrap()
    };
    // Phase 2: an 8-core composition over the SAME cores sums the data.
    let consumer = {
        let mut f = FunctionBuilder::new("consume", 1);
        let base = f.param(0);
        let n = f.c(16);
        let acc = f.c(0);
        let i = f.c(0);
        let (h, b, x) = (f.new_block(), f.new_block(), f.new_block());
        f.jump(h);
        f.switch_to(h);
        let c = f.bin(Opcode::Tlt, i, n);
        f.branch(c, b, x);
        f.switch_to(b);
        let three = f.c(3);
        let off = f.bin(Opcode::Shl, i, three);
        let addr = f.bin(Opcode::Add, base, off);
        let v = f.load(addr, 0);
        f.bin_into(acc, Opcode::Add, acc, v);
        let one = f.c(1);
        f.bin_into(i, Opcode::Add, i, one);
        f.jump(h);
        f.switch_to(x);
        f.ret(Some(acc));
        let mut pb = ProgramBuilder::new();
        let id = pb.add_function(f.finish());
        compile(&pb.finish(id), &CompileOptions::default()).unwrap()
    };

    let mut m = Machine::new(SimConfig::tflex());
    let p1 = m.compose(1, 0, producer, &[0x7000]).unwrap();
    m.run().expect("producer runs");
    let base = m.addr_base(p1);
    m.decompose(p1);

    // Recompose the (overlapping) region at 8 cores in the same address
    // space; the new interleaving reads the old core's committed data
    // through the directory.
    let p2 = m
        .compose_at(8, 0, consumer, &[0x7000], base)
        .expect("recomposes over freed cores");
    m.run().expect("consumer runs");
    let want: u64 = (0..16u64).map(|i| i * i).sum();
    assert_eq!(m.register(p2, Reg::new(1)), want);
    let stats = m.memory().stats();
    assert!(
        stats.dirty_forwards + stats.invalidations > 0,
        "recomposition must exercise the coherence protocol"
    );
}
