//! A tight-budget probe used while bringing the machine up: runs the
//! simplest possible program on one core and prints diagnostic counters.

use clp_compiler::{compile, CompileOptions, FunctionBuilder, ProgramBuilder};
use clp_isa::{Opcode, Reg};
use clp_sim::{Machine, SimConfig};

#[test]
fn minimal_block_halts_quickly() {
    let mut f = FunctionBuilder::new("tiny", 1);
    let x = f.param(0);
    let y = f.bin(Opcode::Add, x, x);
    f.ret(Some(y));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let p = pb.finish(id);
    let edge = compile(&p, &CompileOptions::default()).unwrap();

    let mut cfg = SimConfig::tflex();
    cfg.max_cycles = 20_000;
    let mut m = Machine::new(cfg);
    let pid = m.compose(1, 0, edge, &[21]).unwrap();
    match m.run() {
        Ok(stats) => {
            assert_eq!(m.register(pid, Reg::new(1)), 42);
            assert!(stats.cycles < 5_000, "took {} cycles", stats.cycles);
        }
        Err(e) => panic!("run failed at cycle {}: {e}", m.cycle()),
    }
}

#[test]
fn minimal_block_halts_on_four_cores() {
    let mut f = FunctionBuilder::new("tiny", 1);
    let x = f.param(0);
    let y = f.bin(Opcode::Add, x, x);
    f.ret(Some(y));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let p = pb.finish(id);
    let edge = compile(&p, &CompileOptions::default()).unwrap();

    let mut cfg = SimConfig::tflex();
    cfg.max_cycles = 20_000;
    let mut m = Machine::new(cfg);
    let pid = m.compose(4, 0, edge, &[21]).unwrap();
    match m.run() {
        Ok(stats) => {
            assert_eq!(m.register(pid, Reg::new(1)), 42);
            assert!(stats.cycles < 5_000, "took {} cycles", stats.cycles);
        }
        Err(e) => panic!("run failed at cycle {}: {e}", m.cycle()),
    }
}

#[test]
fn loop_probe_two_cores() {
    let mut f = FunctionBuilder::new("sum", 2);
    let base = f.param(0);
    let n = f.param(1);
    let i = f.c(0);
    let acc = f.c(0);
    let (h, body, exit) = (f.new_block(), f.new_block(), f.new_block());
    f.jump(h);
    f.switch_to(h);
    let c = f.bin(Opcode::Tlt, i, n);
    f.branch(c, body, exit);
    f.switch_to(body);
    let eight = f.c(8);
    let off = f.bin(Opcode::Mul, i, eight);
    let addr = f.bin(Opcode::Add, base, off);
    let v = f.load(addr, 0);
    f.bin_into(acc, Opcode::Add, acc, v);
    let one = f.c(1);
    f.bin_into(i, Opcode::Add, i, one);
    f.jump(h);
    f.switch_to(exit);
    f.ret(Some(acc));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let p = pb.finish(id);
    let edge = compile(&p, &CompileOptions::default()).unwrap();

    let mut cfg = SimConfig::tflex();
    cfg.max_cycles = 100_000;
    let mut m = Machine::new(cfg);
    m.memory_mut().image.load_words(0x1000, &[1, 2, 3, 4]);
    let pid = m.compose(2, 0, edge, &[0x1000, 4]).unwrap();
    match m.run() {
        Ok(stats) => {
            assert_eq!(m.register(pid, Reg::new(1)), 10);
            assert!(stats.cycles < 50_000, "took {}", stats.cycles);
        }
        Err(e) => panic!("hang: {e} at cycle {}", m.cycle()),
    }
}

#[test]
fn loop_probe_one_core_forty() {
    let mut f = FunctionBuilder::new("sum", 2);
    let base = f.param(0);
    let n = f.param(1);
    let i = f.c(0);
    let acc = f.c(0);
    let (h, body, exit) = (f.new_block(), f.new_block(), f.new_block());
    f.jump(h);
    f.switch_to(h);
    let c = f.bin(Opcode::Tlt, i, n);
    f.branch(c, body, exit);
    f.switch_to(body);
    let eight = f.c(8);
    let off = f.bin(Opcode::Mul, i, eight);
    let addr = f.bin(Opcode::Add, base, off);
    let v = f.load(addr, 0);
    f.bin_into(acc, Opcode::Add, acc, v);
    let one = f.c(1);
    f.bin_into(i, Opcode::Add, i, one);
    f.jump(h);
    f.switch_to(exit);
    f.ret(Some(acc));
    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let p = pb.finish(id);
    let edge = compile(&p, &CompileOptions::default()).unwrap();

    let data: Vec<u64> = (1..=40).collect();
    for n_cores in [1usize, 2, 4, 8, 16, 32] {
        let mut cfg = SimConfig::tflex();
        cfg.max_cycles = 2_000_000;
        let mut m = Machine::new(cfg);
        m.memory_mut().image.load_words(0x1000, &data);
        let pid = m.compose(n_cores, 0, edge.clone(), &[0x1000, 40]).unwrap();
        let mut stalled = 0u64;
        loop {
            let before = m.cycle();
            m.step();
            if m.is_halted(pid) {
                break;
            }
            stalled += 1;
            if stalled > 400_000 {
                panic!("stall on {n_cores} cores:\n{}", m.debug_snapshot());
            }
            let _ = before;
        }
        assert_eq!(m.register(pid, Reg::new(1)), 820, "on {n_cores} cores");
    }
}

/// Diagnose divergence: run branchy on every composition with tight
/// budget and report the first difference.
#[test]
fn branchy_divergence_probe() {
    use clp_compiler::interpret;
    use clp_mem::MemoryImage;
    let p = {
        // same as end_to_end::branchy_store_program
        let mut f = FunctionBuilder::new("branchy", 2);
        let base = f.param(0);
        let n = f.param(1);
        let i = f.c(0);
        let odds = f.c(0);
        let (h, body, odd_bb, even_bb, next, exit) = (
            f.new_block(),
            f.new_block(),
            f.new_block(),
            f.new_block(),
            f.new_block(),
            f.new_block(),
        );
        f.jump(h);
        f.switch_to(h);
        let c = f.bin(Opcode::Tlt, i, n);
        f.branch(c, body, exit);
        f.switch_to(body);
        let eight = f.c(8);
        let off = f.bin(Opcode::Mul, i, eight);
        let addr = f.bin(Opcode::Add, base, off);
        let v = f.load(addr, 0);
        let one = f.c(1);
        let bit = f.bin(Opcode::And, v, one);
        f.branch(bit, odd_bb, even_bb);
        f.switch_to(odd_bb);
        let vp1 = f.bin(Opcode::Add, v, one);
        f.store(addr, 0, vp1);
        f.bin_into(odds, Opcode::Add, odds, one);
        f.jump(next);
        f.switch_to(even_bb);
        let two = f.c(2);
        let v2 = f.bin(Opcode::Mul, v, two);
        f.store(addr, 0, v2);
        f.jump(next);
        f.switch_to(next);
        f.bin_into(i, Opcode::Add, i, one);
        f.jump(h);
        f.switch_to(exit);
        f.ret(Some(odds));
        let mut pb = ProgramBuilder::new();
        let id = pb.add_function(f.finish());
        pb.finish(id)
    };
    let data: Vec<u64> = (0..32).map(|i| (i * 7 + 3) % 23).collect();
    let mut gimage = MemoryImage::new();
    gimage.load_words(0x2000, &data);
    let g = interpret(&p, &[0x2000, data.len() as u64], &mut gimage, 10_000_000).unwrap();

    let edge = compile(&p, &CompileOptions::default()).unwrap();
    for n_cores in [1usize, 2, 4, 8, 32] {
        let mut cfg = SimConfig::tflex();
        cfg.max_cycles = 5_000;
        let mut m = Machine::new(cfg);
        m.memory_mut().image.load_words(0x2000, &data);
        let pid = m
            .compose(n_cores, 0, edge.clone(), &[0x2000, data.len() as u64])
            .unwrap();
        match m.run() {
            Ok(_) => {
                let r1 = m.register(pid, Reg::new(1));
                assert_eq!(Some(r1), g.ret, "odds differ on {n_cores} cores");
                let got = m.memory().image.read_words(0x2000, data.len());
                let want = gimage.read_words(0x2000, data.len());
                assert_eq!(got, want, "memory differs on {n_cores} cores");
            }
            Err(e) => panic!("{n_cores} cores: {e}\n{}", m.debug_snapshot()),
        }
    }
}
