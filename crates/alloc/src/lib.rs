//! # clp-alloc — core allocation for multiprogrammed workloads
//!
//! Implements the Figure 10 methodology: given per-benchmark
//! speedup-versus-cores curves (measured by the Figure 6 sweep), find the
//! assignment of a 32-core TFlex chip to a multiprogrammed workload that
//! maximizes *weighted speedup* — by optimal dynamic programming for the
//! fully composable CLP, by exhaustive choice of a single granularity for
//! the symmetric "variable best" CMP (VB CMP), and by fixed granularity
//! for conventional CMP-N configurations.
//!
//! Weighted speedup follows Snavely & Tullsen: each application's
//! performance is normalized to its performance running *alone at its
//! best configuration*, and the workload's WS is the sum over
//! applications.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Legal composition sizes on the 32-core chip.
pub const SIZES: [usize; 6] = [1, 2, 4, 8, 16, 32];
/// Total cores on the chip.
pub const TOTAL_CORES: usize = 32;

/// A benchmark's measured speedup as a function of composition size,
/// normalized to its own single-core performance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpeedupCurve {
    /// Benchmark name.
    pub name: String,
    /// `speedup[cores]` for each power-of-two size.
    pub speedup: BTreeMap<usize, f64>,
}

impl SpeedupCurve {
    /// Builds a curve from `(cores, speedup)` samples.
    ///
    /// # Panics
    ///
    /// Panics if a sample uses an illegal size or no samples are given.
    #[must_use]
    pub fn new(name: &str, samples: &[(usize, f64)]) -> Self {
        assert!(!samples.is_empty(), "empty curve");
        let speedup: BTreeMap<usize, f64> = samples.iter().copied().collect();
        for &c in speedup.keys() {
            assert!(SIZES.contains(&c), "illegal composition size {c}");
        }
        SpeedupCurve {
            name: name.to_owned(),
            speedup,
        }
    }

    /// Builds an *analytic* curve from static cycle bounds: the sample
    /// at `n` cores is `bound(1) / bound(n)`. Because clp-bound's
    /// per-size bounds are each sound lower bounds on real cycles, the
    /// resulting curve sketches the best speedup shape the dataflow and
    /// resource structure admits — an upper envelope to compare the
    /// measured Figure 6 sweep against, computed without simulation.
    ///
    /// # Panics
    ///
    /// Panics if a sample uses an illegal size, no samples are given,
    /// or no sample at 1 core (the normalization base) is present.
    #[must_use]
    pub fn analytic(name: &str, bounds: &[(usize, u64)]) -> Self {
        let base = bounds
            .iter()
            .find(|&&(c, _)| c == 1)
            .map(|&(_, b)| b)
            .expect("analytic curve needs a 1-core bound");
        let samples: Vec<(usize, f64)> = bounds
            .iter()
            .map(|&(c, b)| (c, base as f64 / b.max(1) as f64))
            .collect();
        SpeedupCurve::new(name, &samples)
    }

    /// Speedup at `cores` (must be a sampled size).
    ///
    /// # Panics
    ///
    /// Panics if `cores` was not sampled.
    #[must_use]
    pub fn at(&self, cores: usize) -> f64 {
        *self
            .speedup
            .get(&cores)
            .unwrap_or_else(|| panic!("'{}' has no sample at {cores} cores", self.name))
    }

    /// The composition size with the highest speedup (the per-application
    /// BEST configuration of Figure 6).
    #[must_use]
    pub fn best_size(&self) -> usize {
        *self
            .speedup
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("nonempty")
            .0
    }

    /// The speedup at the best size.
    #[must_use]
    pub fn best_speedup(&self) -> f64 {
        self.at(self.best_size())
    }

    /// Normalized performance at `cores`: `speedup(cores) /
    /// best_speedup` (the app's share of its alone-at-best performance).
    #[must_use]
    pub fn normalized(&self, cores: usize) -> f64 {
        self.at(cores) / self.best_speedup()
    }
}

/// One workload's evaluation under some machine organization.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Allocation {
    /// Cores given to each application (0 = not run).
    pub cores: Vec<usize>,
    /// Achieved weighted speedup.
    pub weighted_speedup: f64,
}

/// Optimal CLP allocation: maximizes weighted speedup over all ways to
/// give each application a power-of-two composition with at most 32
/// cores in total (dynamic programming, as in the paper's §7).
///
/// # Examples
///
/// ```
/// use clp_alloc::{optimal_clp, SpeedupCurve, SIZES};
///
/// let scalable = SpeedupCurve::new("fp", &SIZES.map(|c| (c, c as f64)));
/// let serial = SpeedupCurve::new("int", &SIZES.map(|c| (c, 1.0)));
/// let a = optimal_clp(&[scalable, serial]);
/// assert!(a.cores[0] > a.cores[1], "the scalable app gets more cores");
/// ```
///
/// Every application must receive at least one core; if the workload has
/// more than 32 applications the surplus is dropped (matching the
/// paper's constant-WS convention for over-committed machines).
#[must_use]
pub fn optimal_clp(curves: &[SpeedupCurve]) -> Allocation {
    let n = curves.len().min(TOTAL_CORES);
    // dp[i][c] = best WS for the first i apps using exactly <= c cores.
    let mut dp = vec![vec![f64::NEG_INFINITY; TOTAL_CORES + 1]; n + 1];
    let mut choice = vec![vec![0usize; TOTAL_CORES + 1]; n + 1];
    dp[0].fill(0.0);
    #[allow(clippy::needless_range_loop)] // dp[i][c] and dp[i-1][c-s] indexings
    for i in 1..=n {
        for c in 0..=TOTAL_CORES {
            for &s in &SIZES {
                if s > c {
                    break;
                }
                let v = dp[i - 1][c - s] + curves[i - 1].normalized(s);
                if v > dp[i][c] {
                    dp[i][c] = v;
                    choice[i][c] = s;
                }
            }
        }
    }
    let mut cores = vec![0usize; curves.len()];
    let mut c = TOTAL_CORES;
    for i in (1..=n).rev() {
        let s = choice[i][c];
        cores[i - 1] = s;
        c -= s;
    }
    Allocation {
        weighted_speedup: dp[n][TOTAL_CORES].max(0.0),
        cores,
    }
}

/// A fixed CMP with `32 / granularity` processors of `granularity` cores
/// each (the paper's CMP-N). Applications beyond the processor count are
/// not run (their WS contribution stays at the value achieved by the
/// first `procs`, per the paper's constant-WS assumption).
///
/// # Panics
///
/// Panics if `granularity` is not a legal size.
#[must_use]
pub fn fixed_cmp(curves: &[SpeedupCurve], granularity: usize) -> Allocation {
    assert!(SIZES.contains(&granularity));
    let procs = TOTAL_CORES / granularity;
    let mut cores = vec![0usize; curves.len()];
    let mut ws = 0.0;
    for (i, curve) in curves.iter().enumerate().take(procs) {
        cores[i] = granularity;
        ws += curve.normalized(granularity);
    }
    Allocation {
        cores,
        weighted_speedup: ws,
    }
}

/// The hypothetical symmetric flexible CMP ("VB CMP"): picks the single
/// best granularity for the workload, but every processor must have the
/// same size and every application must fit.
#[must_use]
pub fn variable_best_cmp(curves: &[SpeedupCurve]) -> Allocation {
    SIZES
        .iter()
        .filter(|&&g| TOTAL_CORES / g >= curves.len().min(TOTAL_CORES))
        .map(|&g| fixed_cmp(curves, g))
        .max_by(|a, b| a.weighted_speedup.total_cmp(&b.weighted_speedup))
        .unwrap_or_else(|| fixed_cmp(curves, 1))
}

/// Fraction of applications assigned each granularity (the table under
/// Figure 10).
#[must_use]
pub fn granularity_fractions(allocs: &[Allocation]) -> BTreeMap<usize, f64> {
    let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
    let mut total = 0usize;
    for a in allocs {
        for &c in &a.cores {
            if c > 0 {
                *counts.entry(c).or_default() += 1;
                total += 1;
            }
        }
    }
    counts
        .into_iter()
        .map(|(g, n)| (g, n as f64 / total.max(1) as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(name: &str, per_core_gain: f64, saturation: usize) -> SpeedupCurve {
        // Speedup grows like min(cores, saturation)^gain.
        let samples: Vec<(usize, f64)> = SIZES
            .iter()
            .map(|&c| {
                let eff = (c.min(saturation)) as f64;
                (c, eff.powf(per_core_gain))
            })
            .collect();
        SpeedupCurve::new(name, &samples)
    }

    #[test]
    fn analytic_curve_normalizes_to_one_core_bound() {
        // bound(1)/bound(n): halving the cycle floor doubles the
        // sketched speedup; a floor that *grows* with cores (mesh hops
        // outpacing the resource spread) dips below 1.
        let c = SpeedupCurve::analytic("x", &[(1, 40), (2, 20), (4, 10), (8, 50)]);
        assert!((c.at(1) - 1.0).abs() < 1e-12);
        assert!((c.at(2) - 2.0).abs() < 1e-12);
        assert!((c.at(4) - 4.0).abs() < 1e-12);
        assert!((c.at(8) - 0.8).abs() < 1e-12);
        assert_eq!(c.best_size(), 4);
    }

    #[test]
    fn analytic_curve_guards_zero_bounds() {
        // A degenerate 0-cycle sample clamps to 1 rather than dividing
        // by zero.
        let c = SpeedupCurve::analytic("x", &[(1, 8), (2, 0)]);
        assert!((c.at(2) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn best_size_found() {
        let c = SpeedupCurve::new(
            "x",
            &[(1, 1.0), (2, 1.8), (4, 2.5), (8, 2.2), (16, 1.9), (32, 1.4)],
        );
        assert_eq!(c.best_size(), 4);
        assert!((c.best_speedup() - 2.5).abs() < 1e-12);
        assert!((c.normalized(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dp_matches_brute_force_small() {
        let curves = vec![
            curve("hi", 0.8, 32),
            curve("med", 0.5, 8),
            curve("low", 0.15, 2),
        ];
        let dp = optimal_clp(&curves);
        // Brute force over all size triples.
        let mut best = f64::NEG_INFINITY;
        for &a in &SIZES {
            for &b in &SIZES {
                for &c in &SIZES {
                    if a + b + c <= TOTAL_CORES {
                        let ws = curves[0].normalized(a)
                            + curves[1].normalized(b)
                            + curves[2].normalized(c);
                        best = best.max(ws);
                    }
                }
            }
        }
        assert!(
            (dp.weighted_speedup - best).abs() < 1e-9,
            "dp {} vs brute {}",
            dp.weighted_speedup,
            best
        );
        assert!(dp.cores.iter().sum::<usize>() <= 32);
    }

    #[test]
    fn dp_gives_more_cores_to_scalable_apps() {
        let curves = vec![curve("scales", 0.9, 32), curve("serial", 0.05, 2)];
        let a = optimal_clp(&curves);
        assert!(
            a.cores[0] > a.cores[1],
            "scalable app should get more: {:?}",
            a.cores
        );
    }

    #[test]
    fn clp_beats_or_ties_every_fixed_cmp() {
        let curves = vec![
            curve("a", 0.8, 32),
            curve("b", 0.4, 8),
            curve("c", 0.1, 2),
            curve("d", 0.6, 16),
        ];
        let clp = optimal_clp(&curves).weighted_speedup;
        for &g in &SIZES {
            let cmp = fixed_cmp(&curves, g).weighted_speedup;
            assert!(clp >= cmp - 1e-9, "CLP {clp} must dominate CMP-{g} {cmp}");
        }
        let vb = variable_best_cmp(&curves).weighted_speedup;
        assert!(clp >= vb - 1e-9);
    }

    #[test]
    fn fixed_cmp_caps_at_processor_count() {
        let curves: Vec<SpeedupCurve> = (0..4).map(|i| curve(&format!("w{i}"), 0.5, 8)).collect();
        // CMP-16 has two processors: only two apps run.
        let a = fixed_cmp(&curves, 16);
        assert_eq!(a.cores.iter().filter(|&&c| c > 0).count(), 2);
    }

    #[test]
    fn vb_cmp_requires_fitting_all_apps() {
        let curves: Vec<SpeedupCurve> = (0..8).map(|i| curve(&format!("w{i}"), 0.7, 32)).collect();
        let a = variable_best_cmp(&curves);
        // 8 apps: granularity at most 4.
        assert!(a.cores.iter().all(|&c| c <= 4 && c > 0));
    }

    #[test]
    fn fractions_sum_to_one() {
        let curves = vec![curve("a", 0.8, 32), curve("b", 0.1, 2)];
        let a = optimal_clp(&curves);
        let fr = granularity_fractions(&[a]);
        let total: f64 = fr.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
