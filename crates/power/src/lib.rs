//! # clp-power — area and energy models for TFlex and TRIPS
//!
//! Event-based power modeling in the style of Wattch (§6.3): the
//! simulator counts microarchitectural events (cache accesses, ALU
//! operations, register-file and LSQ activity, router hops, predictor
//! lookups), and this crate converts them into per-category power using
//! per-access energies, plus clock-tree power per active core-cycle and
//! an area-based leakage estimate of 8–10% of total power.
//!
//! Absolute constants are *invented but internally consistent* estimates
//! for a 130 nm / 1.5 V / 366 MHz process (see DESIGN.md: the paper's
//! Table 2 numbers come from the TRIPS design database, which is not
//! public). Every reproduced claim is a ratio (performance/area,
//! performance²/W), which depends only on the relative breakdown.

#![warn(missing_docs)]

mod area;
mod energy;
mod metrics;

pub use area::{chip_area_mm2, AreaModel, ComponentArea};
pub use energy::{EnergyModel, PowerBreakdown, PowerConfig};
pub use metrics::{perf, perf2_per_watt, perf_per_area};
