//! Efficiency metrics used by the evaluation figures.

/// Performance as inverse cycle count (the paper's `1/cycles`).
#[must_use]
pub fn perf(cycles: u64) -> f64 {
    if cycles == 0 {
        0.0
    } else {
        1.0 / cycles as f64
    }
}

/// Area efficiency: `1 / (cycles × mm²)` (Figure 7).
#[must_use]
pub fn perf_per_area(cycles: u64, area_mm2: f64) -> f64 {
    if cycles == 0 || area_mm2 <= 0.0 {
        0.0
    } else {
        1.0 / (cycles as f64 * area_mm2)
    }
}

/// Power efficiency: `performance² / Watt` (Figure 8), with performance
/// measured as `1/cycles`.
#[must_use]
pub fn perf2_per_watt(cycles: u64, watts: f64) -> f64 {
    if cycles == 0 || watts <= 0.0 {
        0.0
    } else {
        let p = 1.0 / cycles as f64;
        p * p / watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_guards() {
        assert_eq!(perf(0), 0.0);
        assert_eq!(perf_per_area(0, 10.0), 0.0);
        assert_eq!(perf_per_area(10, 0.0), 0.0);
        assert_eq!(perf2_per_watt(0, 1.0), 0.0);
        assert_eq!(perf2_per_watt(10, 0.0), 0.0);
    }

    #[test]
    fn faster_is_better() {
        assert!(perf(100) > perf(200));
        assert!(perf_per_area(100, 10.0) > perf_per_area(100, 20.0));
        assert!(perf2_per_watt(100, 2.0) > perf2_per_watt(100, 4.0));
        // perf² rewards speed quadratically: half the cycles at double
        // the power is still a win.
        assert!(perf2_per_watt(100, 4.0) > perf2_per_watt(200, 2.0));
    }
}
