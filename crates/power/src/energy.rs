//! Event energies and the power breakdown computation.

use crate::area::AreaModel;
use clp_sim::RunStats;
use serde::{Deserialize, Serialize};

/// Per-event energies in nanojoules (130 nm, 1.5 V).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Integer ALU operation.
    pub int_op: f64,
    /// Floating-point operation.
    pub fp_op: f64,
    /// Register-bank read or write.
    pub reg_access: f64,
    /// Issue-window wakeup/select per fired instruction.
    pub window: f64,
    /// I-cache access (per line).
    pub icache: f64,
    /// D-cache access.
    pub dcache: f64,
    /// LSQ associative search.
    pub lsq: f64,
    /// Predictor lookup + update.
    pub predictor: f64,
    /// One operand-router link traversal.
    pub router_hop: f64,
    /// L2 bank access.
    pub l2: f64,
    /// DRAM access (row activation amortized) + I/O.
    pub dram: f64,
    /// Clock tree + latches, per active core per cycle.
    pub clock_per_core_cycle: f64,
    /// Clock/latch energy per TRIPS tile-cycle. A tile is single-issue
    /// and smaller than a TFlex core, but always carries an FPU and the
    /// prototype has no clock gating (§6.3).
    pub trips_tile_clock: f64,
    /// Leakage power density in W/mm² (yields the paper's 8-10% of total).
    pub leakage_w_per_mm2: f64,
    /// Clock frequency in Hz (366 MHz, the TRIPS prototype).
    pub frequency: f64,
}

impl EnergyModel {
    /// The 130 nm estimates used throughout the evaluation.
    #[must_use]
    pub fn at_130nm() -> Self {
        EnergyModel {
            int_op: 0.10,
            fp_op: 0.45,
            reg_access: 0.06,
            window: 0.06,
            icache: 0.16,
            dcache: 0.22,
            lsq: 0.16,
            predictor: 0.10,
            router_hop: 0.05,
            l2: 0.70,
            dram: 12.0,
            clock_per_core_cycle: 0.85,
            trips_tile_clock: 0.62,
            leakage_w_per_mm2: 0.0042,
            frequency: 366.0e6,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::at_130nm()
    }
}

/// What was running, for clock/leakage accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowerConfig {
    /// Cores participating (clocked) during the run.
    pub active_cores: usize,
    /// TRIPS mode: 16 always-clocked tiles, each with an FPU.
    pub trips: bool,
}

impl PowerConfig {
    /// A TFlex composition of `n` cores.
    #[must_use]
    pub fn tflex(n: usize) -> Self {
        PowerConfig {
            active_cores: n,
            trips: false,
        }
    }

    /// The TRIPS processor.
    #[must_use]
    pub fn trips() -> Self {
        PowerConfig {
            active_cores: 16,
            trips: true,
        }
    }
}

/// Average power by category, in watts (the Table 2 breakdown).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Instruction supply: I-cache, predictor, dispatch.
    pub fetch: f64,
    /// Execution: ALUs, register files, issue window.
    pub execution: f64,
    /// L1 data cache + LSQ.
    pub l1d: f64,
    /// Operand/control routers.
    pub routers: f64,
    /// L2 cache.
    pub l2: f64,
    /// DRAM and I/O.
    pub dram_io: f64,
    /// Clock tree and latches.
    pub clock: f64,
    /// Leakage.
    pub leakage: f64,
}

impl PowerBreakdown {
    /// Total power in watts.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.fetch
            + self.execution
            + self.l1d
            + self.routers
            + self.l2
            + self.dram_io
            + self.clock
            + self.leakage
    }

    /// Leakage fraction of total power.
    #[must_use]
    pub fn leakage_fraction(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.leakage / self.total()
        }
    }

    /// Renders the Table 2 power rows.
    #[must_use]
    pub fn table_row(&self, label: &str) -> String {
        format!(
            "  {label:<14} fetch {:.2}W  exec {:.2}W  L1D {:.2}W  routers {:.2}W  L2 {:.2}W  DRAM/IO {:.2}W  clock {:.2}W  leak {:.2}W  | total {:.2}W",
            self.fetch,
            self.execution,
            self.l1d,
            self.routers,
            self.l2,
            self.dram_io,
            self.clock,
            self.leakage,
            self.total()
        )
    }
}

impl EnergyModel {
    /// Computes the average power breakdown of a completed run.
    #[must_use]
    pub fn power(&self, stats: &RunStats, cfg: &PowerConfig, area: &AreaModel) -> PowerBreakdown {
        let cycles = stats.cycles.max(1) as f64;
        let seconds = cycles / self.frequency;
        let nj = 1.0e-9 / seconds; // W per nJ of total energy

        let mut fetch_e = 0.0;
        let mut exec_e = 0.0;
        let mut pred_events = 0.0;
        let mut dispatched = 0.0;
        for p in &stats.procs {
            pred_events += p.predictor.predictions as f64;
            dispatched += p.insts_dispatched as f64;
            exec_e += p.int_ops as f64 * self.int_op
                + p.fp_ops as f64 * self.fp_op
                + (p.reg_reads + p.reg_writes) as f64 * self.reg_access
                + p.insts_fired as f64 * self.window;
        }
        fetch_e += (stats.mem.l1i_hits + stats.mem.l1i_misses) as f64 * self.icache
            + pred_events * self.predictor
            + dispatched * self.window * 0.5;

        let l1d_e = (stats.mem.l1d_hits + stats.mem.l1d_misses) as f64 * self.dcache
            + stats.mem.lsq_searches as f64 * self.lsq;
        let router_e = stats.operand_net.link_traversals as f64 * self.router_hop;
        let l2_e = (stats.mem.l2_hits + stats.mem.l2_misses) as f64 * self.l2;
        let dram_e = stats.mem.dram_accesses as f64 * self.dram;

        let per_core = if cfg.trips {
            self.trips_tile_clock
        } else {
            self.clock_per_core_cycle
        };
        let clock_e = cycles * cfg.active_cores as f64 * per_core;

        let area_mm2 = if cfg.trips {
            area.trips_mm2()
        } else {
            area.tflex_mm2(cfg.active_cores)
        };
        let leakage_w = area_mm2 * self.leakage_w_per_mm2;

        PowerBreakdown {
            fetch: fetch_e * nj,
            execution: exec_e * nj,
            l1d: l1d_e * nj,
            routers: router_e * nj,
            l2: l2_e * nj,
            dram_io: dram_e * nj,
            clock: clock_e * nj,
            leakage: leakage_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clp_sim::ProcStats;

    fn fake_stats(cycles: u64) -> RunStats {
        let mut procs = vec![ProcStats::default()];
        procs[0].int_ops = 1_000_000;
        procs[0].fp_ops = 100_000;
        procs[0].reg_reads = 400_000;
        procs[0].reg_writes = 200_000;
        procs[0].insts_fired = 1_200_000;
        procs[0].insts_dispatched = 1_300_000;
        procs[0].predictor.predictions = 10_000;
        let mut s = RunStats {
            cycles,
            procs,
            ..Default::default()
        };
        s.mem.l1d_hits = 300_000;
        s.mem.l1d_misses = 10_000;
        s.mem.l1i_hits = 90_000;
        s.mem.l1i_misses = 2_000;
        s.mem.lsq_searches = 310_000;
        s.mem.l2_hits = 11_000;
        s.mem.l2_misses = 1_000;
        s.mem.dram_accesses = 1_200;
        s.operand_net.link_traversals = 900_000;
        s
    }

    #[test]
    fn leakage_lands_in_the_8_to_10_percent_band() {
        let e = EnergyModel::at_130nm();
        let p = e.power(
            &fake_stats(1_000_000),
            &PowerConfig::tflex(8),
            &AreaModel::at_130nm(),
        );
        let frac = p.leakage_fraction();
        assert!(
            (0.05..=0.15).contains(&frac),
            "leakage fraction {frac:.3} out of plausible band"
        );
    }

    #[test]
    fn clock_scales_with_active_cores() {
        let e = EnergyModel::at_130nm();
        let a = AreaModel::at_130nm();
        let s = fake_stats(1_000_000);
        let p2 = e.power(&s, &PowerConfig::tflex(2), &a);
        let p16 = e.power(&s, &PowerConfig::tflex(16), &a);
        assert!(p16.clock > 7.0 * p2.clock / 1.01);
    }

    #[test]
    fn trips_clock_exceeds_8_core_tflex() {
        // Same dynamic events: TRIPS pays 16 tiles with FPUs vs 8 cores.
        let e = EnergyModel::at_130nm();
        let a = AreaModel::at_130nm();
        let s = fake_stats(1_000_000);
        let trips = e.power(&s, &PowerConfig::trips(), &a);
        let tflex8 = e.power(&s, &PowerConfig::tflex(8), &a);
        assert!(trips.clock > tflex8.clock * 1.2);
        assert!(trips.total() > tflex8.total());
    }

    #[test]
    fn table_row_mentions_all_categories() {
        let e = EnergyModel::at_130nm();
        let p = e.power(
            &fake_stats(1_000_000),
            &PowerConfig::tflex(4),
            &AreaModel::at_130nm(),
        );
        let row = p.table_row("tflex-4");
        for k in [
            "fetch", "exec", "L1D", "routers", "L2", "DRAM/IO", "clock", "leak", "total",
        ] {
            assert!(row.contains(k), "missing {k}: {row}");
        }
    }
}
