//! Component area model at 130 nm (Table 2).
//!
//! Estimated from the constraint the paper states: a 130 nm 18 mm x 18 mm
//! die accommodates 8 TFlex cores with 1.5 MB of L2, and an 8-core TFlex
//! processor has the same area (and issue width) as one TRIPS processor.

use serde::Serialize;

/// Area of one microarchitectural component in mm² at 130 nm.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct ComponentArea {
    /// Component name.
    pub name: &'static str,
    /// Area of the component in one TFlex core.
    pub tflex_core: f64,
    /// Area of the corresponding structures in one TRIPS processor
    /// (16 tiles plus centralized control), for the Table 2 comparison.
    pub trips_processor: f64,
}

/// The per-core / per-processor area table.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct AreaModel {
    /// Component breakdown.
    pub components: Vec<ComponentArea>,
    /// L2 area per megabyte.
    pub l2_mm2_per_mb: f64,
}

impl AreaModel {
    /// The 130 nm estimates used throughout the evaluation.
    #[must_use]
    pub fn at_130nm() -> Self {
        AreaModel {
            components: vec![
                ComponentArea {
                    name: "register file",
                    tflex_core: 0.45,
                    trips_processor: 3.6,
                },
                ComponentArea {
                    name: "instruction cache",
                    tflex_core: 0.90,
                    trips_processor: 7.0,
                },
                ComponentArea {
                    name: "data cache",
                    tflex_core: 1.10,
                    trips_processor: 7.2,
                },
                ComponentArea {
                    name: "load/store queues",
                    tflex_core: 0.95,
                    trips_processor: 6.4,
                },
                ComponentArea {
                    name: "next-block predictor",
                    tflex_core: 0.60,
                    trips_processor: 2.4,
                },
                ComponentArea {
                    name: "issue window + INT ALUs",
                    tflex_core: 3.20,
                    trips_processor: 24.0,
                },
                ComponentArea {
                    name: "FP units",
                    tflex_core: 1.40,
                    // TRIPS carries one FPU per tile: twice the FP area of
                    // an 8-core TFlex processor (§6.3).
                    trips_processor: 22.4,
                },
                ComponentArea {
                    name: "operand/control routers",
                    tflex_core: 0.70,
                    trips_processor: 5.0,
                },
                ComponentArea {
                    name: "block control + misc",
                    tflex_core: 0.80,
                    trips_processor: 3.5,
                },
            ],
            l2_mm2_per_mb: 25.0,
        }
    }

    /// Area of one TFlex core in mm².
    #[must_use]
    pub fn tflex_core_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.tflex_core).sum()
    }

    /// Area of an `n`-core TFlex logical processor (cores only; the L2 is
    /// a shared chip resource excluded from per-processor efficiency, as
    /// in Figure 7).
    #[must_use]
    pub fn tflex_mm2(&self, n_cores: usize) -> f64 {
        self.tflex_core_mm2() * n_cores as f64
    }

    /// Area of one TRIPS processor in mm².
    #[must_use]
    pub fn trips_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.trips_processor).sum()
    }

    /// Renders the Table 2 area columns.
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = String::from(
            "Table 2 (area, mm^2 @ 130nm)\n  component                    TFlex core   8-core TFlex   TRIPS proc\n",
        );
        for c in &self.components {
            out.push_str(&format!(
                "  {:<28} {:>10.2} {:>14.2} {:>12.2}\n",
                c.name,
                c.tflex_core,
                c.tflex_core * 8.0,
                c.trips_processor
            ));
        }
        out.push_str(&format!(
            "  {:<28} {:>10.2} {:>14.2} {:>12.2}\n",
            "TOTAL",
            self.tflex_core_mm2(),
            self.tflex_core_mm2() * 8.0,
            self.trips_mm2()
        ));
        out
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::at_130nm()
    }
}

/// Whole-die area: `n_cores` TFlex cores plus `l2_mb` of L2.
#[must_use]
pub fn chip_area_mm2(model: &AreaModel, n_cores: usize, l2_mb: f64) -> f64 {
    model.tflex_mm2(n_cores) + model.l2_mm2_per_mb * l2_mb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_cores_and_l2_fit_the_18mm_die() {
        let m = AreaModel::at_130nm();
        let die = chip_area_mm2(&m, 8, 1.5);
        assert!(
            die < 18.0 * 18.0,
            "8 cores + 1.5MB = {die:.1} must fit 324mm²"
        );
        assert!(die > 100.0, "the floorplan should not be absurdly small");
    }

    #[test]
    fn trips_processor_matches_8_tflex_cores_approximately() {
        // §6.1: "an eight-core TFlex processor, which has the same area
        // and issue width as the TRIPS processor".
        let m = AreaModel::at_130nm();
        let ratio = m.trips_mm2() / m.tflex_mm2(8);
        assert!(
            (0.85..=1.15).contains(&ratio),
            "TRIPS/8-core area ratio {ratio:.2}"
        );
    }

    #[test]
    fn trips_fp_area_is_double() {
        let m = AreaModel::at_130nm();
        let fp = m.components.iter().find(|c| c.name == "FP units").unwrap();
        let ratio = fp.trips_processor / (fp.tflex_core * 8.0);
        assert!((1.8..=2.2).contains(&ratio), "FP ratio {ratio:.2}");
    }

    #[test]
    fn table_renders_all_components() {
        let m = AreaModel::at_130nm();
        let t = m.table();
        for c in &m.components {
            assert!(t.contains(c.name), "missing {}", c.name);
        }
        assert!(t.contains("TOTAL"));
    }
}
