//! # clp-noc — two-dimensional mesh on-chip networks
//!
//! TFlex cores are connected by point-to-point 2-D mesh networks: an
//! *operand network* carrying dataflow operands between composed cores
//! (one cycle per hop, with the paper's doubled bandwidth as a config
//! option) and a *control network* carrying the distributed protocol
//! messages (fetch commands, commit handshakes, flushes, predictor
//! hand-offs).
//!
//! [`Mesh`] is a deterministic, cycle-stepped, dimension-order-routed
//! (X then Y) mesh, generic over the message payload. Contention is
//! modelled at link granularity: each router may forward at most
//! [`MeshConfig::link_bandwidth`] messages per output direction per cycle;
//! excess traffic queues in FIFO order.
//!
//! ```
//! use clp_noc::{Mesh, MeshConfig, NodeId};
//!
//! let mut mesh: Mesh<&'static str> = Mesh::new(MeshConfig::tflex_operand());
//! mesh.inject(NodeId(0), NodeId(5), "hello");
//! let mut delivered = Vec::new();
//! for _ in 0..10 {
//!     mesh.step();
//!     delivered.extend(mesh.drain_delivered());
//! }
//! assert_eq!(delivered, vec![(NodeId(5), "hello")]);
//! ```

#![warn(missing_docs)]

mod mesh;
mod region;
mod sharded;
mod stats;

pub use mesh::{Mesh, MeshConfig, NodeId};
pub use region::{rect_hops, rect_route, region_for, region_rect, Coord, RegionError};
pub use stats::MeshStats;
