//! Traffic statistics for a mesh network.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a [`Mesh`](crate::Mesh) over its lifetime.
///
/// `link_traversals` is the quantity the power model charges router/wire
/// energy for; `stalled_cycles` measures contention.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshStats {
    /// Messages injected.
    pub injected: u64,
    /// Messages delivered to their destination.
    pub delivered: u64,
    /// Total hop traversals across all messages.
    pub link_traversals: u64,
    /// Message-cycles spent waiting for link bandwidth.
    pub stalled_cycles: u64,
    /// Sum of per-message delivery latencies (cycles).
    pub total_latency: u64,
}

impl MeshStats {
    /// Mean delivery latency in cycles (0 if nothing was delivered).
    #[must_use]
    pub fn avg_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered as f64
        }
    }

    /// Renders these counters as a stats-registry node named `name`.
    #[must_use]
    pub fn to_node(&self, name: &str) -> clp_obs::StatsNode {
        clp_obs::StatsNode::new(name)
            .count("injected", self.injected)
            .count("delivered", self.delivered)
            .count("link_traversals", self.link_traversals)
            .count("stalled_cycles", self.stalled_cycles)
            .count("total_latency", self.total_latency)
            .gauge("avg_latency", self.avg_latency())
    }

    /// Merges counters from another stats block (e.g. across meshes).
    pub fn merge(&mut self, other: &MeshStats) {
        self.injected += other.injected;
        self.delivered += other.delivered;
        self.link_traversals += other.link_traversals;
        self.stalled_cycles += other.stalled_cycles;
        self.total_latency += other.total_latency;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_latency_handles_empty() {
        assert_eq!(MeshStats::default().avg_latency(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = MeshStats {
            injected: 1,
            delivered: 1,
            link_traversals: 3,
            stalled_cycles: 0,
            total_latency: 4,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.injected, 2);
        assert_eq!(a.link_traversals, 6);
        assert_eq!(a.total_latency, 8);
    }
}
