//! The sharded mesh stepper: the router phase of [`Mesh::step`]
//! partitioned across persistent worker threads.
//!
//! Each worker owns a contiguous shard of node indices. Every cycle the
//! owner ships each shard's non-empty router queues to its worker over
//! a dedicated SPSC channel pair, the workers route their nodes with
//! the *same* per-node kernel the serial path uses
//! ([`route_node_cycle`]), and the owner blocks at the cycle barrier,
//! collecting results **in shard order**. That fixed merge order is
//! what makes the parallel path bit-identical to the serial one:
//!
//! - deliveries: the serial loop visits nodes in ascending index order;
//!   shards are ascending contiguous ranges merged in shard order, so
//!   the concatenated delivery list is in the same ascending node order
//!   (and FIFO within a node, because the kernel is shared).
//! - cross-shard forwards: every forwarded message carries a unique
//!   injection sequence number and the owner sorts the merged arrival
//!   list by it — exactly what the serial path does — so production
//!   order across shards cannot matter.
//! - stats: the four router counters are integer sums, merged with
//!   [`MeshStats::merge`]; addition order is irrelevant.
//!
//! Workers never see a tracer ([`Mesh::step`] falls back to the serial
//! path when tracing is on, so trace files stay byte-identical and the
//! sink needs no thread-safety).

use crate::mesh::{route_node_cycle, InFlight, MeshConfig};
use crate::stats::MeshStats;
use crate::NodeId;
use clp_obs::Tracer;
use std::collections::VecDeque;
use std::fmt;
use std::ops::Range;
use std::sync::mpsc;
use std::thread;

/// One cycle's work order for a shard: the non-empty queues it owns.
struct Job<M> {
    cycle: u64,
    bw: usize,
    queues: Vec<(usize, VecDeque<InFlight<M>>)>,
}

/// A shard's results for one cycle, returned at the barrier.
struct Done<M> {
    queues: Vec<(usize, VecDeque<InFlight<M>>)>,
    delivered: Vec<(NodeId, M)>,
    arriving: Vec<(NodeId, InFlight<M>)>,
    stats: MeshStats,
}

/// A pool of persistent router workers, one per shard.
///
/// Dropping the pool closes the job channels; workers observe the
/// disconnect, exit, and are joined.
pub(crate) struct ShardedRouter<M> {
    jobs: Vec<mpsc::Sender<Job<M>>>,
    results: Vec<mpsc::Receiver<Done<M>>>,
    handles: Vec<thread::JoinHandle<()>>,
    ranges: Vec<Range<usize>>,
}

impl<M> fmt::Debug for ShardedRouter<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedRouter")
            .field("shards", &self.ranges)
            .finish()
    }
}

fn worker_loop<M>(cfg: MeshConfig, rx: &mpsc::Receiver<Job<M>>, tx: &mpsc::Sender<Done<M>>) {
    let tracer = Tracer::off();
    let mut scratch: VecDeque<InFlight<M>> = VecDeque::new();
    while let Ok(mut job) = rx.recv() {
        let mut delivered = Vec::new();
        let mut arriving = Vec::new();
        let mut stats = MeshStats::default();
        for (node, queue) in &mut job.queues {
            route_node_cycle(
                &cfg,
                job.cycle,
                *node,
                job.bw,
                queue,
                &mut scratch,
                &mut delivered,
                &mut arriving,
                &mut stats,
                &tracer,
                "operand",
            );
        }
        let done = Done {
            queues: job.queues,
            delivered,
            arriving,
            stats,
        };
        if tx.send(done).is_err() {
            break;
        }
    }
}

impl<M: Send + 'static> ShardedRouter<M> {
    /// Spawns `threads` workers over contiguous, balanced node shards.
    pub(crate) fn new(cfg: MeshConfig, threads: usize) -> Self {
        let nodes = cfg.nodes();
        let threads = threads.clamp(1, nodes);
        let per = nodes.div_ceil(threads);
        let mut jobs = Vec::new();
        let mut results = Vec::new();
        let mut handles = Vec::new();
        let mut ranges = Vec::new();
        for t in 0..threads {
            let lo = t * per;
            let hi = ((t + 1) * per).min(nodes);
            if lo >= hi {
                break;
            }
            let (jtx, jrx) = mpsc::channel::<Job<M>>();
            let (dtx, drx) = mpsc::channel::<Done<M>>();
            let handle = thread::Builder::new()
                .name(format!("clp-noc-shard{t}"))
                .spawn(move || worker_loop(cfg, &jrx, &dtx))
                .expect("spawn router worker");
            jobs.push(jtx);
            results.push(drx);
            handles.push(handle);
            ranges.push(lo..hi);
        }
        ShardedRouter {
            jobs,
            results,
            handles,
            ranges,
        }
    }
}

impl<M> ShardedRouter<M> {
    /// One router cycle across all shards: fan out, barrier, merge.
    ///
    /// `queues` entries for this cycle are temporarily moved to the
    /// workers and restored before returning; `delivered`, `arriving`
    /// and `stats` receive the merged results in deterministic shard
    /// order.
    pub(crate) fn step(
        &self,
        cycle: u64,
        bw: usize,
        queues: &mut [VecDeque<InFlight<M>>],
        delivered: &mut Vec<(NodeId, M)>,
        arriving: &mut Vec<(NodeId, InFlight<M>)>,
        stats: &mut MeshStats,
    ) {
        for (tx, range) in self.jobs.iter().zip(&self.ranges) {
            let mut shard: Vec<(usize, VecDeque<InFlight<M>>)> = Vec::new();
            for n in range.clone() {
                if !queues[n].is_empty() {
                    shard.push((n, std::mem::take(&mut queues[n])));
                }
            }
            tx.send(Job {
                cycle,
                bw,
                queues: shard,
            })
            .expect("router worker alive");
        }
        // The cycle barrier: receive every shard's results, merging in
        // shard (= ascending node) order.
        for rx in &self.results {
            let done = rx.recv().expect("router worker alive");
            for (node, q) in done.queues {
                queues[node] = q;
            }
            delivered.extend(done.delivered);
            arriving.extend(done.arriving);
            stats.merge(&done.stats);
        }
    }
}

impl<M> Drop for ShardedRouter<M> {
    fn drop(&mut self) {
        // Closing the job channels makes every worker's `recv` fail,
        // ending its loop.
        self.jobs.clear();
        self.results.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Mesh, MeshConfig, NodeId};

    fn traffic_pattern(mesh: &mut Mesh<u32>) {
        // A mix of local, contended, and long-haul messages.
        for i in 0..8 {
            mesh.inject(NodeId(0), NodeId(3), i);
            mesh.inject(NodeId(i as usize), NodeId(31 - i as usize), 100 + i);
            mesh.inject(NodeId(5), NodeId(5), 200 + i);
        }
    }

    #[test]
    fn sharded_matches_serial_exactly() {
        let cfg = MeshConfig::tflex_operand();
        let mut serial: Mesh<u32> = Mesh::new(cfg);
        let mut sharded: Mesh<u32> = Mesh::new(cfg);
        sharded.enable_sharding(4);
        let mut out_serial = Vec::new();
        let mut out_sharded = Vec::new();
        for round in 0..3 {
            traffic_pattern(&mut serial);
            traffic_pattern(&mut sharded);
            for _ in 0..20 {
                serial.step();
                sharded.step();
                out_serial.extend(serial.drain_delivered());
                out_sharded.extend(sharded.drain_delivered());
            }
            assert!(serial.is_idle(), "round {round}: serial drained");
            assert!(sharded.is_idle(), "round {round}: sharded drained");
        }
        assert_eq!(out_serial, out_sharded, "same payloads in same order");
        assert_eq!(serial.stats(), sharded.stats(), "identical counters");
    }

    #[test]
    fn sharding_clamps_to_node_count() {
        let cfg = MeshConfig::tflex_operand();
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        // More threads than nodes must not panic or change results.
        mesh.enable_sharding(1000);
        mesh.inject(NodeId(0), NodeId(31), 7);
        for _ in 0..20 {
            mesh.step();
        }
        assert_eq!(mesh.drain_delivered(), vec![(NodeId(31), 7)]);
    }
}
