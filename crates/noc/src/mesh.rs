//! The cycle-stepped mesh network model.

use crate::region::Coord;
use crate::stats::MeshStats;
use clp_obs::{TraceEvent, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifies a mesh node (a TFlex core).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Output directions of a mesh router.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Dir {
    East,
    West,
    North,
    South,
    Local,
}

const DIRS: [Dir; 5] = [Dir::East, Dir::West, Dir::North, Dir::South, Dir::Local];

/// Mesh geometry and link parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Number of columns.
    pub width: usize,
    /// Number of rows.
    pub height: usize,
    /// Messages a router may forward per output direction per cycle.
    ///
    /// The TRIPS operand network has bandwidth 1; TFlex doubles it (§5).
    pub link_bandwidth: usize,
}

impl MeshConfig {
    /// The 4x8 core-array mesh with TFlex's doubled operand bandwidth.
    #[must_use]
    pub fn tflex_operand() -> Self {
        MeshConfig {
            width: 4,
            height: 8,
            link_bandwidth: 2,
        }
    }

    /// The 4x8 core-array mesh with single-issue (TRIPS-like) operand
    /// bandwidth.
    #[must_use]
    pub fn trips_operand() -> Self {
        MeshConfig {
            width: 4,
            height: 8,
            link_bandwidth: 1,
        }
    }

    /// The control-message network (one message per link per cycle).
    #[must_use]
    pub fn control() -> Self {
        MeshConfig {
            width: 4,
            height: 8,
            link_bandwidth: 1,
        }
    }

    /// Number of nodes in the mesh.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// The coordinates of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn coord(&self, node: NodeId) -> Coord {
        assert!(node.0 < self.nodes(), "node {node} outside mesh");
        Coord {
            x: node.0 % self.width,
            y: node.0 / self.width,
        }
    }

    /// The node at coordinates `c`.
    #[must_use]
    pub fn node_at(&self, c: Coord) -> NodeId {
        debug_assert!(c.x < self.width && c.y < self.height);
        NodeId(c.y * self.width + c.x)
    }

    /// Manhattan hop distance between two nodes (the shared
    /// [`crate::rect_hops`] definition, so lint and bound route lengths
    /// can never drift from the router's).
    #[must_use]
    pub fn hops(&self, a: NodeId, b: NodeId) -> usize {
        assert!(a.0 < self.nodes(), "node {a} outside mesh");
        assert!(b.0 < self.nodes(), "node {b} outside mesh");
        crate::region::rect_hops(a.0, b.0, self.width)
    }

    /// The inclusive node path a message takes from `a` to `b` under
    /// X-then-Y dimension-order routing — the same route [`Mesh::step`]
    /// walks hop by hop, so per-link attribution built on this path
    /// names exactly the links the message crossed. `a == b` yields the
    /// single-node path.
    #[must_use]
    pub fn route_nodes(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        assert!(a.0 < self.nodes(), "node {a} outside mesh");
        assert!(b.0 < self.nodes(), "node {b} outside mesh");
        crate::region::rect_route(a.0, b.0, self.width)
            .into_iter()
            .map(NodeId)
            .collect()
    }

    /// Next hop direction under X-then-Y dimension-order routing.
    pub(crate) fn route_dir(&self, at: NodeId, dst: NodeId) -> Dir {
        let a = self.coord(at);
        let d = self.coord(dst);
        if a.x < d.x {
            Dir::East
        } else if a.x > d.x {
            Dir::West
        } else if a.y < d.y {
            Dir::South
        } else if a.y > d.y {
            Dir::North
        } else {
            Dir::Local
        }
    }

    pub(crate) fn neighbor_of(&self, at: NodeId, dir: Dir) -> NodeId {
        let c = self.coord(at);
        let n = match dir {
            Dir::East => Coord { x: c.x + 1, y: c.y },
            Dir::West => Coord { x: c.x - 1, y: c.y },
            Dir::South => Coord { x: c.x, y: c.y + 1 },
            Dir::North => Coord { x: c.x, y: c.y - 1 },
            Dir::Local => c,
        };
        self.node_at(n)
    }
}

#[derive(Debug)]
pub(crate) struct InFlight<M> {
    pub(crate) at: NodeId,
    pub(crate) src: NodeId,
    pub(crate) dst: NodeId,
    pub(crate) payload: M,
    pub(crate) injected_at: u64,
    pub(crate) seq: u64,
}

/// One router's work for one cycle, shared verbatim by the serial
/// stepper and the sharded workers so both produce identical routing
/// decisions: drains `queue` in FIFO order under a per-direction
/// budget of `bw`, appending local deliveries to `delivered` and
/// forwarded messages to `arriving`, accumulating counter deltas into
/// `stats`. `scratch` must be empty on entry; on exit `queue` holds
/// the messages that stalled this cycle (in order) and `scratch` is
/// empty again.
#[allow(clippy::too_many_arguments)]
pub(crate) fn route_node_cycle<M>(
    cfg: &MeshConfig,
    cycle: u64,
    node: usize,
    bw: usize,
    queue: &mut VecDeque<InFlight<M>>,
    scratch: &mut VecDeque<InFlight<M>>,
    delivered: &mut Vec<(NodeId, M)>,
    arriving: &mut Vec<(NodeId, InFlight<M>)>,
    stats: &mut MeshStats,
    tracer: &Tracer,
    plane: &'static str,
) {
    debug_assert!(scratch.is_empty());
    let mut budget = [bw; 5];
    while let Some(msg) = queue.pop_front() {
        let dir = cfg.route_dir(msg.at, msg.dst);
        let di = DIRS.iter().position(|&d| d == dir).expect("dir indexed");
        if budget[di] == 0 {
            stats.stalled_cycles += 1;
            tracer.emit(cycle, || TraceEvent::LinkContention { plane, node });
            scratch.push_back(msg);
            continue;
        }
        budget[di] -= 1;
        match dir {
            Dir::Local => {
                stats.delivered += 1;
                let latency = cycle - msg.injected_at;
                stats.total_latency += latency;
                tracer.emit(cycle, || TraceEvent::OperandRouted {
                    plane,
                    src: msg.src.0,
                    dst: msg.dst.0,
                    latency,
                });
                delivered.push((msg.dst, msg.payload));
            }
            _ => {
                stats.link_traversals += 1;
                let next = cfg.neighbor_of(msg.at, dir);
                arriving.push((next, InFlight { at: next, ..msg }));
            }
        }
    }
    std::mem::swap(queue, scratch);
}

/// A deterministic, dimension-order-routed 2-D mesh.
///
/// Each [`Mesh::step`] advances one cycle: every queued message moves at
/// most one hop, subject to per-direction link bandwidth. Messages whose
/// destination equals their source are delivered on the next step without
/// consuming link bandwidth (callers usually bypass the mesh entirely for
/// the local case).
#[derive(Debug)]
pub struct Mesh<M> {
    cfg: MeshConfig,
    /// Per-node queue of messages waiting to be routed.
    queues: Vec<VecDeque<InFlight<M>>>,
    /// Messages that arrive at the *next* step (one-cycle hop latency).
    arriving: Vec<(NodeId, InFlight<M>)>,
    delivered: Vec<(NodeId, M)>,
    cycle: u64,
    next_seq: u64,
    stats: MeshStats,
    tracer: Tracer,
    /// Plane label used in trace events (`"operand"` / `"control"`).
    plane: &'static str,
    /// While `cycle < throttled_until`, every link forwards at most one
    /// message per cycle regardless of configured bandwidth (used by the
    /// fault-injection layer to model contention bursts).
    throttled_until: u64,
    /// Reusable holding deque for messages that stall during a router
    /// cycle, so the hot loop never allocates.
    scratch: VecDeque<InFlight<M>>,
    /// Occupancy bitmask over `queues` (one bit per node, 64 nodes per
    /// word): the router visits only set bits instead of scanning every
    /// queue each cycle. Invariant: bit `n` is set iff `queues[n]` is
    /// non-empty.
    busy: Vec<u64>,
    /// Worker pool for the sharded stepper; `None` runs serially.
    sharding: Option<crate::sharded::ShardedRouter<M>>,
}

impl<M> Mesh<M> {
    /// Creates an idle mesh.
    #[must_use]
    pub fn new(cfg: MeshConfig) -> Self {
        Mesh {
            queues: (0..cfg.nodes()).map(|_| VecDeque::new()).collect(),
            arriving: Vec::new(),
            delivered: Vec::new(),
            cycle: 0,
            next_seq: 0,
            stats: MeshStats::default(),
            tracer: Tracer::off(),
            plane: "operand",
            throttled_until: 0,
            scratch: VecDeque::new(),
            busy: vec![0; cfg.nodes().div_ceil(64)],
            sharding: None,
            cfg,
        }
    }

    /// Clamps every link to bandwidth 1 for the next `cycles` steps.
    ///
    /// Overlapping throttles extend rather than stack: the mesh stays
    /// throttled until the furthest end point seen. A no-op on meshes
    /// already configured with bandwidth 1.
    pub fn throttle(&mut self, cycles: u64) {
        self.throttled_until = self.throttled_until.max(self.cycle + cycles);
    }

    /// True while a [`Mesh::throttle`] burst is in effect.
    #[must_use]
    pub fn is_throttled(&self) -> bool {
        self.cycle < self.throttled_until
    }

    /// Attaches a tracer; `plane` labels this mesh's events
    /// (`"operand"` or `"control"`).
    pub fn set_tracer(&mut self, tracer: Tracer, plane: &'static str) {
        self.tracer = tracer;
        self.plane = plane;
    }

    /// The mesh configuration.
    #[must_use]
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// Accumulated traffic statistics.
    #[must_use]
    pub fn stats(&self) -> &MeshStats {
        &self.stats
    }

    /// Injects a message at `src` destined for `dst`; it becomes routable
    /// on the next [`Mesh::step`].
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` lies outside the mesh.
    pub fn inject(&mut self, src: NodeId, dst: NodeId, payload: M) {
        assert!(src.0 < self.cfg.nodes(), "src {src} outside mesh");
        assert!(dst.0 < self.cfg.nodes(), "dst {dst} outside mesh");
        self.stats.injected += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queues[src.0].push_back(InFlight {
            at: src,
            src,
            dst,
            payload,
            injected_at: self.cycle,
            seq,
        });
        self.busy[src.0 / 64] |= 1 << (src.0 % 64);
    }

    /// True if no messages are queued, flying, or awaiting pickup.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.delivered.is_empty() && self.arriving.is_empty() && self.busy.iter().all(|&w| w == 0)
    }

    /// Advances the cycle counter directly to `cycle` without stepping.
    ///
    /// Only legal while the mesh is idle: stepping an idle mesh is a
    /// pure cycle-counter increment (no routing, no stats, no traffic),
    /// so an event-driven owner may jump the counter over any number of
    /// idle cycles and remain bit-identical to a stepped run.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the mesh has in-flight traffic or `cycle`
    /// moves backwards.
    pub fn skip_to(&mut self, cycle: u64) {
        debug_assert!(self.is_idle(), "cannot skip over in-flight messages");
        debug_assert!(cycle >= self.cycle, "mesh cycle cannot move backwards");
        self.cycle = cycle;
    }

    /// Next hop direction under X-then-Y dimension-order routing.
    #[cfg(test)]
    fn route(&self, at: NodeId, dst: NodeId) -> Dir {
        self.cfg.route_dir(at, dst)
    }

    /// Advances the mesh by one cycle.
    pub fn step(&mut self) {
        self.cycle += 1;

        // Fast path: nothing queued anywhere means routing is a no-op
        // (`arriving` is always drained at the end of the previous
        // step). The cycle counter still advances.
        if self.busy.iter().all(|&w| w == 0) {
            debug_assert!(self.arriving.is_empty());
            debug_assert!(self.queues.iter().all(VecDeque::is_empty));
            return;
        }

        // Each router forwards up to `link_bandwidth` messages per output
        // direction, in FIFO order (stable by sequence number).
        let bw = if self.cycle <= self.throttled_until && self.throttled_until != 0 {
            self.cfg.link_bandwidth.min(1)
        } else {
            self.cfg.link_bandwidth
        };
        if self.sharding.is_some() && !self.tracer.enabled() {
            self.step_sharded(bw);
            // The shards may have drained any subset of their queues;
            // rebuild the occupancy mask wholesale (one pass, only paid
            // on busy sharded cycles).
            for (i, word) in self.busy.iter_mut().enumerate() {
                let mut w = 0u64;
                for (b, q) in self.queues[i * 64..].iter().take(64).enumerate() {
                    if !q.is_empty() {
                        w |= 1 << b;
                    }
                }
                *word = w;
            }
        } else {
            // Visit only occupied queues, in ascending node order (word
            // order, then bit order — identical to the full scan).
            for i in 0..self.busy.len() {
                let mut word = self.busy[i];
                while word != 0 {
                    let node = i * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    route_node_cycle(
                        &self.cfg,
                        self.cycle,
                        node,
                        bw,
                        &mut self.queues[node],
                        &mut self.scratch,
                        &mut self.delivered,
                        &mut self.arriving,
                        &mut self.stats,
                        &self.tracer,
                        self.plane,
                    );
                    if self.queues[node].is_empty() {
                        self.busy[i] &= !(1 << (node % 64));
                    }
                }
            }
        }

        // Hop latency: forwarded messages are routable next cycle. The
        // buffer is drained rather than consumed so its capacity is
        // reused across cycles.
        let mut arriving = std::mem::take(&mut self.arriving);
        arriving.sort_by_key(|(_, m)| m.seq);
        for (node, msg) in arriving.drain(..) {
            self.queues[node.0].push_back(msg);
            self.busy[node.0 / 64] |= 1 << (node.0 % 64);
        }
        self.arriving = arriving;
    }

    /// One sharded router cycle: fan the non-empty queues out to the
    /// worker shards, then merge their results in shard order at the
    /// cycle barrier (see [`crate::sharded`] for the determinism
    /// argument).
    fn step_sharded(&mut self, bw: usize) {
        let router = self.sharding.take().expect("sharding enabled");
        router.step(
            self.cycle,
            bw,
            &mut self.queues,
            &mut self.delivered,
            &mut self.arriving,
            &mut self.stats,
        );
        self.sharding = Some(router);
    }

    /// Removes and returns all messages delivered by previous steps.
    pub fn drain_delivered(&mut self) -> Vec<(NodeId, M)> {
        std::mem::take(&mut self.delivered)
    }
}

impl<M: Send + 'static> Mesh<M> {
    /// Switches the router phase to `threads` worker shards (clamped to
    /// the node count; `threads <= 1` keeps the serial stepper).
    ///
    /// Results are bit-identical to the serial path. Calls while a
    /// tracer is attached still take effect, but traced steps fall back
    /// to the serial path so trace files stay byte-identical.
    pub fn enable_sharding(&mut self, threads: usize) {
        if threads <= 1 {
            self.sharding = None;
            return;
        }
        self.sharding = Some(crate::sharded::ShardedRouter::new(self.cfg, threads));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MeshConfig {
        MeshConfig {
            width: 4,
            height: 4,
            link_bandwidth: 1,
        }
    }

    fn run_until_delivered(mesh: &mut Mesh<u32>, max: usize) -> Vec<(NodeId, u32, u64)> {
        let mut out = Vec::new();
        for cycle in 1..=max as u64 {
            mesh.step();
            for (n, p) in mesh.drain_delivered() {
                out.push((n, p, cycle));
            }
        }
        out
    }

    #[test]
    fn hop_count_matches_manhattan_distance() {
        let cfg = small();
        // node 0 = (0,0), node 15 = (3,3): 6 hops + 1 delivery cycle.
        let mut mesh = Mesh::new(cfg);
        mesh.inject(NodeId(0), NodeId(15), 7);
        let out = run_until_delivered(&mut mesh, 20);
        assert_eq!(out, vec![(NodeId(15), 7, 7)]);
        assert_eq!(cfg.hops(NodeId(0), NodeId(15)), 6);
        assert_eq!(mesh.stats().link_traversals, 6);
    }

    #[test]
    fn local_message_delivered_next_cycle() {
        let mut mesh = Mesh::new(small());
        mesh.inject(NodeId(5), NodeId(5), 1);
        let out = run_until_delivered(&mut mesh, 3);
        assert_eq!(out, vec![(NodeId(5), 1, 1)]);
        assert_eq!(mesh.stats().link_traversals, 0);
    }

    #[test]
    fn route_nodes_matches_dimension_order_walk() {
        let cfg = small();
        // (0,0) -> (2,1): X first (E, E), then Y (S).
        assert_eq!(
            cfg.route_nodes(NodeId(0), NodeId(6)),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(6)]
        );
        // Westward + northward.
        assert_eq!(
            cfg.route_nodes(NodeId(6), NodeId(1)),
            vec![NodeId(6), NodeId(5), NodeId(1)]
        );
        // Self route is the single node.
        assert_eq!(cfg.route_nodes(NodeId(9), NodeId(9)), vec![NodeId(9)]);
        // Path length always hops + 1.
        for a in 0..cfg.nodes() {
            for b in 0..cfg.nodes() {
                let path = cfg.route_nodes(NodeId(a), NodeId(b));
                assert_eq!(path.len(), cfg.hops(NodeId(a), NodeId(b)) + 1);
            }
        }
    }

    #[test]
    fn xy_routing_goes_x_first() {
        let cfg = small();
        let mut mesh: Mesh<()> = Mesh::new(cfg);
        // (0,0) -> (2,1): route should be E, E, S.
        assert_eq!(mesh.route(NodeId(0), NodeId(6)), Dir::East);
        assert_eq!(mesh.route(NodeId(2), NodeId(6)), Dir::South);
        assert_eq!(mesh.route(NodeId(6), NodeId(6)), Dir::Local);
        mesh.inject(NodeId(0), NodeId(6), ());
        for _ in 0..10 {
            mesh.step();
        }
        assert_eq!(mesh.drain_delivered().len(), 1);
    }

    #[test]
    fn contention_serializes_on_shared_link() {
        // Two messages from node 0 heading east must share the E link:
        // second is delayed by one cycle.
        let mut mesh = Mesh::new(small());
        mesh.inject(NodeId(0), NodeId(3), 1);
        mesh.inject(NodeId(0), NodeId(3), 2);
        let out = run_until_delivered(&mut mesh, 20);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].2 + 1, out[1].2, "second message one cycle later");
        assert!(mesh.stats().stalled_cycles > 0);
    }

    #[test]
    fn double_bandwidth_removes_pairwise_contention() {
        let mut cfg = small();
        cfg.link_bandwidth = 2;
        let mut mesh = Mesh::new(cfg);
        mesh.inject(NodeId(0), NodeId(3), 1);
        mesh.inject(NodeId(0), NodeId(3), 2);
        let out = run_until_delivered(&mut mesh, 20);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].2, out[1].2, "both arrive together at bw=2");
    }

    #[test]
    fn fifo_order_preserved_between_same_pair() {
        let mut mesh = Mesh::new(small());
        for i in 0..5 {
            mesh.inject(NodeId(1), NodeId(14), i);
        }
        let out = run_until_delivered(&mut mesh, 40);
        let payloads: Vec<u32> = out.iter().map(|&(_, p, _)| p).collect();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn idle_detection() {
        let mut mesh = Mesh::new(small());
        assert!(mesh.is_idle());
        mesh.inject(NodeId(0), NodeId(1), 9);
        assert!(!mesh.is_idle());
        let _ = run_until_delivered(&mut mesh, 10);
        assert!(mesh.is_idle());
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn inject_out_of_range_panics() {
        let mut mesh: Mesh<()> = Mesh::new(small());
        mesh.inject(NodeId(99), NodeId(0), ());
    }

    #[test]
    fn throttle_degrades_double_bandwidth_to_single() {
        let mut cfg = small();
        cfg.link_bandwidth = 2;
        let mut mesh = Mesh::new(cfg);
        mesh.throttle(20);
        assert!(mesh.is_throttled());
        mesh.inject(NodeId(0), NodeId(3), 1);
        mesh.inject(NodeId(0), NodeId(3), 2);
        let out = run_until_delivered(&mut mesh, 20);
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0].2 + 1,
            out[1].2,
            "throttled bw=2 behaves like bw=1: second message one cycle later"
        );
    }

    #[test]
    fn throttle_expires() {
        let mut cfg = small();
        cfg.link_bandwidth = 2;
        let mut mesh = Mesh::new(cfg);
        mesh.throttle(2);
        for _ in 0..3 {
            mesh.step();
        }
        assert!(!mesh.is_throttled());
        mesh.inject(NodeId(0), NodeId(3), 1);
        mesh.inject(NodeId(0), NodeId(3), 2);
        let out = run_until_delivered(&mut mesh, 20);
        assert_eq!(out[0].2, out[1].2, "full bandwidth restored after burst");
    }

    #[test]
    fn stats_track_latency() {
        let mut mesh = Mesh::new(small());
        mesh.inject(NodeId(0), NodeId(1), 0);
        let _ = run_until_delivered(&mut mesh, 10);
        let s = mesh.stats();
        assert_eq!(s.injected, 1);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.total_latency, 2); // 1 hop + 1 delivery cycle
        assert!((s.avg_latency() - 2.0).abs() < 1e-9);
    }
}
