//! Rectangular composition regions on the core-array mesh.
//!
//! A logical processor composed of N cores occupies a contiguous
//! rectangle of the core array, which keeps worst-case operand-routing
//! distances minimal. These helpers compute the standard tiling used by
//! the TFlex experiments: the 4-column x 8-row array is divided into
//! equal power-of-two rectangles.

use crate::mesh::{MeshConfig, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A position on the mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Column.
    pub x: usize,
    /// Row.
    pub y: usize,
}

/// Failure to carve a composition region out of the mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegionError {
    /// The requested core count is not a power of two between 1 and the
    /// mesh size.
    BadCoreCount(usize),
    /// The requested region index does not fit on the mesh.
    OutOfRange {
        /// Requested region index.
        index: usize,
        /// Number of regions of this size that fit.
        available: usize,
    },
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionError::BadCoreCount(n) => {
                write!(f, "{n} is not a valid composition size")
            }
            RegionError::OutOfRange { index, available } => {
                write!(f, "region {index} requested but only {available} fit")
            }
        }
    }
}

impl std::error::Error for RegionError {}

/// Manhattan hop distance between two slots of a row-major rectangle
/// of width `rect_w`.
///
/// This is *the* route-length definition for every layer that reasons
/// about operand traffic: the X-Y mesh router ([`MeshConfig::hops`]),
/// the placement lints, and the clp-bound static analyzer all call this
/// one helper, so they can never disagree on how far a message travels.
/// Slot indices are row-major (`x = slot % rect_w`, `y = slot / rect_w`),
/// which matches both whole-mesh node IDs and the instruction-slot
/// layout inside a composition rectangle.
///
/// # Panics
///
/// Panics if `rect_w` is zero.
#[must_use]
pub fn rect_hops(a: usize, b: usize, rect_w: usize) -> usize {
    assert!(rect_w > 0, "zero-width rectangle");
    let (ax, ay) = (a % rect_w, a / rect_w);
    let (bx, by) = (b % rect_w, b / rect_w);
    ax.abs_diff(bx) + ay.abs_diff(by)
}

/// The inclusive slot path a message takes from `a` to `b` under
/// X-then-Y dimension-order routing in a row-major rectangle of width
/// `rect_w` — the same walk [`crate::Mesh::step`] performs hop by hop,
/// expressed over slot indices so per-link attribution can be computed
/// without materializing a mesh. `a == b` yields the single-slot path;
/// otherwise the path has [`rect_hops`]` + 1` entries.
///
/// # Panics
///
/// Panics if `rect_w` is zero.
#[must_use]
pub fn rect_route(a: usize, b: usize, rect_w: usize) -> Vec<usize> {
    assert!(rect_w > 0, "zero-width rectangle");
    let (mut x, mut y) = (a % rect_w, a / rect_w);
    let (dx, dy) = (b % rect_w, b / rect_w);
    let mut path = Vec::with_capacity(rect_hops(a, b, rect_w) + 1);
    path.push(a);
    while x != dx {
        x = if x < dx { x + 1 } else { x - 1 };
        path.push(y * rect_w + x);
    }
    while y != dy {
        y = if y < dy { y + 1 } else { y - 1 };
        path.push(y * rect_w + x);
    }
    path
}

/// The width and height of the rectangle used for an `n_cores`
/// composition on a mesh of the given width.
///
/// Rectangles grow alternately in x and y, starting from 1x1, capped at
/// the mesh width: 1→1x1, 2→2x1, 4→2x2, 8→4x2, 16→4x4, 32→4x8.
///
/// # Errors
///
/// Returns [`RegionError::BadCoreCount`] if `n_cores` is not a power of
/// two or exceeds the mesh.
pub fn region_rect(cfg: &MeshConfig, n_cores: usize) -> Result<(usize, usize), RegionError> {
    if !n_cores.is_power_of_two() || n_cores > cfg.nodes() {
        return Err(RegionError::BadCoreCount(n_cores));
    }
    let mut w = 1;
    let mut h = 1;
    while w * h < n_cores {
        if w <= h && w < cfg.width {
            w *= 2;
        } else {
            h *= 2;
        }
    }
    if w > cfg.width || h > cfg.height {
        return Err(RegionError::BadCoreCount(n_cores));
    }
    Ok((w, h))
}

/// The node IDs of the `index`-th region of `n_cores` cores, tiling the
/// mesh left-to-right, top-to-bottom.
///
/// Regions of equal size never overlap, so disjoint logical processors
/// can be composed by picking distinct indices.
///
/// # Errors
///
/// Returns a [`RegionError`] for invalid sizes or an index beyond the
/// number of regions that fit.
pub fn region_for(
    cfg: &MeshConfig,
    n_cores: usize,
    index: usize,
) -> Result<Vec<NodeId>, RegionError> {
    let (w, h) = region_rect(cfg, n_cores)?;
    let per_row = cfg.width / w;
    let rows = cfg.height / h;
    let available = per_row * rows;
    if index >= available {
        return Err(RegionError::OutOfRange { index, available });
    }
    let ox = (index % per_row) * w;
    let oy = (index / per_row) * h;
    let mut nodes = Vec::with_capacity(n_cores);
    for dy in 0..h {
        for dx in 0..w {
            nodes.push(cfg.node_at(Coord {
                x: ox + dx,
                y: oy + dy,
            }));
        }
    }
    Ok(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> MeshConfig {
        MeshConfig {
            width: 4,
            height: 8,
            link_bandwidth: 2,
        }
    }

    #[test]
    fn rect_hops_is_manhattan_distance() {
        // 2x2 rectangle: diagonal is two hops, neighbors one.
        assert_eq!(rect_hops(0, 3, 2), 2);
        assert_eq!(rect_hops(0, 1, 2), 1);
        assert_eq!(rect_hops(2, 2, 2), 0);
        // 4-wide chip layout: node 0 (0,0) to node 31 (3,7).
        assert_eq!(rect_hops(0, 31, 4), 10);
    }

    #[test]
    fn rect_route_matches_mesh_route_nodes() {
        let cfg = chip();
        for a in 0..cfg.nodes() {
            for b in 0..cfg.nodes() {
                let by_slot = rect_route(a, b, cfg.width);
                let by_mesh: Vec<usize> = cfg
                    .route_nodes(NodeId(a), NodeId(b))
                    .into_iter()
                    .map(|n| n.0)
                    .collect();
                assert_eq!(by_slot, by_mesh, "route {a} -> {b}");
                assert_eq!(by_slot.len(), rect_hops(a, b, cfg.width) + 1);
                assert_eq!(rect_hops(a, b, cfg.width), cfg.hops(NodeId(a), NodeId(b)));
            }
        }
    }

    #[test]
    fn rect_shapes_follow_doubling_pattern() {
        let cfg = chip();
        assert_eq!(region_rect(&cfg, 1).unwrap(), (1, 1));
        assert_eq!(region_rect(&cfg, 2).unwrap(), (2, 1));
        assert_eq!(region_rect(&cfg, 4).unwrap(), (2, 2));
        assert_eq!(region_rect(&cfg, 8).unwrap(), (4, 2));
        assert_eq!(region_rect(&cfg, 16).unwrap(), (4, 4));
        assert_eq!(region_rect(&cfg, 32).unwrap(), (4, 8));
    }

    #[test]
    fn non_power_of_two_rejected() {
        assert_eq!(region_rect(&chip(), 3), Err(RegionError::BadCoreCount(3)));
        assert_eq!(region_rect(&chip(), 0), Err(RegionError::BadCoreCount(0)));
        assert_eq!(region_rect(&chip(), 64), Err(RegionError::BadCoreCount(64)));
    }

    #[test]
    fn regions_tile_disjointly() {
        let cfg = chip();
        for &n in &[1usize, 2, 4, 8, 16, 32] {
            let count = cfg.nodes() / n;
            let mut seen = vec![false; cfg.nodes()];
            for i in 0..count {
                let r = region_for(&cfg, n, i).unwrap();
                assert_eq!(r.len(), n);
                for node in r {
                    assert!(!seen[node.0], "core {node} in two regions (size {n})");
                    seen[node.0] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "size {n} regions must cover chip");
        }
    }

    #[test]
    fn region_index_bounds_checked() {
        let err = region_for(&chip(), 8, 4).unwrap_err();
        assert_eq!(
            err,
            RegionError::OutOfRange {
                index: 4,
                available: 4
            }
        );
    }

    #[test]
    fn region_is_contiguous_rectangle() {
        let cfg = chip();
        let r = region_for(&cfg, 4, 1).unwrap();
        // Second 2x2 region: columns 2-3, rows 0-1.
        let coords: Vec<Coord> = r.iter().map(|&n| cfg.coord(n)).collect();
        assert!(coords.iter().all(|c| c.x >= 2 && c.y <= 1));
        // Worst-case internal distance is (w-1)+(h-1).
        let max_hops = r
            .iter()
            .flat_map(|&a| r.iter().map(move |&b| cfg.hops(a, b)))
            .max()
            .unwrap();
        assert_eq!(max_hops, 2);
    }
}
