//! Property tests for the mesh: exactly-once delivery, latency bounds,
//! and per-pair FIFO ordering under arbitrary traffic.

use clp_noc::{Mesh, MeshConfig, NodeId};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    /// Every injected message is delivered exactly once, to the right
    /// node, no earlier than `hops + 1` cycles after injection.
    #[test]
    fn exactly_once_delivery_with_latency_bound(
        msgs in prop::collection::vec((0usize..32, 0usize..32), 1..120),
        bw in 1usize..3,
    ) {
        let cfg = MeshConfig { width: 4, height: 8, link_bandwidth: bw };
        let mut mesh: Mesh<usize> = Mesh::new(cfg);
        for (tag, &(src, dst)) in msgs.iter().enumerate() {
            mesh.inject(NodeId(src), NodeId(dst), tag);
        }
        let mut delivered: BTreeMap<usize, (usize, u64)> = BTreeMap::new();
        let mut cycle = 0u64;
        while !mesh.is_idle() {
            mesh.step();
            cycle += 1;
            prop_assert!(cycle < 100_000, "mesh must drain");
            for (node, tag) in mesh.drain_delivered() {
                prop_assert!(
                    delivered.insert(tag, (node.0, cycle)).is_none(),
                    "message {} delivered twice", tag
                );
            }
        }
        prop_assert_eq!(delivered.len(), msgs.len(), "all messages delivered");
        for (tag, &(src, dst)) in msgs.iter().enumerate() {
            let (node, when) = delivered[&tag];
            prop_assert_eq!(node, dst, "message {} misrouted", tag);
            let min = cfg.hops(NodeId(src), NodeId(dst)) as u64 + 1;
            prop_assert!(when >= min, "message {} arrived before light could", tag);
        }
    }

    /// Messages between the same (src, dst) pair arrive in injection
    /// order (dimension-order routing is a single path).
    #[test]
    fn per_pair_fifo(src in 0usize..32, dst in 0usize..32, n in 1usize..30) {
        let mut mesh: Mesh<usize> = Mesh::new(MeshConfig::tflex_operand());
        for tag in 0..n {
            mesh.inject(NodeId(src), NodeId(dst), tag);
        }
        let mut seen = Vec::new();
        while !mesh.is_idle() {
            mesh.step();
            seen.extend(mesh.drain_delivered().into_iter().map(|(_, t)| t));
        }
        let sorted: Vec<usize> = (0..n).collect();
        prop_assert_eq!(seen, sorted);
    }

    /// Statistics are conserved: injected == delivered once drained, and
    /// link traversals equal the sum of hop distances.
    #[test]
    fn stats_conservation(
        msgs in prop::collection::vec((0usize..32, 0usize..32), 1..60),
    ) {
        let cfg = MeshConfig::control();
        let mut mesh: Mesh<()> = Mesh::new(cfg);
        let mut expected_hops = 0u64;
        for &(src, dst) in &msgs {
            mesh.inject(NodeId(src), NodeId(dst), ());
            expected_hops += cfg.hops(NodeId(src), NodeId(dst)) as u64;
        }
        while !mesh.is_idle() {
            mesh.step();
            let _ = mesh.drain_delivered();
        }
        let s = mesh.stats();
        prop_assert_eq!(s.injected, msgs.len() as u64);
        prop_assert_eq!(s.delivered, msgs.len() as u64);
        prop_assert_eq!(s.link_traversals, expected_hops);
    }
}
