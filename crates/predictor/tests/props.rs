//! Property tests for the composed predictor: speculative state is
//! exactly restored by rollback, repair converges, and the RAS behaves
//! as a stack under arbitrary call/return interleavings.

use clp_isa::BranchKind;
use clp_predictor::{ComposedPredictor, ExitOutcome, PredictorConfig, ReturnAddressStack};
use proptest::prelude::*;

fn outcome(kind: BranchKind, target: u64, exit: u8) -> ExitOutcome {
    ExitOutcome {
        exit_id: exit,
        kind,
        target,
    }
}

proptest! {
    /// Rolling back a prediction restores the predictor to a state that
    /// predicts identically (tables untrained, histories restored).
    #[test]
    fn rollback_restores_prediction_behavior(
        warmup in prop::collection::vec((0u64..8, 0u8..4), 0..40),
        probe_block in 0u64..8,
    ) {
        let mut p = ComposedPredictor::new(PredictorConfig::tflex(), 4);
        for (blk, exit) in warmup {
            let addr = 0x1000 + blk * 512;
            let pred = p.predict(addr);
            let actual = outcome(BranchKind::Branch, 0x1000 + u64::from(exit) * 512, exit);
            let miss = pred.target != actual.target;
            p.resolve(addr, &pred, &actual, miss);
        }
        let addr = 0x1000 + probe_block * 512;
        // Predict, roll back, predict again: identical results.
        let first = p.predict(addr);
        p.rollback(&first);
        let second = p.predict(addr);
        prop_assert_eq!(first.exit_id, second.exit_id);
        prop_assert_eq!(first.kind, second.kind);
        prop_assert_eq!(first.target, second.target);
        p.rollback(&second);
    }

    /// A steady branch pattern converges: after enough training, the
    /// misprediction rate over the last half is below 25%.
    #[test]
    fn steady_patterns_converge(period in 1usize..4, n_banks in prop::sample::select(vec![1usize, 4, 16])) {
        let mut p = ComposedPredictor::new(PredictorConfig::tflex(), n_banks);
        let blocks: Vec<u64> = (0..period as u64).map(|i| 0x4000 + i * 512).collect();
        let mut late_misses = 0;
        let total = 400;
        for i in 0..total {
            let cur = blocks[i % period];
            let next = blocks[(i + 1) % period];
            let pred = p.predict(cur);
            let actual = outcome(BranchKind::Branch, next, 0);
            let miss = pred.target != actual.target;
            if i >= total / 2 && miss {
                late_misses += 1;
            }
            p.resolve(cur, &pred, &actual, miss);
        }
        prop_assert!(
            late_misses <= total / 8,
            "{late_misses} late misses on a period-{period} pattern"
        );
    }

    /// The distributed RAS is a stack: any push/pop sequence that never
    /// overflows capacity pops exactly what was pushed, LIFO.
    #[test]
    fn ras_is_lifo(ops in prop::collection::vec(prop::option::of(1u64..1000), 1..64)) {
        let mut ras = ReturnAddressStack::new(4, 16);
        let mut model: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Some(addr) => {
                    if model.len() < ras.capacity() {
                        ras.push(addr);
                        model.push(addr);
                    }
                }
                None => {
                    let (got, _) = ras.pop();
                    let want = model.pop();
                    prop_assert_eq!(got, want);
                }
            }
            // The top-of-stack core follows sequential partitioning.
            if !model.is_empty() {
                prop_assert_eq!(ras.top_core(), (model.len() - 1) / 16);
            }
        }
    }

    /// Push checkpoints fully undo pushes even at wraparound.
    #[test]
    fn ras_push_checkpoint_roundtrip(
        prefix in prop::collection::vec(1u64..1000, 0..40),
        value in 1u64..1000,
    ) {
        let mut ras = ReturnAddressStack::new(2, 8);
        for &v in &prefix {
            ras.push(v);
        }
        let depth = ras.depth();
        let top = ras.top_core();
        let ckpt = ras.push(value);
        ras.repair(ckpt);
        prop_assert_eq!(ras.depth(), depth);
        prop_assert_eq!(ras.top_core(), top);
    }
}
