//! Predictor sizing parameters.

use serde::{Deserialize, Serialize};

/// Per-core predictor structure sizes (Table 1 of the paper).
///
/// The distributed predictor instantiates one bank of each structure per
/// core, so total capacity scales with composition size. All table sizes
/// must be powers of two.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Entries in the level-1 local-history table.
    pub local_l1: usize,
    /// Entries in the level-2 local exit table.
    pub local_l2: usize,
    /// Entries in the global exit table.
    pub global: usize,
    /// Entries in the choice (tournament selector) table.
    pub choice: usize,
    /// Entries in the branch-type table.
    pub btype: usize,
    /// Entries in the branch target buffer.
    pub btb: usize,
    /// Entries in the call target buffer.
    pub ctb: usize,
    /// Return-address-stack entries per core.
    pub ras_per_core: usize,
    /// Bits of local exit history kept per L1 entry.
    pub local_history_bits: u32,
    /// Bits of global exit history.
    pub global_history_bits: u32,
    /// Prediction latency in cycles (Table 1: 3 cycles).
    pub latency: u32,
}

impl PredictorConfig {
    /// The single-core TFlex bank sizes from Table 1: local 64 (L1) + 128
    /// (L2), global 512, choice 512, RAS 16, CTB 16, BTB 128, Btype 256,
    /// 3-cycle latency.
    #[must_use]
    pub fn tflex() -> Self {
        PredictorConfig {
            local_l1: 64,
            local_l2: 128,
            global: 512,
            choice: 512,
            btype: 256,
            btb: 128,
            ctb: 16,
            ras_per_core: 16,
            local_history_bits: 7,
            global_history_bits: 12,
            latency: 3,
        }
    }

    /// The TRIPS prototype's centralized predictor: a single bank of the
    /// same aggregate capacity as ~2 TFlex banks, shared by all 16 tiles
    /// (its capacity does not scale with composition).
    #[must_use]
    pub fn trips_centralized() -> Self {
        PredictorConfig {
            local_l1: 128,
            local_l2: 256,
            global: 1024,
            choice: 1024,
            btype: 512,
            btb: 256,
            ctb: 32,
            ras_per_core: 32,
            local_history_bits: 7,
            global_history_bits: 12,
            latency: 3,
        }
    }

    /// Approximate predictor state per bank, in bits (the paper quotes
    /// "8K+256 bits" for the TFlex tournament predictor).
    #[must_use]
    pub fn state_bits(&self) -> usize {
        let exit_entry = 3 + 2; // exit id + hysteresis
        self.local_l1 * self.local_history_bits as usize
            + self.local_l2 * exit_entry
            + self.global * exit_entry
            + self.choice * 2
            + self.btype * 3
            + self.btb * (16 + 32)
            + self.ctb * (16 + 32)
            + self.ras_per_core * 64
    }

    /// Validates that all table sizes are powers of two.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        [
            self.local_l1,
            self.local_l2,
            self.global,
            self.choice,
            self.btype,
            self.btb,
            self.ctb,
            self.ras_per_core,
        ]
        .iter()
        .all(|n| n.is_power_of_two())
    }
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self::tflex()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let c = PredictorConfig::tflex();
        assert_eq!(c.local_l1, 64);
        assert_eq!(c.local_l2, 128);
        assert_eq!(c.global, 512);
        assert_eq!(c.choice, 512);
        assert_eq!(c.ras_per_core, 16);
        assert_eq!(c.ctb, 16);
        assert_eq!(c.btb, 128);
        assert_eq!(c.btype, 256);
        assert_eq!(c.latency, 3);
        assert!(c.is_valid());
    }

    #[test]
    fn state_bits_in_expected_ballpark() {
        // The paper quotes roughly 8K bits of tournament state; our
        // accounting (including target structures) lands within a small
        // factor of that.
        let bits = PredictorConfig::tflex().state_bits();
        assert!(bits > 4_000 && bits < 20_000, "got {bits}");
    }

    #[test]
    fn invalid_sizes_detected() {
        let mut c = PredictorConfig::tflex();
        c.global = 500;
        assert!(!c.is_valid());
    }
}
