//! Target prediction: branch-type table, BTB, CTB, sequential adder.

use crate::config::PredictorConfig;
use crate::tables::TaggedTable;
use clp_isa::{BlockAddr, BranchKind, BLOCK_FRAME_BYTES};
use serde::{Deserialize, Serialize};

/// One bank of target-prediction state (each core owns one).
///
/// Given a predicted exit ID, the `Btype` table predicts the exit's
/// control-transfer kind, which selects among four target sources: the
/// BTB (branches), the CTB (calls), the RAS (returns; owned by
/// [`ComposedPredictor`](crate::ComposedPredictor)), and the
/// next-sequential-block adder.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TargetPredictor {
    btype: Vec<u8>,
    btype_mask: usize,
    btb: TaggedTable,
    ctb: TaggedTable,
}

impl TargetPredictor {
    /// Creates an empty bank.
    #[must_use]
    pub fn new(cfg: &PredictorConfig) -> Self {
        TargetPredictor {
            btype: vec![BranchKind::Seq.encode(); cfg.btype],
            btype_mask: cfg.btype - 1,
            btb: TaggedTable::new(cfg.btb),
            ctb: TaggedTable::new(cfg.ctb),
        }
    }

    fn btype_index(&self, addr: BlockAddr, exit: u8) -> usize {
        ((((addr >> 9) << 3) as usize) | exit as usize) & self.btype_mask
    }

    fn btb_key(addr: BlockAddr, exit: u8) -> u64 {
        ((addr >> 9) << 3) | u64::from(exit)
    }

    /// Predicts the branch kind of `exit` out of the block at `addr`.
    /// Cold entries predict a sequential exit.
    #[must_use]
    pub fn predict_kind(&self, addr: BlockAddr, exit: u8) -> BranchKind {
        BranchKind::decode(self.btype[self.btype_index(addr, exit)]).unwrap_or(BranchKind::Seq)
    }

    /// Predicts the target of a regular branch (BTB); falls back to the
    /// sequential address on a miss.
    #[must_use]
    pub fn predict_branch_target(&self, addr: BlockAddr, exit: u8) -> BlockAddr {
        self.btb
            .lookup(Self::btb_key(addr, exit))
            .unwrap_or(addr + BLOCK_FRAME_BYTES)
    }

    /// Predicts the target of a call (CTB); falls back to the sequential
    /// address on a miss.
    #[must_use]
    pub fn predict_call_target(&self, addr: BlockAddr, exit: u8) -> BlockAddr {
        self.ctb
            .lookup(Self::btb_key(addr, exit))
            .unwrap_or(addr + BLOCK_FRAME_BYTES)
    }

    /// The sequential-exit target (`SEQ` adder).
    #[must_use]
    pub fn sequential_target(addr: BlockAddr) -> BlockAddr {
        addr + BLOCK_FRAME_BYTES
    }

    /// Trains the bank with a resolved exit.
    pub fn train(
        &mut self,
        addr: BlockAddr,
        exit: u8,
        kind: BranchKind,
        target: Option<BlockAddr>,
    ) {
        let idx = self.btype_index(addr, exit);
        self.btype[idx] = kind.encode();
        if let Some(t) = target {
            match kind {
                BranchKind::Branch => self.btb.insert(Self::btb_key(addr, exit), t),
                BranchKind::Call => self.ctb.insert(Self::btb_key(addr, exit), t),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> TargetPredictor {
        TargetPredictor::new(&PredictorConfig::tflex())
    }

    #[test]
    fn cold_prediction_is_sequential() {
        let t = bank();
        assert_eq!(t.predict_kind(0x1000, 0), BranchKind::Seq);
        assert_eq!(t.predict_branch_target(0x1000, 0), 0x1200);
        assert_eq!(TargetPredictor::sequential_target(0x1000), 0x1200);
    }

    #[test]
    fn learns_kind_and_branch_target() {
        let mut t = bank();
        t.train(0x1000, 2, BranchKind::Branch, Some(0x8000));
        assert_eq!(t.predict_kind(0x1000, 2), BranchKind::Branch);
        assert_eq!(t.predict_branch_target(0x1000, 2), 0x8000);
        // Different exit of the same block: untrained.
        assert_eq!(t.predict_kind(0x1000, 3), BranchKind::Seq);
    }

    #[test]
    fn learns_call_target_in_ctb() {
        let mut t = bank();
        t.train(0x2000, 1, BranchKind::Call, Some(0x4000));
        assert_eq!(t.predict_kind(0x2000, 1), BranchKind::Call);
        assert_eq!(t.predict_call_target(0x2000, 1), 0x4000);
        // The BTB is unaffected.
        assert_eq!(t.predict_branch_target(0x2000, 1), 0x2200);
    }

    #[test]
    fn return_kind_learned_without_target() {
        let mut t = bank();
        t.train(0x3000, 0, BranchKind::Return, None);
        assert_eq!(t.predict_kind(0x3000, 0), BranchKind::Return);
    }
}
