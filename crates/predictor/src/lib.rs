//! # clp-predictor — the composable next-block predictor
//!
//! TFlex makes one control-flow prediction per 128-instruction
//! hyperblock. The predictor is *fully distributed*: every core carries an
//! identical bank of prediction state, and a block's predictions are made
//! by its owner core's bank (block ownership is a hash of the block
//! address, so bank capacity scales with composition size).
//!
//! A prediction proceeds in two stages, mirroring §4.3 of the paper:
//!
//! 1. **Exit prediction** — an Alpha-21264-style tournament (local /
//!    global / choice) over three-bit *exit IDs* rather than single
//!    taken/not-taken bits.
//! 2. **Target prediction** — a branch-type (`Btype`) table picks the
//!    mechanism: BTB for regular branches, CTB for calls, a distributed
//!    Return Address Stack for returns, and a next-sequential-address
//!    adder otherwise.
//!
//! The RAS is *sequentially* partitioned across the composed cores into
//! one logical stack (entries `0..16` on core 0, `16..32` on core 1, ...);
//! [`ComposedPredictor::ras_top_core`] exposes which core currently holds
//! the top so that the simulator can charge the push/pop message latency.
//!
//! Histories are updated speculatively at predict time. Every prediction
//! returns a [`Checkpoint`]; on a misprediction the owner calls
//! [`ComposedPredictor::resolve`] with that checkpoint and the actual
//! outcome, which rolls the speculative state back and reapplies the
//! correct history, exactly as the mispredicting owner does in hardware.

#![warn(missing_docs)]

mod composed;
mod config;
mod exit;
mod ras;
mod tables;
mod target;

pub use composed::{
    block_owner, Checkpoint, ComposedPredictor, ExitOutcome, Prediction, PredictorStats,
};
pub use config::PredictorConfig;
pub use exit::ExitPredictor;
pub use ras::ReturnAddressStack;
pub use tables::SatCounter;
pub use target::TargetPredictor;
