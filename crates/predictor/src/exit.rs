//! The tournament exit predictor (one bank; each core owns one).

use crate::config::PredictorConfig;
use crate::tables::{ExitEntry, SatCounter};
use serde::{Deserialize, Serialize};

/// Which component the tournament chose for a prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExitChoice {
    /// The per-block local two-level component.
    Local,
    /// The global-history component.
    Global,
}

/// Rollback state for one speculative exit prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExitCheckpoint {
    l1_index: usize,
    old_local_history: u32,
}

/// One bank of the tournament exit predictor: local (two-level), global,
/// and choice tables over three-bit exit IDs.
///
/// Local histories are updated speculatively at predict time and repaired
/// from the checkpoint on misprediction; the *global* history is owned by
/// [`ComposedPredictor`](crate::ComposedPredictor) because it is forwarded
/// from owner to owner with each prediction hand-off.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExitPredictor {
    cfg: PredictorConfig,
    local_l1: Vec<u32>,
    local_l2: Vec<ExitEntry>,
    global: Vec<ExitEntry>,
    choice: Vec<SatCounter>,
}

impl ExitPredictor {
    /// Creates an empty bank.
    #[must_use]
    pub fn new(cfg: PredictorConfig) -> Self {
        ExitPredictor {
            local_l1: vec![0; cfg.local_l1],
            local_l2: vec![ExitEntry::default(); cfg.local_l2],
            global: vec![ExitEntry::default(); cfg.global],
            choice: vec![SatCounter::weakly_high(); cfg.choice],
            cfg,
        }
    }

    fn l1_index(&self, block_addr: u64) -> usize {
        ((block_addr >> 9) as usize) & (self.cfg.local_l1 - 1)
    }

    fn l2_index(&self, local_history: u32) -> usize {
        (local_history as usize) & (self.cfg.local_l2 - 1)
    }

    fn global_index(&self, block_addr: u64, global_history: u32) -> usize {
        (((block_addr >> 9) as usize) ^ (global_history as usize)) & (self.cfg.global - 1)
    }

    fn choice_index(&self, block_addr: u64, global_history: u32) -> usize {
        (((block_addr >> 9) as usize) ^ (global_history as usize)) & (self.cfg.choice - 1)
    }

    /// Predicts the exit ID for the block at `block_addr`, speculatively
    /// updating the local history. Returns the prediction, the component
    /// that produced it, and a checkpoint for repair.
    pub fn predict(
        &mut self,
        block_addr: u64,
        global_history: u32,
    ) -> (u8, ExitChoice, ExitCheckpoint) {
        let l1 = self.l1_index(block_addr);
        let local_history = self.local_l1[l1];
        let local = self.local_l2[self.l2_index(local_history)].exit;
        let global = self.global[self.global_index(block_addr, global_history)].exit;
        let use_global = self.choice[self.choice_index(block_addr, global_history)].is_high();
        let (exit, choice) = if use_global {
            (global, ExitChoice::Global)
        } else {
            (local, ExitChoice::Local)
        };
        let ckpt = ExitCheckpoint {
            l1_index: l1,
            old_local_history: local_history,
        };
        // Speculative local-history update with the predicted exit.
        self.local_l1[l1] = Self::shift_history(local_history, exit, self.cfg.local_history_bits);
        (exit, choice, ckpt)
    }

    /// Restores the speculative local history from a checkpoint and
    /// reapplies the actual exit (misprediction repair).
    pub fn repair(&mut self, ckpt: ExitCheckpoint, actual_exit: u8) {
        self.local_l1[ckpt.l1_index] = Self::shift_history(
            ckpt.old_local_history,
            actual_exit,
            self.cfg.local_history_bits,
        );
    }

    /// Restores the speculative local history exactly as it was before
    /// the checkpointed prediction (discarding it without a replacement —
    /// used when a squashed block will be re-predicted from scratch).
    pub fn rollback(&mut self, ckpt: ExitCheckpoint) {
        self.local_l1[ckpt.l1_index] = ckpt.old_local_history;
    }

    /// Trains all components with the resolved exit.
    ///
    /// `pre_prediction_history` values must be the histories *at predict
    /// time* (the checkpoint's local history and the forwarded global
    /// history), as in hardware where the update indexes are carried with
    /// the block.
    pub fn train(
        &mut self,
        block_addr: u64,
        ckpt: ExitCheckpoint,
        global_history: u32,
        actual_exit: u8,
    ) {
        let l2 = self.l2_index(ckpt.old_local_history);
        let g = self.global_index(block_addr, global_history);
        let local_correct = self.local_l2[l2].exit == actual_exit;
        let global_correct = self.global[g].exit == actual_exit;
        self.local_l2[l2].train(actual_exit);
        self.global[g].train(actual_exit);
        if local_correct != global_correct {
            let c = self.choice_index(block_addr, global_history);
            self.choice[c].train(global_correct);
        }
    }

    /// Shifts a 3-bit exit ID into an exit history register.
    #[must_use]
    pub fn shift_history(history: u32, exit: u8, bits: u32) -> u32 {
        ((history << 3) | u32::from(exit & 0x7)) & ((1 << bits) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> ExitPredictor {
        ExitPredictor::new(PredictorConfig::tflex())
    }

    #[test]
    fn learns_a_constant_exit() {
        let mut p = bank();
        let addr = 0x1000;
        let mut hist = 0u32;
        let mut correct = 0;
        for i in 0..50 {
            let (exit, _, ckpt) = p.predict(addr, hist);
            if exit == 3 {
                correct += 1;
            }
            p.train(addr, ckpt, hist, 3);
            if exit != 3 {
                p.repair(ckpt, 3);
            }
            hist = ExitPredictor::shift_history(hist, 3, 12);
            let _ = i;
        }
        assert!(correct >= 45, "only {correct}/50 correct");
    }

    #[test]
    fn learns_an_alternating_pattern_via_history() {
        // Exit alternates 1,2,1,2... The two-level components must learn it.
        let mut p = bank();
        let addr = 0x2000;
        let mut hist = 0u32;
        let mut correct_late = 0;
        for i in 0..200 {
            let actual = if i % 2 == 0 { 1 } else { 2 };
            let (exit, _, ckpt) = p.predict(addr, hist);
            if i >= 100 && exit == actual {
                correct_late += 1;
            }
            p.train(addr, ckpt, hist, actual);
            if exit != actual {
                p.repair(ckpt, actual);
            }
            hist = ExitPredictor::shift_history(hist, actual, 12);
        }
        assert!(correct_late >= 95, "late accuracy {correct_late}/100");
    }

    #[test]
    fn repair_restores_history_exactly() {
        let mut p = bank();
        let addr = 0x3000;
        // Train a stable state.
        let mut hist = 0;
        for _ in 0..20 {
            let (_, _, ckpt) = p.predict(addr, hist);
            p.train(addr, ckpt, hist, 4);
            p.repair(ckpt, 4);
            hist = ExitPredictor::shift_history(hist, 4, 12);
        }
        let snapshot = p.clone();
        // A wrong-path prediction followed by repair with the same actual
        // exit must restore identical state (tables untrained).
        let (_, _, ckpt) = p.predict(addr, hist);
        p.repair(ckpt, 4);
        assert_eq!(p.local_l1, snapshot.local_l1);
    }

    #[test]
    fn history_shift_masks_to_width() {
        let h = ExitPredictor::shift_history(0xffff_ffff, 7, 12);
        assert_eq!(h, 0xfff);
        assert_eq!(ExitPredictor::shift_history(0, 5, 12), 5);
        assert_eq!(ExitPredictor::shift_history(5, 1, 12), (5 << 3) | 1);
    }
}
