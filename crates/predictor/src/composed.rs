//! The composed (multi-bank) predictor and its speculation protocol.

use crate::config::PredictorConfig;
use crate::exit::{ExitCheckpoint, ExitPredictor};
use crate::ras::{RasCheckpoint, ReturnAddressStack};
use crate::target::TargetPredictor;
use clp_isa::{BlockAddr, BranchKind, BLOCK_FRAME_BYTES};
use serde::{Deserialize, Serialize};

/// The core (participant-relative index) that owns the block at `addr` in
/// an `n_cores` composition.
///
/// Ownership hashes the *block starting address* (§4), folding in higher
/// address bits so that loops over few blocks still spread across cores.
///
/// The reduction is a true modulo (identical to the old power-of-two
/// mask when `n_cores` is a power of two), so ownership stays defined
/// over the non-power-of-two survivor sets produced by hard-fault
/// recomposition.
#[must_use]
pub fn block_owner(addr: BlockAddr, n_cores: usize) -> usize {
    debug_assert!(n_cores > 0);
    let frame = addr >> 9;
    ((frame ^ (frame >> 5)) as usize) % n_cores
}

/// The resolved outcome of a block's exit branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExitOutcome {
    /// The exit ID that actually fired.
    pub exit_id: u8,
    /// The actual branch kind.
    pub kind: BranchKind,
    /// The actual next-block address (for [`BranchKind::Halt`], the
    /// sequential address — fetch stops anyway).
    pub target: BlockAddr,
}

/// Rollback state for one block's prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Checkpoint {
    owner: usize,
    exit: ExitCheckpoint,
    ras: RasCheckpoint,
    global_history: u32,
}

/// A completed next-block prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted exit ID.
    pub exit_id: u8,
    /// Predicted branch kind.
    pub kind: BranchKind,
    /// Predicted next-block address.
    pub target: BlockAddr,
    /// The participating core that held the RAS top *before* this
    /// prediction's RAS operation (for charging message latency); `None`
    /// if the prediction involved no RAS traffic.
    pub ras_core: Option<usize>,
    /// Rollback state to pass to [`ComposedPredictor::resolve`].
    pub checkpoint: Checkpoint,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Bank {
    exit: ExitPredictor,
    target: TargetPredictor,
}

/// Per-logical-processor statistics of the prediction machinery.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorStats {
    /// Predictions made.
    pub predictions: u64,
    /// Resolutions where the predicted target was wrong.
    pub mispredictions: u64,
    /// Exit-ID mispredictions (subset of target mispredictions unless the
    /// target tables were wrong with the right exit).
    pub exit_mispredictions: u64,
}

impl PredictorStats {
    /// Renders these counters as a stats-registry node named `name`.
    #[must_use]
    pub fn to_node(&self, name: &str) -> clp_obs::StatsNode {
        let rate = if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        };
        clp_obs::StatsNode::new(name)
            .count("predictions", self.predictions)
            .count("mispredictions", self.mispredictions)
            .count("exit_mispredictions", self.exit_mispredictions)
            .gauge("misprediction_rate", rate)
    }
}

/// The fully composed next-block predictor for one logical processor.
///
/// Holds one identical [`ExitPredictor`]/[`TargetPredictor`] bank per
/// participating core plus the sequentially partitioned RAS and the
/// speculative global exit history that hardware forwards from owner to
/// owner.
///
/// # Examples
///
/// ```
/// use clp_predictor::{ComposedPredictor, ExitOutcome, PredictorConfig};
/// use clp_isa::BranchKind;
///
/// let mut p = ComposedPredictor::new(PredictorConfig::tflex(), 8);
/// let pred = p.predict(0x1000);
/// let actual = ExitOutcome { exit_id: 0, kind: BranchKind::Branch, target: 0x1000 };
/// let mispredicted = pred.target != actual.target;
/// p.resolve(0x1000, &pred, &actual, mispredicted);
/// assert_eq!(p.stats().predictions, 1);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ComposedPredictor {
    cfg: PredictorConfig,
    banks: Vec<Bank>,
    ras: ReturnAddressStack,
    global_history: u32,
    stats: PredictorStats,
}

impl ComposedPredictor {
    /// Creates a predictor for a composition of `n_cores` cores.
    ///
    /// Compositions start as powers of two (the mesh regions are
    /// rectangular), but hard-fault recovery rebuilds the predictor over
    /// the survivor set, so any nonzero bank count is accepted.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero or `cfg` is invalid.
    #[must_use]
    pub fn new(cfg: PredictorConfig, n_cores: usize) -> Self {
        assert!(n_cores > 0, "composition needs at least one core");
        assert!(
            cfg.is_valid(),
            "predictor table sizes must be powers of two"
        );
        ComposedPredictor {
            banks: (0..n_cores)
                .map(|_| Bank {
                    exit: ExitPredictor::new(cfg),
                    target: TargetPredictor::new(&cfg),
                })
                .collect(),
            ras: ReturnAddressStack::new(n_cores, cfg.ras_per_core),
            global_history: 0,
            stats: PredictorStats::default(),
            cfg,
        }
    }

    /// Number of participating cores.
    #[must_use]
    pub fn n_cores(&self) -> usize {
        self.banks.len()
    }

    /// Prediction latency in cycles.
    #[must_use]
    pub fn latency(&self) -> u32 {
        self.cfg.latency
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    /// The participating core holding the RAS top (for message timing).
    #[must_use]
    pub fn ras_top_core(&self) -> usize {
        self.ras.top_core()
    }

    /// Predicts the block following the block at `addr`, speculatively
    /// updating histories and the RAS.
    pub fn predict(&mut self, addr: BlockAddr) -> Prediction {
        self.stats.predictions += 1;
        let owner = block_owner(addr, self.banks.len());
        let ghist = self.global_history;
        let (exit_id, _choice, exit_ckpt) = self.banks[owner].exit.predict(addr, ghist);
        let kind = self.banks[owner].target.predict_kind(addr, exit_id);
        let mut ras_core = None;
        let (target, ras_ckpt) = match kind {
            BranchKind::Branch => (
                self.banks[owner]
                    .target
                    .predict_branch_target(addr, exit_id),
                self.ras.checkpoint(),
            ),
            BranchKind::Call => {
                ras_core = Some(self.ras.top_core());
                let t = self.banks[owner].target.predict_call_target(addr, exit_id);
                let ckpt = self.ras.push(addr + BLOCK_FRAME_BYTES);
                (t, ckpt)
            }
            BranchKind::Return => {
                ras_core = Some(self.ras.top_core());
                let (popped, ckpt) = self.ras.pop();
                (popped.unwrap_or(addr + BLOCK_FRAME_BYTES), ckpt)
            }
            BranchKind::Seq | BranchKind::Halt => (
                TargetPredictor::sequential_target(addr),
                self.ras.checkpoint(),
            ),
        };
        self.global_history =
            ExitPredictor::shift_history(ghist, exit_id, self.cfg.global_history_bits);
        Prediction {
            exit_id,
            kind,
            target,
            ras_core,
            checkpoint: Checkpoint {
                owner,
                exit: exit_ckpt,
                ras: ras_ckpt,
                global_history: ghist,
            },
        }
    }

    /// Resolves a previously predicted block: trains the owner's tables
    /// and, when `mispredicted`, repairs the speculative histories and
    /// RAS from the checkpoint and reapplies the actual outcome.
    ///
    /// Mispredictions must be resolved in (block) age order, with younger
    /// speculative predictions discarded by the caller; this mirrors the
    /// owner-initiated rollback protocol of §4.3.
    pub fn resolve(
        &mut self,
        addr: BlockAddr,
        prediction: &Prediction,
        actual: &ExitOutcome,
        mispredicted: bool,
    ) {
        let ckpt = &prediction.checkpoint;
        let bank = &mut self.banks[ckpt.owner];
        bank.exit
            .train(addr, ckpt.exit, ckpt.global_history, actual.exit_id);
        let trained_target = match actual.kind {
            BranchKind::Branch | BranchKind::Call => Some(actual.target),
            _ => None,
        };
        bank.target
            .train(addr, actual.exit_id, actual.kind, trained_target);

        if actual.exit_id != prediction.exit_id {
            self.stats.exit_mispredictions += 1;
        }
        if mispredicted {
            self.stats.mispredictions += 1;
            // Roll back this block's speculative effects...
            bank.exit.repair(ckpt.exit, actual.exit_id);
            self.ras.repair(ckpt.ras);
            // ...and reapply the actual control transfer.
            match actual.kind {
                BranchKind::Call => {
                    self.ras.push(addr + BLOCK_FRAME_BYTES);
                }
                BranchKind::Return => {
                    self.ras.pop();
                }
                _ => {}
            }
            self.global_history = ExitPredictor::shift_history(
                ckpt.global_history,
                actual.exit_id,
                self.cfg.global_history_bits,
            );
        }
    }

    /// Discards a speculative prediction outright, restoring histories
    /// and the RAS to their pre-prediction state. Used for predictions
    /// that will never resolve because their block was squashed by an
    /// *older* event (ordering violation or an older misprediction);
    /// call youngest-first when unwinding several.
    pub fn rollback(&mut self, prediction: &Prediction) {
        let ckpt = &prediction.checkpoint;
        self.banks[ckpt.owner].exit.rollback(ckpt.exit);
        self.ras.repair(ckpt.ras);
        self.global_history = ckpt.global_history;
    }

    /// Misprediction rate over all resolved predictions.
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        if self.stats.predictions == 0 {
            0.0
        } else {
            self.stats.mispredictions as f64 / self.stats.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor(n: usize) -> ComposedPredictor {
        ComposedPredictor::new(PredictorConfig::tflex(), n)
    }

    #[test]
    fn owner_hash_distributes_sequential_blocks() {
        let owners: Vec<usize> = (0..32u64)
            .map(|i| block_owner(i * BLOCK_FRAME_BYTES, 8))
            .collect();
        let mut counts = [0usize; 8];
        for &o in &owners {
            counts[o] += 1;
        }
        // Sequential frames must not all land on one core.
        assert!(counts.iter().all(|&c| c > 0), "counts {counts:?}");
    }

    #[test]
    fn learns_a_simple_loop() {
        // Block A branches back to itself 9 times, then exits to B.
        let mut p = predictor(4);
        let a = 0x1000u64;
        let b = 0x4000u64;
        let mut correct = 0;
        let mut total = 0;
        for _trip in 0..30 {
            for i in 0..10 {
                let pred = p.predict(a);
                let actual = if i < 9 {
                    ExitOutcome {
                        exit_id: 0,
                        kind: BranchKind::Branch,
                        target: a,
                    }
                } else {
                    ExitOutcome {
                        exit_id: 1,
                        kind: BranchKind::Branch,
                        target: b,
                    }
                };
                let miss = pred.target != actual.target;
                total += 1;
                if !miss {
                    correct += 1;
                }
                p.resolve(a, &pred, &actual, miss);
            }
        }
        // Warm predictor should capture the loop pattern via histories.
        assert!(
            correct as f64 / total as f64 > 0.8,
            "accuracy {correct}/{total}"
        );
    }

    #[test]
    fn call_return_pair_uses_ras() {
        let mut p = predictor(2);
        let caller = 0x1000u64;
        let callee = 0x8000u64;
        // Train: caller calls callee; callee returns to caller+512.
        for _ in 0..4 {
            let pc = p.predict(caller);
            p.resolve(
                caller,
                &pc,
                &ExitOutcome {
                    exit_id: 0,
                    kind: BranchKind::Call,
                    target: callee,
                },
                pc.target != callee,
            );
            let pr = p.predict(callee);
            p.resolve(
                callee,
                &pr,
                &ExitOutcome {
                    exit_id: 0,
                    kind: BranchKind::Return,
                    target: caller + BLOCK_FRAME_BYTES,
                },
                pr.target != caller + BLOCK_FRAME_BYTES,
            );
        }
        // Now both should predict correctly, with the return served by RAS.
        let pc = p.predict(caller);
        assert_eq!(pc.kind, BranchKind::Call);
        assert_eq!(pc.target, callee);
        let pr = p.predict(callee);
        assert_eq!(pr.kind, BranchKind::Return);
        assert_eq!(pr.target, caller + BLOCK_FRAME_BYTES);
        assert!(pr.ras_core.is_some(), "return consults the RAS");
    }

    #[test]
    fn misprediction_repair_restores_ras_depth() {
        let mut p = predictor(1);
        let a = 0x1000u64;
        // Train block A as a call so the predictor speculatively pushes.
        for _ in 0..3 {
            let pred = p.predict(a);
            p.resolve(
                a,
                &pred,
                &ExitOutcome {
                    exit_id: 0,
                    kind: BranchKind::Call,
                    target: 0x8000,
                },
                pred.target != 0x8000,
            );
        }
        let depth_before = p.ras.depth();
        // Next prediction pushes again (predicted call), but the block
        // actually takes a plain branch: repair must pop the bogus entry.
        let pred = p.predict(a);
        assert_eq!(pred.kind, BranchKind::Call);
        p.resolve(
            a,
            &pred,
            &ExitOutcome {
                exit_id: 1,
                kind: BranchKind::Branch,
                target: 0x2000,
            },
            true,
        );
        assert_eq!(p.ras.depth(), depth_before, "speculative push undone");
    }

    #[test]
    fn stats_count_mispredictions() {
        let mut p = predictor(1);
        let a = 0u64;
        let pred = p.predict(a);
        p.resolve(
            a,
            &pred,
            &ExitOutcome {
                exit_id: 7,
                kind: BranchKind::Branch,
                target: 0x10_000,
            },
            true,
        );
        assert_eq!(p.stats().predictions, 1);
        assert_eq!(p.stats().mispredictions, 1);
        assert!(p.misprediction_rate() > 0.99);
    }

    #[test]
    fn non_power_of_two_survivor_sets_accepted() {
        // Hard-fault recovery rebuilds the predictor over the survivor
        // set, which is usually not a power of two (16 -> 15 cores).
        for n in [3usize, 5, 7, 15, 31] {
            let mut p = predictor(n);
            for addr in (0u64..64 * 512).step_by(512) {
                assert!(block_owner(addr, n) < n);
                let _ = p.predict(addr);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_composition_rejected() {
        let _ = predictor(0);
    }
}
