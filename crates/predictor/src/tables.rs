//! Small building blocks: saturating counters and tagged tables.

use serde::{Deserialize, Serialize};

/// A 2-bit saturating counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SatCounter(u8);

impl SatCounter {
    /// Creates a counter initialized to a weakly-taken state (2).
    #[must_use]
    pub fn weakly_high() -> Self {
        SatCounter(2)
    }

    /// Current counter value (0..=3).
    #[must_use]
    pub fn value(self) -> u8 {
        self.0
    }

    /// True in the upper half of the range.
    #[must_use]
    pub fn is_high(self) -> bool {
        self.0 >= 2
    }

    /// Increments, saturating at 3.
    pub fn inc(&mut self) {
        self.0 = (self.0 + 1).min(3);
    }

    /// Decrements, saturating at 0.
    pub fn dec(&mut self) {
        self.0 = self.0.saturating_sub(1);
    }

    /// Strengthens toward `high` (inc if true, dec if false).
    pub fn train(&mut self, high: bool) {
        if high {
            self.inc()
        } else {
            self.dec()
        }
    }
}

/// An exit-prediction entry: a 3-bit exit ID plus hysteresis.
///
/// The hysteresis counter resists replacement: a mispredicted exit first
/// weakens the entry, and only a second miss replaces the stored exit ID
/// (the standard two-level-predictor update generalized from bits to IDs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExitEntry {
    /// Predicted 3-bit exit ID.
    pub exit: u8,
    /// Confidence/hysteresis.
    pub conf: SatCounter,
}

impl ExitEntry {
    /// Trains the entry with an observed exit.
    pub fn train(&mut self, actual: u8) {
        if self.exit == actual {
            self.conf.inc();
        } else if self.conf.value() == 0 {
            self.exit = actual;
            self.conf = SatCounter(1);
        } else {
            self.conf.dec();
        }
    }
}

/// A direct-mapped tagged table mapping partial tags to 64-bit values
/// (used for the BTB and CTB).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaggedTable {
    tags: Vec<u16>,
    values: Vec<u64>,
    valid: Vec<bool>,
    mask: usize,
}

impl TaggedTable {
    /// Creates a table with `entries` slots (must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two());
        TaggedTable {
            tags: vec![0; entries],
            values: vec![0; entries],
            valid: vec![false; entries],
            mask: entries - 1,
        }
    }

    fn slot(&self, key: u64) -> (usize, u16) {
        let idx = (key as usize) & self.mask;
        let tag = ((key >> self.mask.trailing_ones()) & 0xffff) as u16;
        (idx, tag)
    }

    /// Looks up `key`, returning the stored value on a tag hit.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Option<u64> {
        let (idx, tag) = self.slot(key);
        (self.valid[idx] && self.tags[idx] == tag).then(|| self.values[idx])
    }

    /// Installs `value` under `key`, evicting any alias.
    pub fn insert(&mut self, key: u64, value: u64) {
        let (idx, tag) = self.slot(key);
        self.tags[idx] = tag;
        self.values[idx] = value;
        self.valid[idx] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_counter_saturates() {
        let mut c = SatCounter::default();
        assert_eq!(c.value(), 0);
        c.dec();
        assert_eq!(c.value(), 0);
        for _ in 0..10 {
            c.inc();
        }
        assert_eq!(c.value(), 3);
        assert!(c.is_high());
        c.train(false);
        c.train(false);
        assert!(!c.is_high());
    }

    #[test]
    fn exit_entry_has_hysteresis() {
        let mut e = ExitEntry::default();
        e.train(5);
        e.train(5);
        assert_eq!(e.exit, 5);
        // One differing outcome weakens but does not replace...
        e.train(2);
        assert_eq!(e.exit, 5);
        // ...until confidence is exhausted.
        e.train(2);
        e.train(2);
        assert_eq!(e.exit, 2);
    }

    #[test]
    fn tagged_table_hits_and_aliases() {
        let mut t = TaggedTable::new(16);
        assert_eq!(t.lookup(42), None);
        t.insert(42, 0xabc);
        assert_eq!(t.lookup(42), Some(0xabc));
        // Same index, different tag: miss, then replace.
        let alias = 42 + 16 * 7;
        assert_eq!(t.lookup(alias), None);
        t.insert(alias, 0xdef);
        assert_eq!(t.lookup(alias), Some(0xdef));
        assert_eq!(t.lookup(42), None);
    }

    #[test]
    #[should_panic]
    fn tagged_table_requires_power_of_two() {
        let _ = TaggedTable::new(12);
    }
}
