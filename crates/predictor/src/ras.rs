//! The logically centralized, physically distributed Return Address Stack.

use serde::{Deserialize, Serialize};

/// Rollback state for one speculative RAS operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RasCheckpoint {
    top: usize,
    /// Entry overwritten by a push `(slot, previous value)`, if any.
    overwritten: Option<(usize, u64)>,
}

/// A return-address stack sequentially partitioned across composed cores.
///
/// With N participating cores of `per_core` entries each, the logical
/// stack holds `N * per_core` entries: slots `0..per_core` live on the
/// first core, the next `per_core` on the second, and so on (§4.3). The
/// stack itself is a single state machine — the *distribution* matters
/// only for message timing, which the simulator derives from
/// [`ReturnAddressStack::top_core`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReturnAddressStack {
    entries: Vec<u64>,
    per_core: usize,
    /// Index of the next free slot (number of live entries, wrapping).
    top: usize,
}

impl ReturnAddressStack {
    /// Creates an empty stack distributed over `n_cores` cores with
    /// `per_core` entries each.
    #[must_use]
    pub fn new(n_cores: usize, per_core: usize) -> Self {
        ReturnAddressStack {
            entries: vec![0; n_cores * per_core],
            per_core,
            top: 0,
        }
    }

    /// Total capacity of the composed stack.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Number of live entries (capped at capacity by wraparound).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.top
    }

    /// The participating-core index (0-based within the composition) that
    /// holds the current top of stack. An empty stack reports core 0.
    #[must_use]
    pub fn top_core(&self) -> usize {
        if self.top == 0 {
            0
        } else {
            ((self.top - 1) % self.entries.len()) / self.per_core
        }
    }

    /// Pushes a predicted return address, returning a checkpoint.
    pub fn push(&mut self, addr: u64) -> RasCheckpoint {
        let slot = self.top % self.entries.len();
        let ckpt = RasCheckpoint {
            top: self.top,
            overwritten: Some((slot, self.entries[slot])),
        };
        self.entries[slot] = addr;
        self.top += 1;
        ckpt
    }

    /// Pops the predicted return address, returning it (or `None` when
    /// empty) and a checkpoint.
    pub fn pop(&mut self) -> (Option<u64>, RasCheckpoint) {
        let ckpt = RasCheckpoint {
            top: self.top,
            overwritten: None,
        };
        if self.top == 0 {
            return (None, ckpt);
        }
        self.top -= 1;
        let slot = self.top % self.entries.len();
        (Some(self.entries[slot]), ckpt)
    }

    /// A checkpoint representing "no RAS activity" at the current top.
    #[must_use]
    pub fn checkpoint(&self) -> RasCheckpoint {
        RasCheckpoint {
            top: self.top,
            overwritten: None,
        }
    }

    /// Restores the stack to the state captured by `ckpt` (misprediction
    /// recovery: the mispredicting owner sends the corrected top-of-stack
    /// to the core that will hold the new top).
    pub fn repair(&mut self, ckpt: RasCheckpoint) {
        self.top = ckpt.top;
        if let Some((slot, value)) = ckpt.overwritten {
            self.entries[slot] = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_lifo() {
        let mut ras = ReturnAddressStack::new(2, 16);
        ras.push(0x100);
        ras.push(0x200);
        ras.push(0x300);
        assert_eq!(ras.pop().0, Some(0x300));
        assert_eq!(ras.pop().0, Some(0x200));
        assert_eq!(ras.pop().0, Some(0x100));
        assert_eq!(ras.pop().0, None);
    }

    #[test]
    fn top_core_follows_sequential_partitioning() {
        let mut ras = ReturnAddressStack::new(2, 16);
        assert_eq!(ras.top_core(), 0);
        for i in 0..16 {
            ras.push(i);
        }
        assert_eq!(ras.top_core(), 0, "entry 15 lives on core 0");
        ras.push(99);
        assert_eq!(ras.top_core(), 1, "entry 16 lives on core 1");
        ras.pop();
        assert_eq!(ras.top_core(), 0);
    }

    #[test]
    fn composition_deepens_the_stack() {
        assert_eq!(ReturnAddressStack::new(1, 16).capacity(), 16);
        assert_eq!(ReturnAddressStack::new(32, 16).capacity(), 512);
    }

    #[test]
    fn wraparound_overwrites_oldest() {
        let mut ras = ReturnAddressStack::new(1, 4);
        for i in 0..5 {
            ras.push(i);
        }
        // Entry 0 was overwritten by 4; popping yields 4,3,2,1 then the
        // stale slot value for the wrapped entry.
        assert_eq!(ras.pop().0, Some(4));
        assert_eq!(ras.pop().0, Some(3));
    }

    #[test]
    fn repair_undoes_push_and_pop() {
        let mut ras = ReturnAddressStack::new(1, 8);
        ras.push(1);
        ras.push(2);
        let before_depth = ras.depth();
        let ckpt = ras.push(3);
        ras.repair(ckpt);
        assert_eq!(ras.depth(), before_depth);
        assert_eq!(ras.pop().0, Some(2));
        let (v, ckpt) = ras.pop();
        assert_eq!(v, Some(1));
        ras.repair(ckpt);
        assert_eq!(ras.pop().0, Some(1));
    }

    #[test]
    fn repair_restores_overwritten_wrapped_entry() {
        let mut ras = ReturnAddressStack::new(1, 2);
        ras.push(10);
        ras.push(20);
        let ckpt = ras.push(30); // overwrites slot 0 (value 10)
        ras.repair(ckpt);
        ras.pop();
        let (v, _) = ras.pop();
        assert_eq!(v, Some(10), "wrapped slot restored");
    }
}
