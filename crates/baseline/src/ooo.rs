//! The out-of-order timing model.

use clp_compiler::ir::{BbId, FuncId, OpKind, Terminator};
use clp_compiler::Program;
use clp_isa::{value, OpcodeClass};
use clp_mem::{CacheBank, CacheGeometry, MemoryImage};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Conventional-core parameters (a Core2-class machine).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineConfig {
    /// Instructions fetched/renamed per cycle.
    pub fetch_width: usize,
    /// Instruction-window (ROB) entries.
    pub window: usize,
    /// Integer ALUs.
    pub int_units: usize,
    /// Floating-point units.
    pub fp_units: usize,
    /// Cache ports (loads/stores issued per cycle).
    pub mem_ports: usize,
    /// L1 data cache size in bytes.
    pub l1_bytes: usize,
    /// L1 hit latency.
    pub l1_latency: u32,
    /// Unified L2 hit latency.
    pub l2_latency: u32,
    /// L2 size in bytes.
    pub l2_bytes: usize,
    /// Main-memory latency.
    pub dram_latency: u32,
    /// log2 of gshare table entries.
    pub gshare_bits: u32,
    /// Cycles from mispredicted-branch resolution to useful fetch.
    pub mispredict_penalty: u64,
    /// Fetch-group break on a correctly predicted taken branch (the
    /// front-end redirect bubble of conventional pipelines).
    pub taken_branch_bubble: u64,
    /// Dynamic-operation budget.
    pub max_ops: u64,
}

impl BaselineConfig {
    /// A Core2-Duo-class configuration.
    #[must_use]
    pub fn core2() -> Self {
        BaselineConfig {
            fetch_width: 4,
            window: 96,
            int_units: 3,
            fp_units: 1,
            mem_ports: 2,
            l1_bytes: 32 * 1024,
            l1_latency: 3,
            l2_latency: 14,
            l2_bytes: 2 * 1024 * 1024,
            dram_latency: 150,
            gshare_bits: 12,
            mispredict_penalty: 12,
            taken_branch_bubble: 1,
            max_ops: 200_000_000,
        }
    }
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self::core2()
    }
}

/// Counters from a baseline run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineStats {
    /// Dynamic operations retired.
    pub ops: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Conditional-branch mispredictions.
    pub mispredicts: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// L1 data-cache misses.
    pub l1_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
}

/// Result of a baseline run.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// Entry function's return value.
    pub ret: Option<u64>,
    /// Total cycles.
    pub cycles: u64,
    /// Final memory image.
    pub image: MemoryImage,
    /// Counters.
    pub stats: BaselineStats,
}

struct Gshare {
    table: Vec<u8>,
    history: u64,
    mask: u64,
}

impl Gshare {
    fn new(bits: u32) -> Self {
        Gshare {
            table: vec![1; 1 << bits],
            history: 0,
            mask: (1 << bits) - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc ^ self.history) & self.mask) as usize
    }

    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let i = self.index(pc);
        let predicted = self.table[i] >= 2;
        if taken {
            self.table[i] = (self.table[i] + 1).min(3);
        } else {
            self.table[i] = self.table[i].saturating_sub(1);
        }
        self.history = (self.history << 1) | u64::from(taken);
        predicted == taken
    }
}

struct Frame {
    func: FuncId,
    bb: BbId,
    regs: Vec<u64>,
    ready: Vec<u64>,
    ret_dst: Option<u32>,
    ret_bb: BbId,
}

/// Runs `program` on the conventional out-of-order model.
///
/// # Panics
///
/// Panics if the program exceeds the dynamic-operation budget or the
/// call-depth bound (a workload bug — the same programs terminate under
/// the reference interpreter).
#[must_use]
pub fn run_baseline(
    program: &Program,
    args: &[u64],
    init_mem: &[(u64, Vec<u64>)],
    cfg: &BaselineConfig,
) -> BaselineResult {
    let mut image = MemoryImage::new();
    for (addr, words) in init_mem {
        image.load_words(*addr, words);
    }
    let mut stats = BaselineStats::default();
    let mut l1 = CacheBank::new(CacheGeometry {
        bytes: cfg.l1_bytes,
        line_bytes: 64,
        ways: 4,
    });
    let mut l2 = CacheBank::new(CacheGeometry {
        bytes: cfg.l2_bytes,
        line_bytes: 64,
        ways: 8,
    });
    let mut bp = Gshare::new(cfg.gshare_bits);

    // Timing state.
    let mut fetch_cycle: u64 = 1;
    let mut fetched_this_cycle = 0usize;
    let mut rob: VecDeque<u64> = VecDeque::new(); // completion times, window-bounded
    let mut int_free = vec![0u64; cfg.int_units];
    let mut fp_free = vec![0u64; cfg.fp_units];
    let mut mem_free = vec![0u64; cfg.mem_ports];
    // Conservative memory ordering: last store completion per line.
    let mut last_store_done: std::collections::HashMap<u64, u64> = Default::default();
    let mut last_cycle: u64 = 1;

    let new_frame = |func: FuncId, argv: &[u64], ready_at: u64| -> Frame {
        let f = program.function(func);
        let mut regs = vec![0u64; f.n_vregs as usize];
        let mut ready = vec![0u64; f.n_vregs as usize];
        for (i, &a) in argv.iter().enumerate().take(f.n_params) {
            regs[f.params[i].0 as usize] = a;
            ready[f.params[i].0 as usize] = ready_at;
        }
        Frame {
            func,
            bb: f.entry,
            regs,
            ready,
            ret_dst: None,
            ret_bb: f.entry,
        }
    };

    let mut stack: Vec<Frame> = Vec::new();
    let mut frame = new_frame(program.entry, args, 0);
    let ret_value: Option<u64>;

    macro_rules! fetch_op {
        () => {{
            if fetched_this_cycle >= cfg.fetch_width {
                fetch_cycle += 1;
                fetched_this_cycle = 0;
            }
            fetched_this_cycle += 1;
            fetch_cycle
        }};
    }

    fn unit_issue(free: &mut [u64], earliest: u64) -> u64 {
        let (idx, &t) = free
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("units exist");
        let issue = earliest.max(t);
        free[idx] = issue + 1;
        issue
    }

    'outer: loop {
        let func = program.function(frame.func);
        let block = func.block(frame.bb);

        for op in &block.ops {
            stats.ops += 1;
            assert!(stats.ops < cfg.max_ops, "baseline exceeded op budget");
            let f = fetch_op!();
            // Window constraint: the oldest must have completed.
            if rob.len() >= cfg.window {
                let oldest = rob.pop_front().expect("nonempty");
                if oldest > fetch_cycle {
                    fetch_cycle = oldest;
                    fetched_this_cycle = 0;
                }
            }
            let fires = op
                .pred
                .iter()
                .all(|&(v, s)| (frame.regs[v.0 as usize] != 0) == s);
            let mut ready_at = f;
            for u in op.uses() {
                ready_at = ready_at.max(frame.ready[u.0 as usize]);
            }
            let done = if !fires {
                ready_at + 1
            } else {
                match &op.kind {
                    OpKind::Const { dst, value } => {
                        frame.regs[dst.0 as usize] = *value as u64;
                        frame.ready[dst.0 as usize] = f + 1;
                        f + 1
                    }
                    OpKind::ConstF { dst, value } => {
                        frame.regs[dst.0 as usize] = value.to_bits();
                        frame.ready[dst.0 as usize] = f + 1;
                        f + 1
                    }
                    OpKind::Un { dst, op: o, a } => {
                        let issue = unit_issue(
                            if o.class() == OpcodeClass::Float {
                                &mut fp_free
                            } else {
                                &mut int_free
                            },
                            ready_at,
                        );
                        let done = issue + u64::from(o.latency());
                        frame.regs[dst.0 as usize] =
                            value::eval(*o, 0, frame.regs[a.0 as usize], 0);
                        frame.ready[dst.0 as usize] = done;
                        done
                    }
                    OpKind::Bin { dst, op: o, a, b } => {
                        let issue = unit_issue(
                            if o.class() == OpcodeClass::Float {
                                &mut fp_free
                            } else {
                                &mut int_free
                            },
                            ready_at,
                        );
                        let done = issue + u64::from(o.latency());
                        frame.regs[dst.0 as usize] =
                            value::eval(*o, 0, frame.regs[a.0 as usize], frame.regs[b.0 as usize]);
                        frame.ready[dst.0 as usize] = done;
                        done
                    }
                    OpKind::Load {
                        dst,
                        addr,
                        offset,
                        size,
                    } => {
                        stats.loads += 1;
                        let ea = frame.regs[addr.0 as usize].wrapping_add(*offset as u64);
                        let line = ea & !63;
                        let dep = last_store_done.get(&line).copied().unwrap_or(0);
                        let issue = unit_issue(&mut mem_free, ready_at.max(dep));
                        let lat = cache_latency(&mut l1, &mut l2, &mut stats, cfg, ea, false);
                        let done = issue + u64::from(lat);
                        frame.regs[dst.0 as usize] = image.read(ea, size.bytes());
                        frame.ready[dst.0 as usize] = done;
                        done
                    }
                    OpKind::Store {
                        addr,
                        offset,
                        value: v,
                        size,
                    } => {
                        stats.stores += 1;
                        let ea = frame.regs[addr.0 as usize].wrapping_add(*offset as u64);
                        let issue = unit_issue(&mut mem_free, ready_at);
                        let lat = cache_latency(&mut l1, &mut l2, &mut stats, cfg, ea, true);
                        let done = issue + u64::from(lat);
                        image.write(ea, size.bytes(), frame.regs[v.0 as usize]);
                        last_store_done.insert(ea & !63, done);
                        done
                    }
                }
            };
            rob.push_back(done);
            last_cycle = last_cycle.max(done);
        }

        // Terminator.
        let f = fetch_op!();
        match &block.term {
            Terminator::Jump(b) => frame.bb = *b,
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                stats.branches += 1;
                let taken = frame.regs[cond.0 as usize] != 0;
                let resolve = frame.ready[cond.0 as usize].max(f) + 1;
                last_cycle = last_cycle.max(resolve);
                let pc = (frame.func.0 as u64) << 16 | frame.bb.0 as u64;
                if !bp.predict_and_update(pc, taken) {
                    stats.mispredicts += 1;
                    fetch_cycle = resolve + cfg.mispredict_penalty;
                    fetched_this_cycle = 0;
                } else if taken {
                    fetch_cycle += cfg.taken_branch_bubble;
                    fetched_this_cycle = 0;
                }
                frame.bb = if taken { *then_bb } else { *else_bb };
            }
            Terminator::Call {
                func: callee,
                args: call_args,
                dst,
                cont,
            } => {
                assert!(stack.len() < 4096, "call depth exceeded");
                let mut ready_at = f;
                let argv: Vec<u64> = call_args
                    .iter()
                    .map(|v| {
                        ready_at = ready_at.max(frame.ready[v.0 as usize]);
                        frame.regs[v.0 as usize]
                    })
                    .collect();
                fetch_cycle += cfg.taken_branch_bubble;
                fetched_this_cycle = 0;
                let mut callee_frame = new_frame(*callee, &argv, ready_at);
                callee_frame.ret_dst = dst.map(|d| d.0);
                callee_frame.ret_bb = *cont;
                stack.push(std::mem::replace(&mut frame, callee_frame));
            }
            Terminator::Ret(v) => {
                let rv = v.map(|v| frame.regs[v.0 as usize]);
                let rt = v.map_or(f, |v| frame.ready[v.0 as usize]);
                match stack.pop() {
                    Some(mut caller) => {
                        if let (Some(d), Some(val)) = (frame.ret_dst, rv) {
                            caller.regs[d as usize] = val;
                            caller.ready[d as usize] = rt.max(f);
                        }
                        caller.bb = frame.ret_bb;
                        frame = caller;
                    }
                    None => {
                        ret_value = rv;
                        last_cycle = last_cycle.max(rt);
                        break 'outer;
                    }
                }
            }
            Terminator::Halt => {
                ret_value = None;
                break 'outer;
            }
        }
    }

    BaselineResult {
        ret: ret_value,
        cycles: last_cycle.max(fetch_cycle),
        image,
        stats,
    }
}

fn cache_latency(
    l1: &mut CacheBank,
    l2: &mut CacheBank,
    stats: &mut BaselineStats,
    cfg: &BaselineConfig,
    addr: u64,
    write: bool,
) -> u32 {
    if l1.access(addr, write).is_hit() {
        cfg.l1_latency
    } else {
        stats.l1_misses += 1;
        if l2.access(addr, write).is_hit() {
            cfg.l1_latency + cfg.l2_latency
        } else {
            stats.l2_misses += 1;
            cfg.l1_latency + cfg.l2_latency + cfg.dram_latency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clp_compiler::{interpret, FunctionBuilder, ProgramBuilder};
    use clp_isa::Opcode;

    fn sum_program() -> Program {
        let mut f = FunctionBuilder::new("sum", 2);
        let base = f.param(0);
        let n = f.param(1);
        let i = f.c(0);
        let acc = f.c(0);
        let (h, b, x) = (f.new_block(), f.new_block(), f.new_block());
        f.jump(h);
        f.switch_to(h);
        let c = f.bin(Opcode::Tlt, i, n);
        f.branch(c, b, x);
        f.switch_to(b);
        let three = f.c(3);
        let off = f.bin(Opcode::Shl, i, three);
        let a = f.bin(Opcode::Add, base, off);
        let v = f.load(a, 0);
        f.bin_into(acc, Opcode::Add, acc, v);
        let one = f.c(1);
        f.bin_into(i, Opcode::Add, i, one);
        f.jump(h);
        f.switch_to(x);
        f.ret(Some(acc));
        let mut pb = ProgramBuilder::new();
        let id = pb.add_function(f.finish());
        pb.finish(id)
    }

    #[test]
    fn matches_interpreter_functionally() {
        let p = sum_program();
        let data: Vec<u64> = (1..=30).collect();
        let init = vec![(0x1000u64, data)];
        let mut gimage = MemoryImage::new();
        gimage.load_words(0x1000, &(1..=30).collect::<Vec<u64>>());
        let g = interpret(&p, &[0x1000, 30], &mut gimage, 1_000_000).unwrap();
        let r = run_baseline(&p, &[0x1000, 30], &init, &BaselineConfig::core2());
        assert_eq!(r.ret, g.ret);
        assert!(r.cycles > 30, "cycles {}", r.cycles);
        assert_eq!(r.stats.loads, 30);
        assert!(r.stats.branches >= 31);
    }

    #[test]
    fn wider_machine_is_faster() {
        let p = sum_program();
        let data: Vec<u64> = (1..=200).collect();
        let init = vec![(0x1000u64, data)];
        let narrow = BaselineConfig {
            fetch_width: 1,
            int_units: 1,
            mem_ports: 1,
            ..BaselineConfig::core2()
        };
        let r1 = run_baseline(&p, &[0x1000, 200], &init, &narrow);
        let r4 = run_baseline(&p, &[0x1000, 200], &init, &BaselineConfig::core2());
        assert!(
            r4.cycles < r1.cycles,
            "4-wide {} vs 1-wide {}",
            r4.cycles,
            r1.cycles
        );
    }

    #[test]
    fn branch_predictor_learns_loop() {
        let p = sum_program();
        let data: Vec<u64> = (1..=100).collect();
        let init = vec![(0x1000u64, data)];
        let r = run_baseline(&p, &[0x1000, 100], &init, &BaselineConfig::core2());
        // The back edge is near-perfectly predicted after warmup.
        assert!(
            r.stats.mispredicts < r.stats.branches / 5,
            "{} mispredicts / {} branches",
            r.stats.mispredicts,
            r.stats.branches
        );
    }

    #[test]
    fn recursion_works() {
        let mut pb = ProgramBuilder::new();
        let fact = pb.declare();
        let mut f = FunctionBuilder::new("fact", 1);
        let n = f.param(0);
        let one = f.c(1);
        let base = f.bin(Opcode::Tle, n, one);
        let (b, r, cont) = (f.new_block(), f.new_block(), f.new_block());
        f.branch(base, b, r);
        f.switch_to(b);
        f.ret(Some(one));
        f.switch_to(r);
        let nm1 = f.bin(Opcode::Sub, n, one);
        let sub = f.vreg();
        f.call(fact, &[nm1], Some(sub), cont);
        f.switch_to(cont);
        let out = f.bin(Opcode::Mul, n, sub);
        f.ret(Some(out));
        pb.set_function(fact, f.finish());
        let p = pb.finish(fact);
        let r = run_baseline(&p, &[7], &[], &BaselineConfig::core2());
        assert_eq!(r.ret, Some(5040));
    }

    #[test]
    fn caches_affect_timing() {
        // A pointer chase over a large region should be much slower than
        // a small one per access.
        let mut f = FunctionBuilder::new("chase", 2);
        let head = f.param(0);
        let n = f.param(1);
        let cur = f.vreg();
        f.assign(cur, head);
        let i = f.c(0);
        let (h, b, x) = (f.new_block(), f.new_block(), f.new_block());
        f.jump(h);
        f.switch_to(h);
        let c = f.bin(Opcode::Tlt, i, n);
        f.branch(c, b, x);
        f.switch_to(b);
        let nx = f.load(cur, 0);
        f.assign(cur, nx);
        let one = f.c(1);
        f.bin_into(i, Opcode::Add, i, one);
        f.jump(h);
        f.switch_to(x);
        f.ret(Some(cur));
        let mut pb = ProgramBuilder::new();
        let id = pb.add_function(f.finish());
        let p = pb.finish(id);

        // Small ring (fits L1) vs large stride ring (misses).
        let small: Vec<u64> = (0..8).map(|k| 0x1000 + ((k + 1) % 8) * 8).collect();
        let rs = run_baseline(
            &p,
            &[0x1000, 400],
            &[(0x1000, small)],
            &BaselineConfig::core2(),
        );
        let big_n = 4096u64;
        let big: Vec<u64> = (0..big_n)
            .map(|k| 0x1000 + (((k + 1) % big_n) * 1024) % (big_n * 8))
            .collect();
        // Build stride-1024 ring properly: node at k*128 words.
        let mut big2 = vec![0u64; (big_n as usize) * 128];
        for k in 0..big_n {
            let next = (k + 1) % big_n;
            big2[(k as usize) * 128] = 0x1000 + next * 1024;
        }
        let rb = run_baseline(
            &p,
            &[0x1000, 400],
            &[(0x1000, big2)],
            &BaselineConfig::core2(),
        );
        let _ = big;
        assert!(
            rb.cycles > rs.cycles * 3,
            "missy chase {} vs hitty {}",
            rb.cycles,
            rs.cycles
        );
        assert!(rb.stats.l1_misses > 300);
    }
}
