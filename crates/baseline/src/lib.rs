//! # clp-baseline — a conventional out-of-order superscalar reference
//!
//! The paper's Figure 5 calibrates TRIPS against a measured Intel Core2
//! Duo. That hardware (and its compiler) cannot be reproduced here, so
//! this crate provides the closest synthetic equivalent: a conventional
//! 4-wide out-of-order core with a gshare branch predictor, a return
//! address stack, a 96-entry window, and a classic two-level cache
//! hierarchy, executing the *same mini-IR programs* as the EDGE stack.
//!
//! Timing uses the standard dataflow approximation for OoO cores: each
//! dynamic operation issues at the maximum of its fetch cycle, operand
//! ready times, and functional-unit availability; the instruction window
//! and fetch width bound parallelism; branch mispredictions stall fetch
//! until resolution plus a redirect penalty. This model captures exactly
//! the effects the comparison needs (ILP extraction limits, branch and
//! memory sensitivity) without pretending to be a validated Core2 model —
//! the figure's claim is about *relative shape* (see DESIGN.md).

#![warn(missing_docs)]

mod ooo;

pub use ooo::{run_baseline, BaselineConfig, BaselineResult, BaselineStats};
