//! A generic set-associative cache bank (state + replacement only; data
//! lives in the [`MemoryImage`](crate::MemoryImage)).

use serde::{Deserialize, Serialize};

/// Geometry of one cache bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheGeometry {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into a power-of-two number
    /// of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        let sets = self.bytes / self.line_bytes / self.ways;
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        sets
    }
}

/// Result of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessResult {
    /// The line was present.
    Hit,
    /// The line was absent; it has been installed. If a dirty line was
    /// evicted, its line address is reported for write-back.
    Miss {
        /// Dirty victim line address, if any.
        writeback: Option<u64>,
    },
}

impl AccessResult {
    /// True for [`AccessResult::Hit`].
    #[must_use]
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessResult::Hit)
    }
}

#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// One set-associative, LRU, write-back cache bank.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CacheBank {
    geom: CacheGeometry,
    lines: Vec<Line>,
    tick: u64,
    set_mask: u64,
    line_shift: u32,
}

impl CacheBank {
    /// Creates an empty bank.
    #[must_use]
    pub fn new(geom: CacheGeometry) -> Self {
        let sets = geom.sets();
        CacheBank {
            lines: vec![Line::default(); sets * geom.ways],
            tick: 0,
            set_mask: (sets - 1) as u64,
            line_shift: geom.line_bytes.trailing_zeros(),
            geom,
        }
    }

    /// The bank's geometry.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    fn set_of(&self, addr: u64) -> usize {
        (((addr >> self.line_shift) & self.set_mask) as usize) * self.geom.ways
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// The line-aligned address containing `addr`.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !((self.geom.line_bytes as u64) - 1)
    }

    /// Accesses `addr`, installing the line on a miss. `write` marks the
    /// line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessResult {
        self.tick += 1;
        let base = self.set_of(addr);
        let tag = self.tag_of(addr);
        let set = &mut self.lines[base..base + self.geom.ways];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.tick;
            line.dirty |= write;
            return AccessResult::Hit;
        }
        // Miss: choose the LRU way (preferring invalid lines).
        let victim = (0..set.len())
            .min_by_key(|&i| (set[i].valid, set[i].lru))
            .expect("nonzero associativity");
        let v = &mut set[victim];
        let writeback = (v.valid && v.dirty).then(|| v.tag << self.line_shift);
        *v = Line {
            tag,
            valid: true,
            dirty: write,
            lru: self.tick,
        };
        AccessResult::Miss { writeback }
    }

    /// True if the line containing `addr` is present.
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let base = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.lines[base..base + self.geom.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates the line containing `addr` (directory-initiated).
    /// Returns `true` if a dirty copy was dropped (write-back needed).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let base = self.set_of(addr);
        let tag = self.tag_of(addr);
        for l in &mut self.lines[base..base + self.geom.ways] {
            if l.valid && l.tag == tag {
                let was_dirty = l.dirty;
                l.valid = false;
                l.dirty = false;
                return was_dirty;
            }
        }
        false
    }

    /// Invalidates every line (used only by tests and resets; composition
    /// changes deliberately do *not* flush, per §4.7).
    pub fn clear(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
    }

    /// Drains the whole bank for hard-fault state evacuation: every valid
    /// line is invalidated and reported as `(line_addr, was_dirty)` so
    /// the caller can write dirty lines back and notify the directory.
    /// The order is deterministic (set-major, way-minor).
    pub fn evacuate(&mut self) -> Vec<(u64, bool)> {
        let mut drained = Vec::new();
        for l in &mut self.lines {
            if l.valid {
                drained.push((l.tag << self.line_shift, l.dirty));
                *l = Line::default();
            }
        }
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheBank {
        CacheBank::new(CacheGeometry {
            bytes: 1024,
            line_bytes: 64,
            ways: 2,
        })
    }

    #[test]
    fn geometry_sets() {
        let g = CacheGeometry {
            bytes: 8192,
            line_bytes: 64,
            ways: 2,
        };
        assert_eq!(g.sets(), 64);
    }

    #[test]
    fn hit_after_miss() {
        let mut c = small();
        assert!(matches!(c.access(0x40, false), AccessResult::Miss { .. }));
        assert!(c.access(0x40, false).is_hit());
        assert!(c.access(0x7f, false).is_hit(), "same line");
        assert!(matches!(c.access(0x80, false), AccessResult::Miss { .. }));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small(); // 8 sets, 2 ways
        let set_stride = 64 * 8;
        let a = 0u64;
        let b = a + set_stride as u64;
        let d = b + set_stride as u64;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is MRU
        c.access(d, false); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        let set_stride = 64 * 8u64;
        c.access(0, true); // dirty
        c.access(set_stride, false);
        let r = c.access(2 * set_stride, false); // evicts line 0
        assert_eq!(r, AccessResult::Miss { writeback: Some(0) });
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = small();
        c.access(0x100, true);
        assert!(c.invalidate(0x100));
        assert!(!c.probe(0x100));
        assert!(!c.invalidate(0x100), "already gone");
        c.access(0x100, false);
        assert!(!c.invalidate(0x100), "clean drop");
    }

    #[test]
    fn evacuate_drains_and_reports_dirtiness() {
        let mut c = small();
        c.access(0x000, true);
        c.access(0x040, false);
        c.access(0x200, true);
        let mut drained = c.evacuate();
        drained.sort_unstable();
        assert_eq!(drained, vec![(0x000, true), (0x040, false), (0x200, true)]);
        assert!(!c.probe(0x000) && !c.probe(0x040) && !c.probe(0x200));
        assert!(c.evacuate().is_empty(), "second drain finds nothing");
    }

    #[test]
    fn line_addr_masks_offset() {
        let c = small();
        assert_eq!(c.line_addr(0x7f), 0x40);
        assert_eq!(c.line_addr(0x40), 0x40);
    }
}
