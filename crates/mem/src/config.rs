//! Memory-hierarchy sizing parameters.

use serde::{Deserialize, Serialize};

/// Memory system parameters (Table 1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemConfig {
    /// Per-core L1 D-cache capacity in bytes (8 KB).
    pub l1d_bytes: usize,
    /// L1 D-cache associativity (2-way).
    pub l1d_ways: usize,
    /// L1 D-cache hit latency in cycles (2).
    pub l1d_hit_latency: u32,
    /// Cache line size in bytes (64).
    pub line_bytes: usize,
    /// Per-core L1 I-cache capacity in bytes (8 KB).
    pub l1i_bytes: usize,
    /// L1 I-cache hit latency in cycles (1).
    pub l1i_hit_latency: u32,
    /// LSQ entries per bank (44).
    pub lsq_entries: usize,
    /// Total shared L2 capacity in bytes (4 MB).
    pub l2_bytes: usize,
    /// Number of S-NUCA L2 banks (32).
    pub l2_banks: usize,
    /// L2 associativity (8-way).
    pub l2_ways: usize,
    /// Minimum (closest-bank) L2 hit latency in cycles (5).
    pub l2_min_latency: u32,
    /// Maximum (farthest-bank) L2 hit latency in cycles (27).
    pub l2_max_latency: u32,
    /// Unloaded main-memory latency in cycles (150).
    pub dram_latency: u32,
    /// Extra latency for a directory-initiated forward/invalidate of a
    /// line held by a remote L1.
    pub coherence_penalty: u32,
}

impl MemConfig {
    /// The TFlex/TRIPS parameters from Table 1.
    #[must_use]
    pub fn tflex() -> Self {
        MemConfig {
            l1d_bytes: 8 * 1024,
            l1d_ways: 2,
            l1d_hit_latency: 2,
            line_bytes: 64,
            l1i_bytes: 8 * 1024,
            l1i_hit_latency: 1,
            lsq_entries: 44,
            l2_bytes: 4 * 1024 * 1024,
            l2_banks: 32,
            l2_ways: 8,
            l2_min_latency: 5,
            l2_max_latency: 27,
            dram_latency: 150,
            coherence_penalty: 12,
        }
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        Self::tflex()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_values() {
        let c = MemConfig::tflex();
        assert_eq!(c.l1d_bytes, 8192);
        assert_eq!(c.l1d_ways, 2);
        assert_eq!(c.l1d_hit_latency, 2);
        assert_eq!(c.lsq_entries, 44);
        assert_eq!(c.l2_bytes, 4 << 20);
        assert_eq!(c.l2_banks, 32);
        assert_eq!(c.l2_min_latency, 5);
        assert_eq!(c.l2_max_latency, 27);
        assert_eq!(c.dram_latency, 150);
    }
}
