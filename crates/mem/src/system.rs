//! The chip-level memory system facade driven by the simulator.

use crate::cache::{AccessResult, CacheBank, CacheGeometry};
use crate::config::MemConfig;
use crate::image::MemoryImage;
use crate::l2::NucaL2;
use crate::lsq::{LsqBank, LsqInsert};
use crate::stats::MemStats;
use clp_isa::BLOCK_FRAME_BYTES;
use clp_obs::{CacheLevel, TraceEvent, Tracer};

/// The participating-core index whose L1 D-cache/LSQ bank serves `addr`
/// in an `n_cores` composition.
///
/// Per §4.5, the bank is selected by XORing high and low portions of the
/// address (at line granularity) modulo the number of participating
/// cores, so all bytes of one line always map to one bank.
///
/// The reduction is a true modulo (identical to the old power-of-two
/// mask when `n_cores` is a power of two), so the hash stays defined for
/// the non-power-of-two survivor sets left behind by hard-fault
/// recomposition (a 16-core processor degrading to 15, etc.).
#[must_use]
pub fn dbank_for(addr: u64, n_cores: usize) -> usize {
    debug_assert!(n_cores > 0);
    let line = addr >> 6;
    ((line ^ (line >> 9)) as usize) % n_cores
}

/// How an accepted load was served, reported alongside its latency so
/// the profiler can classify critical-path loads without re-deriving the
/// cache outcome from timing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LoadServe {
    /// Value forwarded from an older buffered store in the LSQ bank.
    Forward,
    /// Served by the L1 D-cache.
    #[default]
    L1,
    /// Missed the L1 (served by the L2 or DRAM).
    Miss,
}

/// Result of issuing a load to the memory system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadResponse {
    /// The load was accepted: its value and total access latency.
    Ok {
        /// The loaded value (store-forwarded where applicable).
        value: u64,
        /// Cycles until the value is available at the bank.
        latency: u32,
        /// Where the value came from.
        served: LoadServe,
    },
    /// The LSQ bank was full; retry after a back-off.
    Nack,
}

/// Result of issuing a store to the memory system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreResponse {
    /// The store was buffered. A detected ordering violation reports the
    /// global sequence number of the youngest-offending load.
    Ok {
        /// Memory-order sequence of a violating younger load, if any.
        violation: Option<u64>,
    },
    /// The LSQ bank was full; retry after a back-off.
    Nack,
}

/// What [`MemorySystem::evacuate_core`] moved off a dead core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvacuationReport {
    /// Dirty L1D lines written back through the L2.
    pub dirty_lines: u64,
    /// Bytes those dirty lines represent.
    pub bytes: u64,
    /// Modeled cycles to drain the state (fixed overhead + per-line
    /// victim-path cost).
    pub latency: u64,
}

/// The full chip memory system: per-core L1 D/I banks and LSQ banks, the
/// shared S-NUCA L2 with its directory, DRAM, and the architectural
/// [`MemoryImage`].
///
/// Banks are indexed by *global* core ID (0..32); composed processors map
/// their participant-relative bank hashes onto their member cores.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    cfg: MemConfig,
    /// The architectural memory contents.
    pub image: MemoryImage,
    l1d: Vec<CacheBank>,
    l1i: Vec<CacheBank>,
    lsq: Vec<LsqBank>,
    l2: NucaL2,
    stats: MemStats,
    tracer: Tracer,
    /// Current machine cycle, advanced by the simulator for event stamps.
    cycle: u64,
}

impl MemorySystem {
    /// Creates a memory system for a chip with `n_cores` cores.
    #[must_use]
    pub fn new(cfg: MemConfig, n_cores: usize) -> Self {
        let dgeom = CacheGeometry {
            bytes: cfg.l1d_bytes,
            line_bytes: cfg.line_bytes,
            ways: cfg.l1d_ways,
        };
        let igeom = CacheGeometry {
            bytes: cfg.l1i_bytes,
            line_bytes: cfg.line_bytes,
            ways: 1,
        };
        MemorySystem {
            image: MemoryImage::new(),
            l1d: (0..n_cores).map(|_| CacheBank::new(dgeom)).collect(),
            l1i: (0..n_cores).map(|_| CacheBank::new(igeom)).collect(),
            lsq: (0..n_cores)
                .map(|_| LsqBank::new(cfg.lsq_entries))
                .collect(),
            l2: NucaL2::new(cfg),
            stats: MemStats::default(),
            tracer: Tracer::off(),
            cycle: 0,
            cfg,
        }
    }

    /// Attaches a tracer for memory-system events.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Advances the cycle stamp used on emitted trace events (called by
    /// the simulator once per machine cycle).
    #[inline]
    pub fn set_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Accumulated statistics (including L2/DRAM counters).
    #[must_use]
    pub fn stats(&self) -> MemStats {
        let mut s = self.stats;
        s.l2_hits = self.l2.hits;
        s.l2_misses = self.l2.misses;
        s.dram_accesses = self.l2.dram_accesses;
        s
    }

    /// Occupancy of `core`'s LSQ bank.
    #[must_use]
    pub fn lsq_occupancy(&self, core: usize) -> usize {
        self.lsq[core].len()
    }

    /// The youngest memory-order sequence in `core`'s LSQ bank (used by
    /// the NACK protocol's age-based eviction).
    #[must_use]
    pub fn lsq_youngest(&self, core: usize) -> Option<u64> {
        self.lsq[core].youngest_seq()
    }

    fn l1d_access(&mut self, core: usize, addr: u64, write: bool) -> u32 {
        let line = self.l1d[core].line_addr(addr);
        match self.l1d[core].access(addr, write) {
            AccessResult::Hit => {
                self.stats.l1d_hits += 1;
                self.cfg.l1d_hit_latency
            }
            AccessResult::Miss { writeback } => {
                self.stats.l1d_misses += 1;
                self.tracer.emit(self.cycle, || TraceEvent::CacheMiss {
                    level: CacheLevel::L1D,
                    bank: core,
                    addr: line,
                    writeback: writeback.is_some(),
                });
                if let Some(victim) = writeback {
                    self.stats.l1_writebacks += 1;
                    self.l2.writeback(victim);
                    self.l2.evict_notify(core, victim);
                }
                let resp = self.l2.access(core, line, write);
                for other in resp.actions.invalidate {
                    if other < self.l1d.len() && other != core {
                        self.stats.invalidations += 1;
                        if self.l1d[other].invalidate(line) {
                            self.stats.l1_writebacks += 1;
                        }
                    }
                }
                if resp.actions.forward_from.is_some() {
                    self.stats.dirty_forwards += 1;
                }
                self.cfg.l1d_hit_latency + resp.latency
            }
        }
    }

    /// Records a NACK forced by the fault-injection layer: the request
    /// never reached the LSQ, but the refusal should still show up in
    /// traces and stats next to organic NACKs.
    pub fn note_injected_nack(&mut self, core: usize, addr: u64) {
        self.stats.injected_nacks += 1;
        self.tracer
            .emit(self.cycle, || TraceEvent::LsqNack { bank: core, addr });
    }

    /// Records a DRAM latency spike (`extra` cycles added to a load's
    /// reply) injected by the fault layer.
    pub fn note_injected_dram_spike(&mut self, _core: usize, extra: u64) {
        self.stats.injected_dram_spikes += 1;
        self.stats.injected_dram_extra_cycles += extra;
    }

    /// Issues a load at `core`'s bank with global memory order `seq`.
    pub fn execute_load(&mut self, core: usize, seq: u64, addr: u64, size: u8) -> LoadResponse {
        self.stats.lsq_searches += 1;
        let before = self.image.read(addr, size);
        match self.lsq[core].execute_load(seq, addr, size, &self.image) {
            LsqInsert::Nack => {
                self.stats.lsq_nacks += 1;
                self.tracer
                    .emit(self.cycle, || TraceEvent::LsqNack { bank: core, addr });
                LoadResponse::Nack
            }
            LsqInsert::Ok(value) => {
                self.stats.lsq_inserts += 1;
                let forwarded = value != before;
                if forwarded {
                    self.stats.forwards += 1;
                }
                let latency = self.l1d_access(core, addr, false);
                let served = if forwarded {
                    LoadServe::Forward
                } else if latency > self.cfg.l1d_hit_latency {
                    LoadServe::Miss
                } else {
                    LoadServe::L1
                };
                LoadResponse::Ok {
                    value,
                    latency,
                    served,
                }
            }
        }
    }

    /// Buffers a store at `core`'s bank with global memory order `seq`.
    pub fn execute_store(
        &mut self,
        core: usize,
        seq: u64,
        addr: u64,
        size: u8,
        value: u64,
    ) -> StoreResponse {
        self.stats.lsq_searches += 1;
        match self.lsq[core].execute_store(seq, addr, size, value) {
            LsqInsert::Nack => {
                self.stats.lsq_nacks += 1;
                self.tracer
                    .emit(self.cycle, || TraceEvent::LsqNack { bank: core, addr });
                StoreResponse::Nack
            }
            LsqInsert::Ok(violation) => {
                self.stats.lsq_inserts += 1;
                if violation.is_some() {
                    self.stats.violations += 1;
                    self.tracer
                        .emit(self.cycle, || TraceEvent::MemViolation { bank: core, addr });
                }
                StoreResponse::Ok { violation }
            }
        }
    }

    /// Commits all buffered stores with `lo_seq <= seq < hi_seq` on the
    /// given cores: values reach the architectural image and the D-cache
    /// banks are updated (write-allocate). Returns the worst per-bank
    /// commit latency, modelling banks draining their stores in parallel
    /// at one store per cycle plus miss penalties.
    pub fn commit_stores(&mut self, cores: &[usize], lo_seq: u64, hi_seq: u64) -> u32 {
        cores
            .iter()
            .map(|&c| self.commit_stores_core(c, lo_seq, hi_seq))
            .max()
            .unwrap_or(0)
    }

    /// Commits one core's buffered stores in `lo_seq..hi_seq`, returning
    /// that bank's drain latency (one store per cycle plus miss
    /// penalties).
    pub fn commit_stores_core(&mut self, core: usize, lo_seq: u64, hi_seq: u64) -> u32 {
        let mut image = std::mem::take(&mut self.image);
        let committed = self.lsq[core].commit_range(lo_seq, hi_seq, &mut image);
        self.image = image;
        let mut bank_latency = 0;
        for (addr, _size) in committed {
            self.stats.stores_committed += 1;
            bank_latency += 1 + self
                .l1d_access(core, addr, true)
                .saturating_sub(self.cfg.l1d_hit_latency);
        }
        bank_latency
    }

    /// Squashes all LSQ entries with `seq >= from_seq` on the given cores
    /// (pipeline flush).
    pub fn flush_from(&mut self, cores: &[usize], from_seq: u64) {
        for &core in cores {
            self.lsq[core].flush_from(from_seq);
        }
    }

    /// Evacuates all cache and LSQ state from `core` after a hard fault:
    /// dirty L1D lines are written back through the S-NUCA L2 (the
    /// directory is notified so the dead core no longer appears as a
    /// sharer), clean lines and the L1I bank are dropped, and every
    /// speculative LSQ entry is squashed (committed stores are already
    /// architectural — only unreached speculation is lost).
    ///
    /// Returns what moved and the modeled migration latency: a fixed
    /// recomposition overhead plus two cycles per dirty line drained
    /// through the victim path.
    pub fn evacuate_core(&mut self, core: usize) -> EvacuationReport {
        let mut dirty_lines = 0u64;
        for (line, dirty) in self.l1d[core].evacuate() {
            if dirty {
                dirty_lines += 1;
                self.stats.l1_writebacks += 1;
                self.l2.writeback(line);
            }
            self.l2.evict_notify(core, line);
        }
        self.l1i[core].evacuate();
        self.lsq[core].flush_from(0);
        EvacuationReport {
            dirty_lines,
            bytes: dirty_lines * self.cfg.line_bytes as u64,
            latency: 8 + 2 * dirty_lines,
        }
    }

    /// Fetches `core`'s slice of the block at `block_addr` from its
    /// I-cache (participant index `part` of `n_cores`), returning the
    /// fetch latency.
    pub fn fetch_block_slice(
        &mut self,
        core: usize,
        block_addr: u64,
        part: usize,
        n_cores: usize,
    ) -> u32 {
        let slice_bytes = (BLOCK_FRAME_BYTES as usize / n_cores).max(1);
        let start = block_addr + (part * slice_bytes) as u64;
        let lines = slice_bytes.div_ceil(self.cfg.line_bytes).max(1);
        let mut worst_miss = 0u32;
        for l in 0..lines {
            let addr = start + (l * self.cfg.line_bytes) as u64;
            match self.l1i[core].access(addr, false) {
                AccessResult::Hit => {
                    self.stats.l1i_hits += 1;
                }
                AccessResult::Miss { .. } => {
                    self.stats.l1i_misses += 1;
                    let line = self.l1i[core].line_addr(addr);
                    self.tracer.emit(self.cycle, || TraceEvent::CacheMiss {
                        level: CacheLevel::L1I,
                        bank: core,
                        addr: line,
                        writeback: false,
                    });
                    let resp = self.l2.access(core, line, false);
                    worst_miss = worst_miss.max(resp.latency);
                }
            }
        }
        self.cfg.l1i_hit_latency + worst_miss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> MemorySystem {
        MemorySystem::new(MemConfig::tflex(), 32)
    }

    #[test]
    fn dbank_keeps_lines_together() {
        for addr in (0..4096u64).step_by(8) {
            let line_base = addr & !63;
            assert_eq!(dbank_for(addr, 8), dbank_for(line_base, 8));
        }
    }

    #[test]
    fn dbank_spreads_lines() {
        let mut counts = [0usize; 4];
        for line in 0..64u64 {
            counts[dbank_for(line * 64, 4)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn load_miss_then_hit_latency() {
        let mut m = system();
        m.image.write_u64(0x1000, 5);
        let r1 = m.execute_load(0, 0, 0x1000, 8);
        let LoadResponse::Ok {
            value,
            latency,
            served,
        } = r1
        else {
            panic!("nack");
        };
        assert_eq!(value, 5);
        assert!(latency > 150, "cold miss goes to DRAM: {latency}");
        assert_eq!(served, LoadServe::Miss);
        let r2 = m.execute_load(0, 1, 0x1008, 8);
        let LoadResponse::Ok {
            latency, served, ..
        } = r2
        else {
            panic!("nack");
        };
        assert_eq!(latency, 2, "same line now hits");
        assert_eq!(served, LoadServe::L1);
    }

    #[test]
    fn speculative_store_invisible_until_commit() {
        let mut m = system();
        let r = m.execute_store(0, 32, 0x40, 8, 99);
        assert!(matches!(r, StoreResponse::Ok { violation: None }));
        assert_eq!(m.image.read_u64(0x40), 0, "not yet architectural");
        // A younger load through the same bank sees the forwarded value.
        let LoadResponse::Ok { value, served, .. } = m.execute_load(0, 40, 0x40, 8) else {
            panic!("nack");
        };
        assert_eq!(value, 99);
        assert_eq!(served, LoadServe::Forward);
        m.commit_stores(&[0], 32, 64);
        assert_eq!(m.image.read_u64(0x40), 99);
        assert_eq!(m.stats().stores_committed, 1);
    }

    #[test]
    fn flush_discards_speculative_store() {
        let mut m = system();
        m.execute_store(0, 64, 0x40, 8, 7);
        m.flush_from(&[0], 64);
        m.commit_stores(&[0], 0, 1000);
        assert_eq!(m.image.read_u64(0x40), 0);
    }

    #[test]
    fn violation_reported_through_system() {
        let mut m = system();
        m.execute_load(0, 100, 0x80, 8);
        let r = m.execute_store(0, 50, 0x80, 8, 1);
        assert_eq!(
            r,
            StoreResponse::Ok {
                violation: Some(100)
            }
        );
        assert_eq!(m.stats().violations, 1);
    }

    #[test]
    fn nacks_counted() {
        let mut m = MemorySystem::new(
            MemConfig {
                lsq_entries: 1,
                ..MemConfig::tflex()
            },
            2,
        );
        m.execute_load(0, 0, 0, 8);
        let r = m.execute_load(0, 1, 64, 8);
        assert_eq!(r, LoadResponse::Nack);
        assert_eq!(m.stats().lsq_nacks, 1);
    }

    #[test]
    fn icache_fetch_hits_after_first() {
        let mut m = system();
        let cold = m.fetch_block_slice(3, 0x4000, 3, 8);
        assert!(cold > 5);
        let warm = m.fetch_block_slice(3, 0x4000, 3, 8);
        assert_eq!(warm, 1, "I-cache hit is 1 cycle");
        let s = m.stats();
        assert_eq!(s.l1i_misses, 1);
        assert_eq!(s.l1i_hits, 1);
    }

    #[test]
    fn commit_latency_reflects_store_count() {
        let mut m = system();
        // Warm the lines so commit is hit-only.
        for i in 0..4 {
            m.execute_load(0, i, 0x200 + i * 64, 8);
        }
        m.commit_stores(&[0], 0, 1000);
        for i in 0..4u64 {
            m.execute_store(0, 320 + i, 0x200 + i * 64, 8, i);
        }
        let lat = m.commit_stores(&[0], 320, 352);
        assert_eq!(lat, 4, "four stores drain at one per cycle");
    }

    #[test]
    fn evacuate_core_writes_back_dirty_state() {
        let mut m = system();
        // A committed store leaves a dirty L1D line on core 0.
        m.execute_store(0, 0, 0x40, 8, 123);
        m.commit_stores(&[0], 0, 32);
        assert_eq!(m.image.read_u64(0x40), 123);
        // A speculative (uncommitted) store must die with the core.
        m.execute_store(0, 64, 0x80, 8, 77);
        let wb_before = m.stats().l1_writebacks;
        let report = m.evacuate_core(0);
        assert!(report.dirty_lines >= 1, "{report:?}");
        assert_eq!(report.bytes, report.dirty_lines * 64);
        assert!(report.latency >= 8 + 2 * report.dirty_lines);
        assert_eq!(
            m.stats().l1_writebacks,
            wb_before + report.dirty_lines,
            "each dirty line drains through the victim path"
        );
        assert_eq!(m.lsq_occupancy(0), 0, "speculative entries squashed");
        // Architectural state survives the evacuation; the dead value
        // never became visible.
        m.commit_stores(&[0], 0, 1000);
        assert_eq!(m.image.read_u64(0x40), 123);
        assert_eq!(m.image.read_u64(0x80), 0);
        // A second evacuation finds nothing left to move.
        let again = m.evacuate_core(0);
        assert_eq!(again.dirty_lines, 0);
    }

    #[test]
    fn cross_bank_isolation() {
        // Stores in one core's bank do not forward to another bank;
        // the hash guarantees same-line ops share a bank, so use two
        // different lines mapping to different banks.
        let mut m = system();
        let a = 0x40u64;
        let mut b = 0x80u64;
        while dbank_for(b, 4) == dbank_for(a, 4) {
            b += 64;
        }
        m.execute_store(dbank_for(a, 4), 0, a, 8, 11);
        let LoadResponse::Ok { value, .. } = m.execute_load(dbank_for(b, 4), 1, b, 8) else {
            panic!("nack")
        };
        assert_eq!(value, 0);
    }
}
