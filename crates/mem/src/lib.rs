//! # clp-mem — the composable memory system
//!
//! TFlex address-partitions every memory structure so that capacity and
//! bandwidth scale with composition size (§4.5):
//!
//! * **L1 data caches** — one 8 KB bank per core. A composed processor
//!   interleaves cache lines across its participating banks with the XOR
//!   hash [`dbank_for`]; every additional core adds a port and 8 KB.
//! * **Load/store queues** — one 44-entry bank per core, interleaved with
//!   the same hash. A full bank NACKs the request and the core retries
//!   (the low-overhead overflow handling of Sethumadhavan et al. cited in
//!   §4.5). The LSQ performs store-to-load forwarding at byte granularity
//!   and detects ordering violations.
//! * **L1 instruction caches** — one 8 KB bank per core holding that
//!   core's *slice* of each block.
//! * **L2** — a 4 MB shared S-NUCA cache of 32 banks with
//!   distance-dependent latency (5-27 cycles) and a directory that tracks
//!   L1 sharers, so composition changes need no flush: stale lines are
//!   invalidated or forwarded on demand.
//! * **DRAM** — a flat 150-cycle-latency memory.
//!
//! Functional values live in a [`MemoryImage`]; caches and queues model
//! *state and timing* only. Speculative stores are buffered in the LSQ
//! and reach the image only at block commit, giving correct rollback for
//! free.

#![warn(missing_docs)]

mod cache;
mod config;
mod image;
mod l2;
mod lsq;
mod stats;
mod system;

pub use cache::{AccessResult, CacheBank, CacheGeometry};
pub use config::MemConfig;
pub use image::MemoryImage;
pub use l2::NucaL2;
pub use lsq::{LsqBank, LsqInsert};
pub use stats::MemStats;
pub use system::{
    dbank_for, EvacuationReport, LoadResponse, LoadServe, MemorySystem, StoreResponse,
};
