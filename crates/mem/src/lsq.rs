//! Load/store queue banks: disambiguation, forwarding, NACK overflow.

use crate::image::MemoryImage;
use serde::{Deserialize, Serialize};

/// Outcome of trying to slot a memory operation into an LSQ bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LsqInsert<T> {
    /// The operation was accepted.
    Ok(T),
    /// The bank is full; the requester must retry later (§4.5's NACK
    /// overflow mechanism).
    Nack,
}

impl<T> LsqInsert<T> {
    /// True for [`LsqInsert::Nack`].
    #[must_use]
    pub fn is_nack(&self) -> bool {
        matches!(self, LsqInsert::Nack)
    }
}

#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct Entry {
    /// Global memory order: `block_seq * 32 + LSID`.
    seq: u64,
    addr: u64,
    size: u8,
    is_store: bool,
    value: u64,
}

/// One address-interleaved LSQ bank (44 entries in TFlex).
///
/// All operations to a given address hash to the same bank, so each bank
/// disambiguates independently. Loads forward from older in-flight stores
/// at byte granularity; stores detect younger already-performed loads to
/// overlapping bytes as ordering violations.
///
/// # Examples
///
/// ```
/// use clp_mem::{LsqBank, LsqInsert, MemoryImage};
///
/// let mut image = MemoryImage::new();
/// let mut lsq = LsqBank::new(44);
/// // An in-flight store forwards to a younger load before commit.
/// lsq.execute_store(0, 0x40, 8, 99);
/// assert_eq!(lsq.execute_load(1, 0x40, 8, &image), LsqInsert::Ok(99));
/// assert_eq!(image.read_u64(0x40), 0, "speculative until committed");
/// lsq.commit_range(0, 32, &mut image);
/// assert_eq!(image.read_u64(0x40), 99);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LsqBank {
    capacity: usize,
    entries: Vec<Entry>,
}

fn overlap(a_addr: u64, a_size: u8, b_addr: u64, b_size: u8) -> bool {
    a_addr < b_addr + u64::from(b_size) && b_addr < a_addr + u64::from(a_size)
}

impl LsqBank {
    /// Creates an empty bank with `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        LsqBank {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Number of occupied entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bank capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Executes a load: slots it and returns its value, assembled byte by
    /// byte from the youngest older in-flight store covering each byte,
    /// falling back to the architectural image.
    pub fn execute_load(
        &mut self,
        seq: u64,
        addr: u64,
        size: u8,
        image: &MemoryImage,
    ) -> LsqInsert<u64> {
        if self.entries.len() >= self.capacity {
            return LsqInsert::Nack;
        }
        let mut bytes = [0u8; 8];
        for (i, byte) in bytes.iter_mut().enumerate().take(size as usize) {
            let baddr = addr + i as u64;
            // Youngest store older than this load covering the byte.
            let src = self
                .entries
                .iter()
                .filter(|e| e.is_store && e.seq < seq && overlap(e.addr, e.size, baddr, 1))
                .max_by_key(|e| e.seq);
            *byte = match src {
                Some(st) => st.value.to_le_bytes()[(baddr - st.addr) as usize],
                None => image.read_u8(baddr),
            };
        }
        self.entries.push(Entry {
            seq,
            addr,
            size,
            is_store: false,
            value: 0,
        });
        LsqInsert::Ok(u64::from_le_bytes(bytes))
    }

    /// Executes a store: slots it (value buffered until commit) and
    /// reports the sequence number of the oldest *younger* load that
    /// already read overlapping bytes, if any — an ordering violation the
    /// pipeline must squash from.
    pub fn execute_store(
        &mut self,
        seq: u64,
        addr: u64,
        size: u8,
        value: u64,
    ) -> LsqInsert<Option<u64>> {
        if self.entries.len() >= self.capacity {
            return LsqInsert::Nack;
        }
        let violation = self
            .entries
            .iter()
            .filter(|e| !e.is_store && e.seq > seq && overlap(e.addr, e.size, addr, size))
            .map(|e| e.seq)
            .min();
        self.entries.push(Entry {
            seq,
            addr,
            size,
            is_store: true,
            value,
        });
        LsqInsert::Ok(violation)
    }

    /// Commits all entries with `lo_seq <= seq < hi_seq`: stores are
    /// applied to the image in sequence order, and every entry in the
    /// range (loads included) is deallocated. Returns the `(address,
    /// size)` of each committed store so the caller can update cache
    /// state.
    pub fn commit_range(
        &mut self,
        lo_seq: u64,
        hi_seq: u64,
        image: &mut MemoryImage,
    ) -> Vec<(u64, u8)> {
        let mut stores: Vec<Entry> = self
            .entries
            .iter()
            .filter(|e| e.is_store && e.seq >= lo_seq && e.seq < hi_seq)
            .copied()
            .collect();
        stores.sort_by_key(|e| e.seq);
        let mut committed = Vec::with_capacity(stores.len());
        for st in stores {
            image.write(st.addr, st.size, st.value);
            committed.push((st.addr, st.size));
        }
        self.entries.retain(|e| e.seq < lo_seq || e.seq >= hi_seq);
        committed
    }

    /// The youngest (largest) sequence number present in the bank.
    #[must_use]
    pub fn youngest_seq(&self) -> Option<u64> {
        self.entries.iter().map(|e| e.seq).max()
    }

    /// Squashes all entries with `seq >= from_seq` (pipeline flush).
    pub fn flush_from(&mut self, from_seq: u64) {
        self.entries.retain(|e| e.seq < from_seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(block: u64, lsid: u64) -> u64 {
        block * 32 + lsid
    }

    #[test]
    fn load_reads_image_when_no_stores() {
        let mut image = MemoryImage::new();
        image.write_u64(0x100, 77);
        let mut lsq = LsqBank::new(44);
        let v = lsq.execute_load(seq(0, 0), 0x100, 8, &image);
        assert_eq!(v, LsqInsert::Ok(77));
    }

    #[test]
    fn store_to_load_forwarding_exact() {
        let image = MemoryImage::new();
        let mut lsq = LsqBank::new(44);
        assert_eq!(
            lsq.execute_store(seq(0, 0), 0x40, 8, 123),
            LsqInsert::Ok(None)
        );
        let v = lsq.execute_load(seq(0, 1), 0x40, 8, &image);
        assert_eq!(v, LsqInsert::Ok(123), "forwarded from in-flight store");
    }

    #[test]
    fn forwarding_is_byte_granular() {
        let mut image = MemoryImage::new();
        image.write_u64(0x40, 0xFFFF_FFFF_FFFF_FFFF);
        let mut lsq = LsqBank::new(44);
        // Older byte store overwrites one byte of the word.
        lsq.execute_store(seq(0, 0), 0x42, 1, 0xAB);
        let v = lsq.execute_load(seq(0, 1), 0x40, 8, &image);
        assert_eq!(v, LsqInsert::Ok(0xFFFF_FFFF_FFAB_FFFF));
    }

    #[test]
    fn youngest_older_store_wins() {
        let image = MemoryImage::new();
        let mut lsq = LsqBank::new(44);
        lsq.execute_store(seq(0, 0), 0x40, 8, 1);
        lsq.execute_store(seq(0, 2), 0x40, 8, 2);
        let v = lsq.execute_load(seq(1, 0), 0x40, 8, &image);
        assert_eq!(v, LsqInsert::Ok(2));
        // A load *between* the stores sees only the first.
        let v2 = lsq.execute_load(seq(0, 1), 0x40, 8, &image);
        assert_eq!(v2, LsqInsert::Ok(1));
    }

    #[test]
    fn violation_detected_on_late_store() {
        let image = MemoryImage::new();
        let mut lsq = LsqBank::new(44);
        // Load from block 1 performs before an older store from block 0.
        lsq.execute_load(seq(1, 3), 0x80, 8, &image);
        let v = lsq.execute_store(seq(0, 5), 0x80, 8, 9);
        assert_eq!(v, LsqInsert::Ok(Some(seq(1, 3))));
    }

    #[test]
    fn no_violation_for_disjoint_addresses() {
        let image = MemoryImage::new();
        let mut lsq = LsqBank::new(44);
        lsq.execute_load(seq(1, 0), 0x80, 8, &image);
        let v = lsq.execute_store(seq(0, 0), 0x88, 8, 9);
        assert_eq!(v, LsqInsert::Ok(None));
    }

    #[test]
    fn nack_when_full() {
        let image = MemoryImage::new();
        let mut lsq = LsqBank::new(2);
        assert!(!lsq.execute_load(0, 0, 8, &image).is_nack());
        assert!(!lsq.execute_store(1, 8, 8, 0).is_nack());
        assert!(lsq.execute_load(2, 16, 8, &image).is_nack());
        assert_eq!(lsq.len(), 2);
    }

    #[test]
    fn commit_applies_stores_in_order_and_frees() {
        let mut image = MemoryImage::new();
        let mut lsq = LsqBank::new(44);
        lsq.execute_store(seq(0, 1), 0x40, 8, 1);
        lsq.execute_store(seq(0, 0), 0x40, 8, 2); // older, same addr
        lsq.execute_load(seq(0, 2), 0x40, 8, &image);
        let n = lsq.commit_range(seq(0, 0), seq(1, 0), &mut image);
        assert_eq!(n.len(), 2);
        assert!(n.iter().all(|&(a, s)| a == 0x40 && s == 8));
        assert_eq!(image.read_u64(0x40), 1, "younger store wins");
        assert!(lsq.is_empty());
    }

    #[test]
    fn flush_drops_younger_only() {
        let image = MemoryImage::new();
        let mut lsq = LsqBank::new(44);
        lsq.execute_store(seq(0, 0), 0, 8, 1);
        lsq.execute_store(seq(2, 0), 8, 8, 2);
        lsq.flush_from(seq(1, 0));
        assert_eq!(lsq.len(), 1);
        let mut image2 = MemoryImage::new();
        lsq.commit_range(0, seq(1, 0), &mut image2);
        assert_eq!(image2.read_u64(0), 1);
        assert_eq!(image2.read_u64(8), 0, "flushed store never committed");
        let _ = image;
    }
}
