//! Memory-hierarchy event counters (consumed by the power model).

use serde::{Deserialize, Serialize};

/// Counters accumulated by a [`MemorySystem`](crate::MemorySystem).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// L1 D-cache hits.
    pub l1d_hits: u64,
    /// L1 D-cache misses.
    pub l1d_misses: u64,
    /// L1 I-cache hits.
    pub l1i_hits: u64,
    /// L1 I-cache misses.
    pub l1i_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// DRAM accesses (fills + write-backs).
    pub dram_accesses: u64,
    /// LSQ insertions (loads + stores accepted).
    pub lsq_inserts: u64,
    /// LSQ associative searches (every load and store performs one).
    pub lsq_searches: u64,
    /// Requests NACKed because an LSQ bank was full.
    pub lsq_nacks: u64,
    /// Load/store ordering violations detected.
    pub violations: u64,
    /// Store-to-load forwards that hit at least one in-flight store byte.
    pub forwards: u64,
    /// Dirty L1 lines written back to L2.
    pub l1_writebacks: u64,
    /// Directory-initiated L1 invalidations.
    pub invalidations: u64,
    /// Directory-initiated dirty forwards.
    pub dirty_forwards: u64,
    /// Stores committed to the architectural image.
    pub stores_committed: u64,
    /// NACKs forced by the fault-injection layer (not counted in
    /// `lsq_nacks`, which tracks organic flow-control refusals).
    pub injected_nacks: u64,
    /// DRAM latency spikes injected by the fault layer.
    pub injected_dram_spikes: u64,
    /// Total extra load latency (cycles) added by injected DRAM spikes.
    pub injected_dram_extra_cycles: u64,
}

impl MemStats {
    /// L1 D-cache hit rate.
    #[must_use]
    pub fn l1d_hit_rate(&self) -> f64 {
        let total = self.l1d_hits + self.l1d_misses;
        if total == 0 {
            0.0
        } else {
            self.l1d_hits as f64 / total as f64
        }
    }

    /// Renders these counters as a stats-registry node named `"mem"`.
    #[must_use]
    pub fn to_node(&self) -> clp_obs::StatsNode {
        clp_obs::StatsNode::new("mem")
            .count("l1d_hits", self.l1d_hits)
            .count("l1d_misses", self.l1d_misses)
            .count("l1i_hits", self.l1i_hits)
            .count("l1i_misses", self.l1i_misses)
            .count("l2_hits", self.l2_hits)
            .count("l2_misses", self.l2_misses)
            .count("dram_accesses", self.dram_accesses)
            .count("lsq_inserts", self.lsq_inserts)
            .count("lsq_searches", self.lsq_searches)
            .count("lsq_nacks", self.lsq_nacks)
            .count("violations", self.violations)
            .count("forwards", self.forwards)
            .count("l1_writebacks", self.l1_writebacks)
            .count("invalidations", self.invalidations)
            .count("dirty_forwards", self.dirty_forwards)
            .count("stores_committed", self.stores_committed)
            .count("injected_nacks", self.injected_nacks)
            .count("injected_dram_spikes", self.injected_dram_spikes)
            .count(
                "injected_dram_extra_cycles",
                self.injected_dram_extra_cycles,
            )
            .gauge("l1d_hit_rate", self.l1d_hit_rate())
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, o: &MemStats) {
        self.l1d_hits += o.l1d_hits;
        self.l1d_misses += o.l1d_misses;
        self.l1i_hits += o.l1i_hits;
        self.l1i_misses += o.l1i_misses;
        self.l2_hits += o.l2_hits;
        self.l2_misses += o.l2_misses;
        self.dram_accesses += o.dram_accesses;
        self.lsq_inserts += o.lsq_inserts;
        self.lsq_searches += o.lsq_searches;
        self.lsq_nacks += o.lsq_nacks;
        self.violations += o.violations;
        self.forwards += o.forwards;
        self.l1_writebacks += o.l1_writebacks;
        self.invalidations += o.invalidations;
        self.dirty_forwards += o.dirty_forwards;
        self.stores_committed += o.stores_committed;
        self.injected_nacks += o.injected_nacks;
        self.injected_dram_spikes += o.injected_dram_spikes;
        self.injected_dram_extra_cycles += o.injected_dram_extra_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_empty_is_zero() {
        assert_eq!(MemStats::default().l1d_hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_computes() {
        let s = MemStats {
            l1d_hits: 3,
            l1d_misses: 1,
            ..Default::default()
        };
        assert!((s.l1d_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MemStats {
            l1d_hits: 1,
            dram_accesses: 2,
            ..Default::default()
        };
        a.merge(&a.clone());
        assert_eq!(a.l1d_hits, 2);
        assert_eq!(a.dram_accesses, 4);
    }
}
