//! The shared S-NUCA L2 cache with directory coherence, plus DRAM.

use crate::cache::{AccessResult, CacheBank, CacheGeometry};
use crate::config::MemConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Coherence work the requester's miss triggered at the directory.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoherenceActions {
    /// Cores whose L1 copy must be invalidated.
    pub invalidate: Vec<usize>,
    /// A core holding the line dirty that must forward it (read miss) —
    /// charged [`MemConfig::coherence_penalty`] extra cycles.
    pub forward_from: Option<usize>,
}

/// Result of one L2 transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct L2Response {
    /// Total latency in cycles (NUCA distance + DRAM if missed + any
    /// coherence penalty).
    pub latency: u32,
    /// Whether the L2 hit.
    pub hit: bool,
    /// Directory actions for the caller to apply to L1 banks.
    pub actions: CoherenceActions,
}

#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
struct DirEntry {
    sharers: u32,
    dirty_owner: Option<u8>,
}

/// The 4 MB, 32-bank, statically address-mapped NUCA L2 (§4.7).
///
/// Banks occupy the right half of the chip floorplan; access latency
/// scales with Manhattan distance from the requesting core to the bank,
/// spanning [`MemConfig::l2_min_latency`]..=[`MemConfig::l2_max_latency`].
/// The directory lives in the L2 tags: each line tracks an L1 sharing
/// vector, treating every L1 bank as an independent coherence unit, which
/// is what lets compositions change without flushing L1s.
#[derive(Clone, Debug)]
pub struct NucaL2 {
    cfg: MemConfig,
    banks: Vec<CacheBank>,
    directory: HashMap<u64, DirEntry>,
    /// DRAM accesses performed (reads + write-backs).
    pub dram_accesses: u64,
    /// L2 hits.
    pub hits: u64,
    /// L2 misses.
    pub misses: u64,
}

impl NucaL2 {
    /// Creates an empty L2.
    #[must_use]
    pub fn new(cfg: MemConfig) -> Self {
        let per_bank = CacheGeometry {
            bytes: cfg.l2_bytes / cfg.l2_banks,
            line_bytes: cfg.line_bytes,
            ways: cfg.l2_ways,
        };
        NucaL2 {
            banks: (0..cfg.l2_banks)
                .map(|_| CacheBank::new(per_bank))
                .collect(),
            directory: HashMap::new(),
            dram_accesses: 0,
            hits: 0,
            misses: 0,
            cfg,
        }
    }

    /// The bank holding `line_addr`.
    #[must_use]
    pub fn bank_for(&self, line_addr: u64) -> usize {
        let l = line_addr >> 6;
        ((l ^ (l >> 7)) as usize) % self.cfg.l2_banks
    }

    /// NUCA latency from a core (in the 4x8 core array, node id `core`)
    /// to `bank` (in the adjacent 4x8 bank array).
    #[must_use]
    pub fn nuca_latency(&self, core: usize, bank: usize) -> u32 {
        let (cx, cy) = ((core % 4) as i32, (core / 4) as i32);
        let (bx, by) = ((4 + bank % 4) as i32, (bank / 4) as i32);
        let hops = (cx - bx).unsigned_abs() + (cy - by).unsigned_abs();
        let min_hops = 1;
        let max_hops = 14; // (0,7) core to (7,0) bank
        let span = self.cfg.l2_max_latency - self.cfg.l2_min_latency;
        self.cfg.l2_min_latency + (hops.saturating_sub(min_hops)) * span / (max_hops - min_hops)
    }

    /// Performs an L2 transaction on behalf of `core`'s L1 miss.
    ///
    /// Updates the directory: on a write the requester becomes the
    /// exclusive dirty owner and all other sharers are invalidated; on a
    /// read a dirty remote copy is forwarded (penalized) and downgraded.
    pub fn access(&mut self, core: usize, line_addr: u64, write: bool) -> L2Response {
        let bank = self.bank_for(line_addr);
        let mut latency = self.nuca_latency(core, bank);
        let mut actions = CoherenceActions::default();

        let entry = self.directory.entry(line_addr).or_default();
        let others = entry.sharers & !(1u32 << core);
        if write {
            if others != 0 {
                actions.invalidate = (0..32).filter(|&c| others >> c & 1 == 1).collect();
                latency += self.cfg.coherence_penalty;
            }
            entry.sharers = 1 << core;
            entry.dirty_owner = Some(core as u8);
        } else {
            if let Some(owner) = entry.dirty_owner {
                if usize::from(owner) != core {
                    actions.forward_from = Some(usize::from(owner));
                    latency += self.cfg.coherence_penalty;
                    entry.dirty_owner = None;
                }
            }
            entry.sharers |= 1 << core;
        }

        let result = self.banks[bank].access(line_addr, write);
        let hit = result.is_hit();
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            self.dram_accesses += 1;
            latency += self.cfg.dram_latency;
            if let AccessResult::Miss {
                writeback: Some(victim),
            } = result
            {
                self.dram_accesses += 1;
                // Inclusive L2: L1 copies of the evicted victim must go.
                if let Some(v) = self.directory.remove(&victim) {
                    for c in 0..32 {
                        if v.sharers >> c & 1 == 1 {
                            actions.invalidate.push(c);
                        }
                    }
                    // Victim invalidations reuse the same message budget;
                    // the line addresses differ, so the caller gets the
                    // victim too.
                    actions.invalidate.dedup();
                }
            }
        }

        L2Response {
            latency,
            hit,
            actions,
        }
    }

    /// Records an L1 write-back of a dirty line into the L2 (updates
    /// recency/dirtiness; background traffic, no latency charged to the
    /// critical path).
    pub fn writeback(&mut self, line_addr: u64) {
        let bank = self.bank_for(line_addr);
        let _ = self.banks[bank].access(line_addr, true);
        if let Some(e) = self.directory.get_mut(&line_addr) {
            e.dirty_owner = None;
        }
    }

    /// Drops `core` from the sharing vector of `line_addr` (L1 eviction).
    pub fn evict_notify(&mut self, core: usize, line_addr: u64) {
        if let Some(e) = self.directory.get_mut(&line_addr) {
            e.sharers &= !(1u32 << core);
            if e.dirty_owner == Some(core as u8) {
                e.dirty_owner = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2() -> NucaL2 {
        NucaL2::new(MemConfig::tflex())
    }

    #[test]
    fn latency_scales_with_distance() {
        let l2 = l2();
        let near = l2.nuca_latency(3, 0); // core (3,0) next to bank (4,0)
        let far = l2.nuca_latency(28, 3); // core (0,7) to bank (7,0)
        assert_eq!(near, 5);
        assert_eq!(far, 27);
        assert!(l2.nuca_latency(17, 9) > near);
        assert!(l2.nuca_latency(17, 9) < far);
    }

    #[test]
    fn first_access_misses_to_dram_then_hits() {
        let mut l2 = l2();
        let r1 = l2.access(0, 0x1000, false);
        assert!(!r1.hit);
        assert!(r1.latency >= 150);
        let r2 = l2.access(0, 0x1000, false);
        assert!(r2.hit);
        assert!(r2.latency < 30);
        assert_eq!(l2.dram_accesses, 1);
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut l2 = l2();
        l2.access(1, 0x40, false);
        l2.access(2, 0x40, false);
        let r = l2.access(3, 0x40, true);
        assert_eq!(r.actions.invalidate, vec![1, 2]);
        // After the write, core 3 is exclusive: a read by 1 forwards.
        let r2 = l2.access(1, 0x40, false);
        assert_eq!(r2.actions.forward_from, Some(3));
    }

    #[test]
    fn read_after_read_needs_no_coherence_work() {
        let mut l2 = l2();
        l2.access(0, 0x80, false);
        let r = l2.access(5, 0x80, false);
        assert!(r.actions.invalidate.is_empty());
        assert_eq!(r.actions.forward_from, None);
    }

    #[test]
    fn recomposition_scenario_forwards_dirty_line() {
        // Core 0 wrote a line while running solo; after recomposition the
        // same data is requested through core 1's bank: the directory
        // forwards instead of requiring a flush (§4.7).
        let mut l2 = l2();
        l2.access(0, 0x2000, true);
        let r = l2.access(1, 0x2000, false);
        assert!(r.hit);
        assert_eq!(r.actions.forward_from, Some(0));
        assert!(r.latency >= MemConfig::tflex().coherence_penalty);
    }

    #[test]
    fn evict_notify_clears_sharer() {
        let mut l2 = l2();
        l2.access(4, 0x100, true);
        l2.evict_notify(4, 0x100);
        let r = l2.access(5, 0x100, true);
        assert!(r.actions.invalidate.is_empty(), "core 4 no longer shares");
    }

    #[test]
    fn bank_hash_spreads_lines() {
        let l2 = l2();
        let mut seen = std::collections::HashSet::new();
        for i in 0..256u64 {
            seen.insert(l2.bank_for(i * 64));
        }
        assert!(seen.len() > 16, "lines spread over banks: {}", seen.len());
    }
}
