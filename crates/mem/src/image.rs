//! The functional memory image: a sparse, paged, byte-addressable space.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// A sparse 64-bit byte-addressable memory holding the *architectural*
/// contents of memory. Little-endian, zero-initialized.
///
/// The caches and LSQs in this crate model timing and coherence state
/// only; every committed value lives here, which keeps functional
/// correctness independent of the timing model.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MemoryImage {
    pages: BTreeMap<u64, Vec<u8>>,
}

impl MemoryImage {
    /// Creates an empty (all-zero) image.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| vec![0; PAGE_SIZE]);
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads a little-endian 64-bit word (no alignment requirement).
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u64));
        }
        u64::from_le_bytes(bytes)
    }

    /// Writes a little-endian 64-bit word.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b);
        }
    }

    /// Reads `size` bytes (1 or 8) as a zero-extended word.
    #[must_use]
    pub fn read(&self, addr: u64, size: u8) -> u64 {
        match size {
            1 => u64::from(self.read_u8(addr)),
            8 => self.read_u64(addr),
            _ => panic!("unsupported access size {size}"),
        }
    }

    /// Writes the low `size` bytes (1 or 8) of `value`.
    pub fn write(&mut self, addr: u64, size: u8, value: u64) {
        match size {
            1 => self.write_u8(addr, value as u8),
            8 => self.write_u64(addr, value),
            _ => panic!("unsupported access size {size}"),
        }
    }

    /// Copies a slice of words into memory starting at `addr`.
    pub fn load_words(&mut self, addr: u64, words: &[u64]) {
        for (i, &w) in words.iter().enumerate() {
            self.write_u64(addr + 8 * i as u64, w);
        }
    }

    /// Reads `n` consecutive words starting at `addr`.
    #[must_use]
    pub fn read_words(&self, addr: u64, n: usize) -> Vec<u64> {
        (0..n).map(|i| self.read_u64(addr + 8 * i as u64)).collect()
    }

    /// Number of populated 4 KB pages (for footprint assertions in tests).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = MemoryImage::new();
        assert_eq!(m.read_u64(0xdead_beef), 0);
        assert_eq!(m.read_u8(12345), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn word_roundtrip_and_endianness() {
        let mut m = MemoryImage::new();
        m.write_u64(0x100, 0x0102_0304_0506_0708);
        assert_eq!(m.read_u64(0x100), 0x0102_0304_0506_0708);
        assert_eq!(m.read_u8(0x100), 0x08, "little-endian low byte first");
        assert_eq!(m.read_u8(0x107), 0x01);
    }

    #[test]
    fn cross_page_word() {
        let mut m = MemoryImage::new();
        let addr = (1 << 12) - 4; // straddles the first page boundary
        m.write_u64(addr, u64::MAX);
        assert_eq!(m.read_u64(addr), u64::MAX);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn sized_access() {
        let mut m = MemoryImage::new();
        m.write(0x40, 8, 0xAABB_CCDD_EEFF_0011);
        assert_eq!(m.read(0x40, 1), 0x11);
        m.write(0x40, 1, 0x99);
        assert_eq!(m.read(0x40, 8), 0xAABB_CCDD_EEFF_0099);
    }

    #[test]
    fn bulk_words() {
        let mut m = MemoryImage::new();
        m.load_words(0x1000, &[1, 2, 3]);
        assert_eq!(m.read_words(0x1000, 3), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "unsupported access size")]
    fn bad_size_panics() {
        let m = MemoryImage::new();
        let _ = m.read(0, 4);
    }
}
