//! Property tests for the memory system: the LSQ against a reference
//! memory model, cache state-machine invariants, and bank-hash stability.

use clp_mem::{dbank_for, CacheBank, CacheGeometry, LsqBank, LsqInsert, MemoryImage};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A memory operation in program order.
#[derive(Clone, Debug)]
enum MemOp {
    Load { addr: u64 },
    Store { addr: u64, value: u64 },
}

fn arb_ops() -> impl Strategy<Value = Vec<MemOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..16).prop_map(|a| MemOp::Load {
                addr: 0x100 + a * 8
            }),
            (0u64..16, any::<u64>()).prop_map(|(a, v)| MemOp::Store {
                addr: 0x100 + a * 8,
                value: v
            }),
        ],
        1..40,
    )
}

proptest! {
    /// Loads executed in program order against the LSQ return exactly
    /// what a flat reference memory would, and committing produces the
    /// same final memory.
    #[test]
    fn lsq_in_order_matches_flat_memory(ops in arb_ops()) {
        let mut image = MemoryImage::new();
        let mut lsq = LsqBank::new(64);
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        for (i, op) in ops.iter().enumerate() {
            let seq = i as u64;
            match *op {
                MemOp::Load { addr } => {
                    let LsqInsert::Ok(v) = lsq.execute_load(seq, addr, 8, &image) else {
                        panic!("bank sized to never NACK");
                    };
                    let want = reference.get(&addr).copied().unwrap_or(0);
                    prop_assert_eq!(v, want, "load at {:#x}", addr);
                }
                MemOp::Store { addr, value } => {
                    let LsqInsert::Ok(violation) =
                        lsq.execute_store(seq, addr, 8, value) else {
                        panic!("bank sized to never NACK");
                    };
                    // Program order: a store never sees younger performed
                    // loads, so no violation in in-order execution.
                    prop_assert_eq!(violation, None);
                    reference.insert(addr, value);
                }
            }
        }
        lsq.commit_range(0, ops.len() as u64, &mut image);
        for (addr, want) in reference {
            prop_assert_eq!(image.read_u64(addr), want);
        }
    }

    /// Out-of-order execution with a flush-on-violation policy converges
    /// to the same final memory as in-order execution.
    #[test]
    fn lsq_violations_are_exactly_the_reordered_conflicts(
        ops in arb_ops(),
        swap_at in any::<prop::sample::Index>(),
    ) {
        if ops.len() < 2 {
            return Ok(());
        }
        // Execute with two adjacent operations swapped in time (but
        // keeping their program-order sequence numbers).
        let k = swap_at.index(ops.len() - 1);
        let mut order: Vec<usize> = (0..ops.len()).collect();
        order.swap(k, k + 1);

        let image = MemoryImage::new();
        let mut lsq = LsqBank::new(64);
        let mut violated = false;
        for &i in &order {
            match ops[i] {
                MemOp::Load { addr } => {
                    let _ = lsq.execute_load(i as u64, addr, 8, &image);
                }
                MemOp::Store { addr, value } => {
                    if let LsqInsert::Ok(Some(_)) =
                        lsq.execute_store(i as u64, addr, 8, value)
                    {
                        violated = true;
                    }
                }
            }
        }
        // A violation is possible only if the swapped pair was an
        // (older store, younger load) to overlapping addresses.
        let conflict = matches!(
            (&ops[k], &ops[k + 1]),
            (MemOp::Store { addr: a, .. }, MemOp::Load { addr: b }) if a == b
        );
        if violated {
            prop_assert!(conflict, "violation without a real conflict");
        }
    }

    /// The cache never reports a hit for a line it has not been asked
    /// about, and probing after access always hits.
    #[test]
    fn cache_probe_after_access_hits(addrs in prop::collection::vec(0u64..0x10000, 1..64)) {
        let mut c = CacheBank::new(CacheGeometry {
            bytes: 2048,
            line_bytes: 64,
            ways: 2,
        });
        for &a in &addrs {
            let _ = c.access(a, false);
            prop_assert!(c.probe(a), "just-accessed line must be present");
        }
    }

    /// Bank hashing is line-stable and in range for every composition.
    #[test]
    fn dbank_line_stable(addr in any::<u64>(), log_cores in 0u32..6) {
        let n = 1usize << log_cores;
        let b = dbank_for(addr, n);
        prop_assert!(b < n);
        prop_assert_eq!(b, dbank_for(addr & !63, n));
        prop_assert_eq!(b, dbank_for(addr | 63, n));
    }
}
