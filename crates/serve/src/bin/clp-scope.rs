//! The clp-scope driver: replay a service run with the scope recorder
//! on and render the observability report — span trees, worker
//! occupancy, the fleet cycle-attribution book, and the service time
//! series.
//!
//! ```sh
//! # Fleet breakdown of the pinned benchmark configuration.
//! cargo run --release -p clp-serve --bin clp-scope -- --bench
//!
//! # Regenerate the committed scope golden.
//! cargo run --release -p clp-serve --bin clp-scope -- --bench --json SCOPE_serve.json
//!
//! # CI gate: replay and require byte-identical output.
//! cargo run --release -p clp-serve --bin clp-scope -- --bench --check SCOPE_serve.json
//!
//! # Open the span trees in ui.perfetto.dev.
//! cargo run --release -p clp-serve --bin clp-scope -- --bench --perfetto scope.trace.json
//! ```
//!
//! The scheduling flags mirror `clp-serve` exactly (same defaults, same
//! `--bench` pins), so a scope report always describes the same virtual
//! run the service driver would execute. Because the service and the
//! recorder are both deterministic, `--check` is a *byte* comparison:
//! the replayed `clp-scope-v1` document must equal the committed one
//! exactly, or the gate exits 1.
//!
//! Exit codes: 0 = drained and (if `--check`) byte-identical, 1 =
//! `--check` mismatch, 2 = usage error.

use clp_obs::ScopeOptions;
use clp_serve::{arrivals, service};

struct Args {
    jobs: usize,
    seed: u64,
    workers: usize,
    queue_cap: usize,
    degrade_at: usize,
    mean_gap: u64,
    budget: u64,
    tight_every: usize,
    tight_budget: u64,
    retries: u32,
    plant_panic: Vec<u64>,
    kill_core: Vec<(u64, u64)>,
    period: u64,
    json: Option<String>,
    bench: bool,
    check: Option<String>,
    perfetto: Option<String>,
}

fn die(msg: &str) -> ! {
    eprintln!("clp-scope: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        jobs: 24,
        seed: 7,
        workers: 4,
        queue_cap: 8,
        degrade_at: 6,
        mean_gap: 3_000,
        budget: 200_000,
        tight_every: 0,
        tight_budget: 2_500,
        retries: 3,
        plant_panic: Vec::new(),
        kill_core: Vec::new(),
        period: 5_000,
        json: None,
        bench: false,
        check: None,
        perfetto: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut flag_value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{flag} requires a value")))
        };
        macro_rules! parse_into {
            ($field:expr, $flag:expr) => {{
                let v = flag_value($flag);
                match v.parse() {
                    Ok(x) => $field = x,
                    Err(_) => die(&format!("bad {} value `{v}`", $flag)),
                }
            }};
        }
        match a.as_str() {
            "--jobs" => parse_into!(args.jobs, "--jobs"),
            "--seed" => parse_into!(args.seed, "--seed"),
            "--workers" => parse_into!(args.workers, "--workers"),
            "--queue-cap" => parse_into!(args.queue_cap, "--queue-cap"),
            "--degrade-at" => parse_into!(args.degrade_at, "--degrade-at"),
            "--mean-gap" => parse_into!(args.mean_gap, "--mean-gap"),
            "--budget" => parse_into!(args.budget, "--budget"),
            "--tight-every" => parse_into!(args.tight_every, "--tight-every"),
            "--tight-budget" => parse_into!(args.tight_budget, "--tight-budget"),
            "--retries" => parse_into!(args.retries, "--retries"),
            "--period" => parse_into!(args.period, "--period"),
            "--plant-panic" => {
                let v = flag_value("--plant-panic");
                match v.parse() {
                    Ok(id) => args.plant_panic.push(id),
                    Err(_) => die(&format!("bad --plant-panic job id `{v}`")),
                }
            }
            "--kill-core" => {
                let v = flag_value("--kill-core");
                let parsed = v
                    .split_once('@')
                    .and_then(|(j, c)| Some((j.trim().parse().ok()?, c.trim().parse().ok()?)));
                match parsed {
                    Some(jc) => args.kill_core.push(jc),
                    None => die(&format!("bad --kill-core `{v}` (expected JOB@CYCLE)")),
                }
            }
            "--json" => args.json = Some(flag_value("--json")),
            "--bench" => args.bench = true,
            "--check" => args.check = Some(flag_value("--check")),
            "--perfetto" => args.perfetto = Some(flag_value("--perfetto")),
            _ => die(&format!("unexpected argument `{a}`")),
        }
    }
    args
}

/// The same pinned benchmark configuration `clp-serve --bench` uses, so
/// the committed scope golden describes the committed service golden.
fn bench_args(mut args: Args) -> Args {
    args.jobs = 48;
    args.seed = 42;
    args.workers = 4;
    args.queue_cap = 8;
    args.degrade_at = 6;
    args.mean_gap = 3_000;
    args.budget = 200_000;
    args.tight_every = 7;
    args.tight_budget = 2_500;
    args.retries = 3;
    args.plant_panic = vec![5, 23];
    args.kill_core = vec![(11, 800)];
    args
}

fn main() {
    let mut args = parse_args();
    if args.bench {
        args = bench_args(args);
    }
    let acfg = arrivals::ArrivalConfig {
        jobs: args.jobs,
        seed: args.seed,
        mean_gap: args.mean_gap.max(1),
        budget: args.budget,
        tight_every: args.tight_every,
        tight_budget: args.tight_budget,
        plant_panic: args.plant_panic.clone(),
        kill_at: args.kill_core.clone(),
    };
    let scfg = service::ServiceConfig {
        workers: args.workers.max(1),
        queue_cap: args.queue_cap.max(1),
        degrade_at: args.degrade_at.max(1),
        max_retries: args.retries,
        seed: args.seed,
        ..service::ServiceConfig::default()
    };
    let sopts = ScopeOptions {
        period: args.period.max(1),
    };
    let schedule = arrivals::generate(&acfg);
    let (_, scope) = service::serve_scoped(schedule, &scfg, Some(&sopts));
    let rep = scope.expect("scope options were passed, so a report comes back");

    println!("{}", rep.render_summary());
    print!("{}", rep.render_fleet());
    print!("{}", rep.series.render_timeline());
    print!("{}", rep.series.render_phase_table());

    if let Some(path) = &args.json {
        std::fs::write(path, rep.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write `{path}`: {e}")));
        println!("[scope -> {path}]");
    }
    if let Some(path) = &args.perfetto {
        std::fs::write(path, rep.to_perfetto())
            .unwrap_or_else(|e| die(&format!("cannot write `{path}`: {e}")));
        println!("[perfetto -> {path}]");
    }
    if let Some(path) = &args.check {
        let committed = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read golden `{path}`: {e}")));
        let fresh = rep.to_json();
        if committed == fresh {
            println!("[check: byte-identical to {path}]");
        } else {
            eprintln!(
                "clp-scope: MISMATCH: replay differs from `{path}` \
                 ({} committed bytes vs {} replayed)",
                committed.len(),
                fresh.len()
            );
            eprintln!("clp-scope: regenerate with --bench --json {path} if intentional");
            std::process::exit(1);
        }
    }
}
