//! The clp-serve driver: generate a seeded job schedule, run the
//! service to full drain, and report.
//!
//! ```sh
//! # A quick chaotic run: 24 jobs, a planted panic, a doomed kill job.
//! cargo run --release -p clp-serve -- \
//!     --jobs 24 --seed 7 --plant-panic 5 --kill-core 11@800
//!
//! # Regenerate the committed benchmark document.
//! cargo run --release -p clp-serve -- --bench --json BENCH_serve.json
//!
//! # CI gate: rerun the pinned configuration and compare.
//! cargo run --release -p clp-serve -- --bench --check BENCH_serve.json
//! ```
//!
//! `--bench` pins the full configuration (seed 42, 48 jobs, 4 workers,
//! tight-budget jobs, a planted panic, and a no-survivor core kill) so
//! the resulting `clp-serve-v1` document is byte-reproducible; `--check
//! <path>` reruns it and compares against the committed baseline with a
//! latency/throughput threshold (default 10%), exiting 1 on regression.
//!
//! `--scope` turns on the clp-scope recorder and prints the fleet
//! breakdown after the run; `--scope-json <path>` writes the full
//! `clp-scope-v1` document and `--perfetto <path>` a Chrome trace-event
//! file of the span trees and worker tracks. Scope is observational:
//! with it off the run takes the identical code path, and with it on
//! the `clp-serve-v1` report bytes do not change.
//!
//! Exit codes: 0 = drained with no check regression, 1 = `--check`
//! found a regression, 2 = usage error.

use clp_obs::ScopeOptions;
use clp_serve::{arrivals, report, service, ServiceReport};

struct Args {
    jobs: usize,
    seed: u64,
    workers: usize,
    queue_cap: usize,
    degrade_at: usize,
    mean_gap: u64,
    budget: u64,
    tight_every: usize,
    tight_budget: u64,
    retries: u32,
    plant_panic: Vec<u64>,
    kill_core: Vec<(u64, u64)>,
    json: Option<String>,
    bench: bool,
    check: Option<String>,
    threshold: f64,
    scope: bool,
    scope_period: u64,
    scope_json: Option<String>,
    perfetto: Option<String>,
}

fn die(msg: &str) -> ! {
    eprintln!("clp-serve: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        jobs: 24,
        seed: 7,
        workers: 4,
        queue_cap: 8,
        degrade_at: 6,
        mean_gap: 3_000,
        budget: 200_000,
        tight_every: 0,
        tight_budget: 2_500,
        retries: 3,
        plant_panic: Vec::new(),
        kill_core: Vec::new(),
        json: None,
        bench: false,
        check: None,
        threshold: 10.0,
        scope: false,
        scope_period: 5_000,
        scope_json: None,
        perfetto: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut flag_value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{flag} requires a value")))
        };
        macro_rules! parse_into {
            ($field:expr, $flag:expr) => {{
                let v = flag_value($flag);
                match v.parse() {
                    Ok(x) => $field = x,
                    Err(_) => die(&format!("bad {} value `{v}`", $flag)),
                }
            }};
        }
        match a.as_str() {
            "--jobs" => parse_into!(args.jobs, "--jobs"),
            "--seed" => parse_into!(args.seed, "--seed"),
            "--workers" => parse_into!(args.workers, "--workers"),
            "--queue-cap" => parse_into!(args.queue_cap, "--queue-cap"),
            "--degrade-at" => parse_into!(args.degrade_at, "--degrade-at"),
            "--mean-gap" => parse_into!(args.mean_gap, "--mean-gap"),
            "--budget" => parse_into!(args.budget, "--budget"),
            "--tight-every" => parse_into!(args.tight_every, "--tight-every"),
            "--tight-budget" => parse_into!(args.tight_budget, "--tight-budget"),
            "--retries" => parse_into!(args.retries, "--retries"),
            "--threshold" => parse_into!(args.threshold, "--threshold"),
            "--plant-panic" => {
                let v = flag_value("--plant-panic");
                match v.parse() {
                    Ok(id) => args.plant_panic.push(id),
                    Err(_) => die(&format!("bad --plant-panic job id `{v}`")),
                }
            }
            "--kill-core" => {
                // JOB@CYCLE: job JOB's first attempt kills its (only)
                // core at CYCLE — a guaranteed recovery failure.
                let v = flag_value("--kill-core");
                let parsed = v
                    .split_once('@')
                    .and_then(|(j, c)| Some((j.trim().parse().ok()?, c.trim().parse().ok()?)));
                match parsed {
                    Some(jc) => args.kill_core.push(jc),
                    None => die(&format!("bad --kill-core `{v}` (expected JOB@CYCLE)")),
                }
            }
            "--json" => args.json = Some(flag_value("--json")),
            "--bench" => args.bench = true,
            "--check" => args.check = Some(flag_value("--check")),
            "--scope" => args.scope = true,
            "--scope-period" => parse_into!(args.scope_period, "--scope-period"),
            "--scope-json" => args.scope_json = Some(flag_value("--scope-json")),
            "--perfetto" => args.perfetto = Some(flag_value("--perfetto")),
            _ => die(&format!("unexpected argument `{a}`")),
        }
    }
    args
}

/// The pinned benchmark configuration: fixed seed, a planted panic, a
/// no-survivor core kill, and tight-budget jobs, so the committed
/// `BENCH_serve.json` exercises every fault domain and reproduces
/// byte-for-byte.
fn bench_args(mut args: Args) -> Args {
    args.jobs = 48;
    args.seed = 42;
    args.workers = 4;
    args.queue_cap = 8;
    args.degrade_at = 6;
    args.mean_gap = 3_000;
    args.budget = 200_000;
    args.tight_every = 7;
    args.tight_budget = 2_500;
    args.retries = 3;
    args.plant_panic = vec![5, 23];
    args.kill_core = vec![(11, 800)];
    args
}

fn main() {
    let mut args = parse_args();
    if args.bench {
        args = bench_args(args);
    }
    let acfg = arrivals::ArrivalConfig {
        jobs: args.jobs,
        seed: args.seed,
        mean_gap: args.mean_gap.max(1),
        budget: args.budget,
        tight_every: args.tight_every,
        tight_budget: args.tight_budget,
        plant_panic: args.plant_panic.clone(),
        kill_at: args.kill_core.clone(),
    };
    let scfg = service::ServiceConfig {
        workers: args.workers.max(1),
        queue_cap: args.queue_cap.max(1),
        degrade_at: args.degrade_at.max(1),
        max_retries: args.retries,
        seed: args.seed,
        ..service::ServiceConfig::default()
    };
    let schedule = arrivals::generate(&acfg);
    let want_scope = args.scope || args.scope_json.is_some() || args.perfetto.is_some();
    let sopts = want_scope.then(|| ScopeOptions {
        period: args.scope_period.max(1),
    });
    let (result, scope) = service::serve_scoped(schedule, &scfg, sopts.as_ref());
    let rep = ServiceReport::new(&acfg, &scfg, &result);

    let t = &rep.totals;
    println!(
        "clp-serve: {} submitted, {} completed, {} shed, {} invalid, \
         {} permanent, {} exhausted ({} retries)",
        t.submitted,
        t.completed,
        t.rejected_overloaded,
        t.rejected_invalid,
        t.failed_permanent,
        t.exhausted,
        t.retries,
    );
    println!(
        "[faults: {} deadline kills, {} panics, {} respawns, {} transient, {} degraded]",
        t.deadline_kills, t.panics, t.respawns, t.transient_failures, t.degraded,
    );
    println!(
        "[cache: {} hits, {} misses, {} programs, {} lint warnings]",
        t.cache_hits, t.cache_misses, t.cache_entries, t.lint_warnings,
    );
    // No completed jobs means no percentiles; print `-` rather than a
    // fake zero.
    let tick = |v: Option<u64>| v.map_or("-".to_string(), |t| t.to_string());
    println!(
        "[latency: p50 {} p90 {} p99 {} max {} ticks; throughput {:.3}/ktick; drained at {}]",
        tick(rep.latency_ticks.p50),
        tick(rep.latency_ticks.p90),
        tick(rep.latency_ticks.p99),
        tick(rep.latency_ticks.max),
        rep.throughput_per_ktick,
        t.drained_at,
    );

    if let Some(path) = &args.json {
        std::fs::write(path, rep.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write `{path}`: {e}")));
        println!("[report -> {path}]");
    }
    if let Some(sr) = &scope {
        if args.scope {
            println!("{}", sr.render_summary());
            print!("{}", sr.render_fleet());
        }
        if let Some(path) = &args.scope_json {
            std::fs::write(path, sr.to_json())
                .unwrap_or_else(|e| die(&format!("cannot write `{path}`: {e}")));
            println!("[scope -> {path}]");
        }
        if let Some(path) = &args.perfetto {
            std::fs::write(path, sr.to_perfetto())
                .unwrap_or_else(|e| die(&format!("cannot write `{path}`: {e}")));
            println!("[perfetto -> {path}]");
        }
    }
    if let Some(path) = &args.check {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read baseline `{path}`: {e}")));
        let baseline: serde::Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| die(&format!("baseline `{path}` is not JSON: {e}")));
        let regressions = report::check(&baseline, &rep, args.threshold);
        if regressions.is_empty() {
            println!(
                "[check: OK against {path} (threshold {:.0}%)]",
                args.threshold
            );
        } else {
            for r in &regressions {
                eprintln!("clp-serve: REGRESSION: {r}");
            }
            std::process::exit(1);
        }
    }
}
