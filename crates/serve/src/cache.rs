//! Content-hashed cache of compiled hyperblock programs and their lint
//! results.
//!
//! The scheduler — never a worker — performs lookups and inserts, at
//! virtual-time events in deterministic order, so hit/miss counts are a
//! pure function of the job schedule and can be asserted byte-for-byte
//! in the replay golden. Workers only *compile* on a miss and hand the
//! finished [`CompiledWorkload`] back for insertion at the completion
//! event.

use clp_core::CompiledWorkload;
use clp_workloads::Workload;
use std::collections::HashMap;
use std::sync::Arc;

/// FNV-1a over the `Debug` rendering of everything that affects
/// compilation and verification: the IR program, the arguments, the
/// initial memory, and the check spec. Two workloads with identical
/// content share one cache entry regardless of name.
#[must_use]
pub fn content_hash(w: &Workload) -> u64 {
    let rendered = format!(
        "{:?}|{:?}|{:?}|{:?}",
        w.program, w.args, w.init_mem, w.check
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in rendered.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One cached compilation: the compiled program (with its golden) plus
/// the lint warning count recorded when it was first compiled.
#[derive(Clone)]
pub struct CacheEntry {
    /// The compiled workload, shared with in-flight executions.
    pub compiled: Arc<CompiledWorkload>,
    /// Warning-severity lint diagnostics found at compile time.
    pub lint_warnings: u64,
}

/// The compile cache, with hit/miss accounting.
#[derive(Default)]
pub struct CompileCache {
    entries: HashMap<u64, CacheEntry>,
    hits: u64,
    misses: u64,
}

impl CompileCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a content hash, counting the hit or miss.
    pub fn lookup(&mut self, key: u64) -> Option<CacheEntry> {
        match self.entries.get(&key) {
            Some(e) => {
                self.hits += 1;
                Some(e.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly compiled entry. A concurrent miss on the same
    /// key may insert twice; the first insertion wins so every later
    /// hit shares one allocation.
    pub fn insert(&mut self, key: u64, entry: CacheEntry) {
        self.entries.entry(key).or_insert(entry);
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Distinct programs cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total lint warnings across distinct cached programs.
    #[must_use]
    pub fn lint_warnings(&self) -> u64 {
        self.entries.values().map(|e| e.lint_warnings).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clp_workloads::suite;

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        let a = suite::by_name("conv").unwrap();
        let b = suite::by_name("conv").unwrap();
        assert_eq!(content_hash(&a), content_hash(&b));
        let c = suite::by_name("bezier").unwrap();
        assert_ne!(content_hash(&a), content_hash(&c));
        // Same program, different args: different entry.
        let mut d = suite::by_name("conv").unwrap();
        d.args.push(1);
        assert_ne!(content_hash(&a), content_hash(&d));
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut cache = CompileCache::new();
        let w = suite::by_name("conv").unwrap();
        let key = content_hash(&w);
        assert!(cache.lookup(key).is_none());
        let cw = clp_core::compile_workload(&w).unwrap();
        cache.insert(
            key,
            CacheEntry {
                compiled: Arc::new(cw),
                lint_warnings: 2,
            },
        );
        assert!(cache.lookup(key).is_some());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lint_warnings(), 2);
    }

    #[test]
    fn first_insert_wins() {
        let mut cache = CompileCache::new();
        let w = suite::by_name("conv").unwrap();
        let key = content_hash(&w);
        let cw = Arc::new(clp_core::compile_workload(&w).unwrap());
        cache.insert(
            key,
            CacheEntry {
                compiled: cw.clone(),
                lint_warnings: 1,
            },
        );
        cache.insert(
            key,
            CacheEntry {
                compiled: cw,
                lint_warnings: 9,
            },
        );
        assert_eq!(cache.lint_warnings(), 1);
    }
}
