//! The deterministic service loop: virtual-time scheduling over a
//! physical worker pool.
//!
//! All policy decisions — admission, shedding, degradation, dispatch,
//! retry timing — happen on a *virtual* tick clock, with event classes
//! processed in a fixed order per tick (completions by worker index,
//! then retry releases by job id, then arrivals in schedule order, then
//! dispatch by worker index). Job execution is physically parallel on
//! the pool threads, but every result is a pure function of its request,
//! so the virtual schedule — and therefore the entire service report —
//! is bit-for-bit reproducible from `(arrival schedule, config)`. No
//! wall-clock exists anywhere in this module.
//!
//! Service time charged per attempt:
//! - success: the simulated cycle count (plus the compile charge on a
//!   cache miss);
//! - deadline kill: the full budget (the watchdog ran the machine that
//!   long before reaping it);
//! - deadlock: the cycle at which the stall was detected;
//! - compose/placement/compile/golden rejections and kill-schedule
//!   validation failures: a small fixed validation charge;
//! - verify mismatch: the budget (the run finished but its exact cycle
//!   count is not reported with the error — documented pessimism);
//! - planted panic: a fixed respawn charge for disposing of the
//!   poisoned worker and spawning a fresh one.
//!
//! [`serve_scoped`] additionally threads a clp-scope [`ScopeRecorder`]
//! through the same event points, recording per-job lifecycle spans,
//! worker occupancy, the fleet cycle book, and a service time series.
//! The recorder only *observes* — it is driven by values the scheduler
//! already computed and feeds nothing back — so scope-off runs take the
//! identical code path and scope-on runs replay byte-identically.

use crate::cache::{content_hash, CacheEntry, CompileCache};
use crate::job::{JobOutcome, JobSpec, Rejected};
use crate::pool::{ExecOutcome, ExecRequest, ExecResponse, WorkerPool};
use clp_core::{FailureClass, RunFailure};
use clp_obs::{AttemptEnd, ScopeOptions, ScopeRecorder, ScopeReport};
use clp_sim::fault::Prng;
use clp_sim::{FaultPlan, RunError};
use clp_workloads::Workload;
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};

/// Service policy knobs. Everything is in virtual ticks; nothing reads
/// a clock.
#[derive(Clone, Debug, Serialize)]
pub struct ServiceConfig {
    /// Worker slots (and physical pool threads).
    pub workers: usize,
    /// Hard bound of the submission queue: an arrival finding this many
    /// jobs queued is shed with [`Rejected::Overloaded`].
    pub queue_cap: usize,
    /// Degradation watermark: an arrival finding at least this many jobs
    /// queued is admitted at *half* its requested composition size
    /// (minimum 1 core) — graceful degradation before refusal.
    pub degrade_at: usize,
    /// Retries allowed per job beyond the first attempt.
    pub max_retries: u32,
    /// Base backoff delay in ticks; attempt `k` waits
    /// `base << min(k-1, cap)` plus seeded jitter in `0..base`.
    pub backoff_base: u64,
    /// Cap on the backoff shift.
    pub backoff_cap: u32,
    /// Ticks charged for compiling on a cache miss.
    pub compile_ticks: u64,
    /// Ticks charged for disposing of a poisoned worker and respawning.
    pub respawn_ticks: u64,
    /// Ticks charged for attempts rejected before the machine ran
    /// (compose/placement errors, kill-schedule validation).
    pub validate_ticks: u64,
    /// Seed of the retry-jitter PRNG stream (mixed with job id and
    /// attempt, so jitter is independent of event interleaving).
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_cap: 8,
            degrade_at: 6,
            max_retries: 3,
            backoff_base: 500,
            backoff_cap: 5,
            compile_ticks: 2_000,
            respawn_ticks: 1_000,
            validate_ticks: 50,
            seed: 1,
        }
    }
}

/// Aggregate counters of one service run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ServiceTotals {
    /// Jobs submitted (admitted + rejected).
    pub submitted: u64,
    /// Jobs admitted into the queue.
    pub admitted: u64,
    /// Jobs that completed and verified.
    pub completed: u64,
    /// Arrivals shed because the queue was full.
    pub rejected_overloaded: u64,
    /// Arrivals refused as malformed (cores/budget/name).
    pub rejected_invalid: u64,
    /// Jobs that failed permanently (no retry can help).
    pub failed_permanent: u64,
    /// Jobs that spent every retry without succeeding.
    pub exhausted: u64,
    /// Retry attempts scheduled.
    pub retries: u64,
    /// Attempts reaped by the deadline watchdog.
    pub deadline_kills: u64,
    /// Attempts that panicked in the worker.
    pub panics: u64,
    /// Workers respawned after poisoning.
    pub respawns: u64,
    /// Attempts that failed transiently (faults, recovery failure,
    /// placement).
    pub transient_failures: u64,
    /// Jobs admitted at a degraded (halved) composition size.
    pub degraded: u64,
    /// Compile-cache hits.
    pub cache_hits: u64,
    /// Compile-cache misses.
    pub cache_misses: u64,
    /// Distinct programs cached at drain.
    pub cache_entries: u64,
    /// Warning-severity lint diagnostics across cached programs.
    pub lint_warnings: u64,
    /// Largest queue depth observed.
    pub max_queue_depth: u64,
    /// Tick at which the last event was processed (full drain).
    pub drained_at: u64,
}

/// Fine-grained counters beyond [`ServiceTotals`]: the queue-depth
/// high-watermark (tracked at *every* queue mutation, retry releases
/// included), retry attempts split per [`FailureClass`], and completion
/// counts per workload class. Lives beside the totals rather than
/// inside them so the pinned `clp-serve-v1` serialization is untouched.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceDetail {
    /// Largest queue depth observed across admissions *and* retry
    /// releases (`>= totals.max_queue_depth`, which only admissions
    /// update).
    pub queue_peak: u64,
    /// First tick at which the peak was reached.
    pub queue_peak_at: u64,
    /// Retries whose triggering failure classed as transient (includes
    /// worker panics, which the service treats as transient).
    pub retries_transient: u64,
    /// Retries whose triggering failure was a deadline kill.
    pub retries_deadline: u64,
    /// The subset of transient retries caused by a worker panic.
    pub retries_panic: u64,
    /// Completed jobs per workload-class label.
    pub completed_by_class: BTreeMap<String, u64>,
}

impl ServiceDetail {
    fn note_queue(&mut self, depth: u64, now: u64) {
        if depth > self.queue_peak {
            self.queue_peak = depth;
            self.queue_peak_at = now;
        }
    }
}

/// Terminal record of one submitted job.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct JobRecord {
    /// Job id.
    pub id: u64,
    /// Workload name.
    pub workload: String,
    /// Composition size the client asked for.
    pub cores_requested: usize,
    /// Composition size actually granted (degraded under load).
    pub cores_granted: usize,
    /// Arrival tick.
    pub arrival: u64,
    /// Tick of the terminal event (arrival tick for rejections).
    pub finish: u64,
    /// Attempts executed (0 for rejections).
    pub attempts: u32,
    /// Terminal disposition.
    pub outcome: JobOutcome,
}

/// Everything a service run produces: counters, per-job records in id
/// order, and the completed-job sojourn times (finish − arrival).
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceResult {
    /// Aggregate counters.
    pub totals: ServiceTotals,
    /// Fine-grained counters (watermarks, per-class splits).
    pub detail: ServiceDetail,
    /// One record per submitted job, sorted by id.
    pub records: Vec<JobRecord>,
    /// Sojourn latencies of completed jobs, in submission order.
    pub latencies: Vec<u64>,
}

struct JobState {
    spec: JobSpec,
    workload: Workload,
    granted_cores: usize,
    arrival: u64,
    /// 0-based index of the attempt about to run.
    attempt: u32,
    /// Budget of the next attempt (escalates on deadline kills).
    budget: u64,
}

struct InFlight {
    job: JobState,
    done_at: u64,
    response: ExecResponse,
    cache_key: u64,
}

/// The run's output side, bundled so the event handlers thread one
/// mutable borrow instead of six: terminal records, latency samples,
/// both counter tiers, and (when scope is on) the span recorder.
struct Ledger {
    records: Vec<JobRecord>,
    latencies: Vec<u64>,
    totals: ServiceTotals,
    detail: ServiceDetail,
    scope: Option<ScopeRecorder>,
}

fn jitter_prng(cfg: &ServiceConfig, job_id: u64, attempt: u32) -> Prng {
    // Mix the stream id so per-(job, attempt) jitter never depends on
    // how many other jobs drew before it.
    Prng::new(cfg.seed ^ job_id.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (u64::from(attempt) << 48))
}

fn backoff_delay(cfg: &ServiceConfig, job_id: u64, attempt: u32) -> u64 {
    let base = cfg.backoff_base.max(1);
    let shift = (attempt.saturating_sub(1)).min(cfg.backoff_cap);
    let jitter = jitter_prng(cfg, job_id, attempt).next_below(base);
    (base << shift) + jitter
}

fn service_ticks(
    cfg: &ServiceConfig,
    outcome: &ExecOutcome,
    compile_miss: bool,
    budget: u64,
) -> u64 {
    let compile = if compile_miss { cfg.compile_ticks } else { 0 };
    let work = match outcome {
        ExecOutcome::Success { cycles, .. } => *cycles,
        ExecOutcome::Panicked => cfg.respawn_ticks,
        ExecOutcome::Failure(f) => match f {
            RunFailure::Run(RunError::DeadlineExceeded { budget }) => *budget,
            RunFailure::Run(RunError::CycleLimit(n)) => *n,
            RunFailure::Run(RunError::Deadlock { cycle }) => *cycle,
            RunFailure::Run(_) => cfg.validate_ticks,
            RunFailure::Compose(_)
            | RunFailure::Placement(_)
            | RunFailure::Compile(_)
            | RunFailure::Golden(_) => cfg.validate_ticks,
            RunFailure::Verify(_) => budget,
        },
    };
    compile + work.max(1)
}

/// Runs the service over a pre-generated arrival schedule (strictly
/// increasing ticks) and drains it completely: every admitted job
/// reaches a terminal record before the function returns, and the pool
/// threads are joined on drop — the graceful-shutdown contract.
#[must_use]
pub fn serve(schedule: Vec<(u64, JobSpec)>, cfg: &ServiceConfig) -> ServiceResult {
    serve_scoped(schedule, cfg, None).0
}

/// [`serve`] with an optional clp-scope recording layer. With
/// `scope: None` this *is* `serve` — the recorder hooks compile to a
/// skipped `Option` branch and per-attempt profiling stays off, so the
/// virtual schedule and the [`ServiceResult`] are identical either way
/// (profiling never changes simulated cycle counts). With scope on, the
/// returned [`ScopeReport`] is a pure function of
/// `(arrival schedule, config, scope options)` and replays
/// byte-identically.
#[must_use]
pub fn serve_scoped(
    schedule: Vec<(u64, JobSpec)>,
    cfg: &ServiceConfig,
    scope: Option<&ScopeOptions>,
) -> (ServiceResult, Option<ScopeReport>) {
    let mut pool = WorkerPool::new(cfg.workers);
    let mut cache = CompileCache::new();
    let mut workers: Vec<Option<InFlight>> = (0..cfg.workers.max(1)).map(|_| None).collect();
    let mut queue: VecDeque<JobState> = VecDeque::new();
    let mut retry_bin: Vec<(u64, JobState)> = Vec::new();
    let mut ledger = Ledger {
        records: Vec::new(),
        latencies: Vec::new(),
        totals: ServiceTotals::default(),
        detail: ServiceDetail::default(),
        scope: scope.map(|o| ScopeRecorder::new(o, cfg.workers.max(1))),
    };
    let profile_jobs = ledger.scope.is_some();
    let mut arrivals = schedule.into_iter().peekable();
    let mut now = 0u64;

    loop {
        // Pick the next event tick across completions, retry releases,
        // and arrivals. No event left means the service has drained.
        let mut next: Option<u64> = None;
        let mut consider = |t: u64| next = Some(next.map_or(t, |n| n.min(t)));
        for w in workers.iter().flatten() {
            consider(w.done_at);
        }
        for (t, _) in &retry_bin {
            consider(*t);
        }
        if let Some((t, _)) = arrivals.peek() {
            consider(*t);
        }
        let Some(t) = next else { break };
        now = t;

        // 1. Completions, in worker-index order.
        for slot in workers.iter_mut() {
            if slot.as_ref().is_some_and(|f| f.done_at == now) {
                let f = slot.take().expect("checked");
                complete(f, now, cfg, &mut cache, &mut retry_bin, &mut ledger);
            }
        }

        // 2. Retry releases, in job-id order.
        let mut due: Vec<JobState> = Vec::new();
        let mut waiting: Vec<(u64, JobState)> = Vec::with_capacity(retry_bin.len());
        for (t, job) in retry_bin.drain(..) {
            if t == now {
                due.push(job);
            } else {
                waiting.push((t, job));
            }
        }
        retry_bin = waiting;
        due.sort_by_key(|j| j.spec.id);
        // Retries bypass admission: the job was already admitted once,
        // and shedding a half-done job would turn a transient fault into
        // a client-visible loss.
        queue.extend(due);
        ledger.detail.note_queue(queue.len() as u64, now);

        // 3. Arrivals, in schedule order.
        while arrivals.peek().is_some_and(|(t, _)| *t == now) {
            let (_, spec) = arrivals.next().expect("peeked");
            admit(spec, now, cfg, &mut queue, &mut ledger);
        }

        // 4. Dispatch to free workers, in worker-index order. The whole
        // batch is sent before any response is awaited, so independent
        // jobs execute physically in parallel; the barrier keeps every
        // virtual decision downstream of deterministic state only.
        let mut batch: Vec<(usize, JobState, u64, bool)> = Vec::new();
        for (i, slot) in workers.iter().enumerate() {
            if slot.is_some() {
                continue;
            }
            let Some(job) = queue.pop_front() else { break };
            let key = content_hash(&job.workload);
            let hit = cache.lookup(key);
            let miss = hit.is_none();
            let first_attempt = job.attempt == 0;
            pool.dispatch(
                i,
                ExecRequest {
                    spec: job.spec.clone(),
                    workload: job.workload.clone(),
                    cores: job.granted_cores,
                    budget: job.budget,
                    // Attempt-0 faults only: a retry runs on fresh
                    // hardware with the transient condition cleared.
                    faults: if first_attempt {
                        job.spec.faults
                    } else {
                        FaultPlan::none()
                    },
                    sabotage: first_attempt && job.spec.sabotage,
                    profile: profile_jobs,
                    compiled: hit.map(|e| e.compiled),
                },
            );
            batch.push((i, job, key, miss));
        }
        for (i, job, key, miss) in batch {
            let response = pool.await_response(i);
            let ticks = service_ticks(cfg, &response.outcome, miss, job.budget);
            if let Some(s) = ledger.scope.as_mut() {
                s.dispatched(job.spec.id, i, now, now + ticks, !miss, cfg.compile_ticks);
            }
            workers[i] = Some(InFlight {
                done_at: now + ticks,
                job,
                response,
                cache_key: key,
            });
        }

        // End of tick: close a series interval if one is due, with the
        // queue and workers as they stand after dispatch.
        if let Some(s) = ledger.scope.as_mut() {
            let busy = workers.iter().filter(|w| w.is_some()).count();
            s.sample(now, queue.len(), busy);
        }
    }

    ledger.totals.cache_hits = cache.hits();
    ledger.totals.cache_misses = cache.misses();
    ledger.totals.cache_entries = cache.len() as u64;
    ledger.totals.lint_warnings = cache.lint_warnings();
    ledger.totals.respawns = pool.respawns();
    ledger.totals.drained_at = now;
    ledger.records.sort_by_key(|r| r.id);
    let report = ledger.scope.map(|s| s.finish(now, cfg.seed));
    (
        ServiceResult {
            totals: ledger.totals,
            detail: ledger.detail,
            records: ledger.records,
            latencies: ledger.latencies,
        },
        report,
    )
}

fn admit(
    spec: JobSpec,
    now: u64,
    cfg: &ServiceConfig,
    queue: &mut VecDeque<JobState>,
    ledger: &mut Ledger,
) {
    ledger.totals.submitted += 1;
    // Record the typed rejection and (scope on) the terminal-only span
    // tree; `class` is the workload-class label when the name resolved.
    let reject = |ledger: &mut Ledger, spec: &JobSpec, class: &str, why: Rejected| {
        if let Some(s) = ledger.scope.as_mut() {
            let shed = matches!(why, Rejected::Overloaded { .. });
            s.rejected(spec.id, &spec.workload, class, spec.cores, now, shed);
        }
        ledger.records.push(JobRecord {
            id: spec.id,
            workload: spec.workload.clone(),
            cores_requested: spec.cores,
            cores_granted: 0,
            arrival: now,
            finish: now,
            attempts: 0,
            outcome: JobOutcome::Rejected(why),
        });
    };
    let Some(workload) = clp_workloads::suite::by_name(&spec.workload) else {
        ledger.totals.rejected_invalid += 1;
        let why = Rejected::UnknownWorkload {
            name: spec.workload.clone(),
        };
        reject(ledger, &spec, "unknown", why);
        return;
    };
    let class = workload.class.label();
    if spec.cores == 0 || !spec.cores.is_power_of_two() || spec.cores > 32 {
        ledger.totals.rejected_invalid += 1;
        reject(ledger, &spec, class, Rejected::InvalidCores { cores: spec.cores });
        return;
    }
    if spec.budget == 0 {
        ledger.totals.rejected_invalid += 1;
        reject(ledger, &spec, class, Rejected::ZeroBudget);
        return;
    }
    let depth = queue.len();
    if depth >= cfg.queue_cap {
        ledger.totals.rejected_overloaded += 1;
        reject(ledger, &spec, class, Rejected::Overloaded { depth });
        return;
    }
    // Graceful degradation: shrink the composition before ever refusing
    // work. Halving a power of two stays a power of two.
    let mut granted = spec.cores;
    if depth >= cfg.degrade_at && granted > 1 {
        granted /= 2;
        ledger.totals.degraded += 1;
    }
    ledger.totals.admitted += 1;
    if let Some(s) = ledger.scope.as_mut() {
        s.admitted(spec.id, &spec.workload, class, granted, now);
    }
    let budget = spec.budget;
    queue.push_back(JobState {
        spec,
        workload,
        granted_cores: granted,
        arrival: now,
        attempt: 0,
        budget,
    });
    ledger.totals.max_queue_depth = ledger.totals.max_queue_depth.max(queue.len() as u64);
    ledger.detail.note_queue(queue.len() as u64, now);
}

fn complete(
    f: InFlight,
    now: u64,
    cfg: &ServiceConfig,
    cache: &mut CompileCache,
    retry_bin: &mut Vec<(u64, JobState)>,
    ledger: &mut Ledger,
) {
    let InFlight {
        mut job,
        response,
        cache_key,
        ..
    } = f;
    // Cache insertion happens here, at the completion event, in
    // deterministic order — workers never touch the cache.
    if let Some((compiled, lint_warnings)) = response.compiled_here {
        cache.insert(
            cache_key,
            CacheEntry {
                compiled,
                lint_warnings,
            },
        );
    }
    let finish_record = |ledger: &mut Ledger, job: &JobState, outcome: JobOutcome| {
        ledger.records.push(JobRecord {
            id: job.spec.id,
            workload: job.spec.workload.clone(),
            cores_requested: job.spec.cores,
            cores_granted: job.granted_cores,
            arrival: job.arrival,
            finish: now,
            attempts: job.attempt + 1,
            outcome,
        });
    };
    let (error, class, was_panic) = match response.outcome {
        ExecOutcome::Success { cycles, profile } => {
            ledger.totals.completed += 1;
            *ledger
                .detail
                .completed_by_class
                .entry(job.workload.class.label().to_string())
                .or_insert(0) += 1;
            ledger.latencies.push(now - job.arrival);
            if let Some(s) = ledger.scope.as_mut() {
                s.completed(job.spec.id, now, cycles, profile.as_deref());
            }
            finish_record(ledger, &job, JobOutcome::Completed { cycles });
            return;
        }
        ExecOutcome::Panicked => {
            ledger.totals.panics += 1;
            (
                "panic: worker poisoned and respawned".to_string(),
                FailureClass::Transient,
                true,
            )
        }
        ExecOutcome::Failure(failure) => {
            let class = failure.class();
            match class {
                FailureClass::Permanent => {
                    ledger.totals.failed_permanent += 1;
                    if let Some(s) = ledger.scope.as_mut() {
                        s.failed(job.spec.id, now);
                    }
                    finish_record(
                        ledger,
                        &job,
                        JobOutcome::Failed {
                            error: failure.to_string(),
                        },
                    );
                    return;
                }
                FailureClass::Transient => ledger.totals.transient_failures += 1,
                FailureClass::DeadlineKill => {
                    ledger.totals.deadline_kills += 1;
                    // A killed job only makes sense to retry with more
                    // headroom.
                    job.budget = job.budget.saturating_mul(2);
                }
            }
            (failure.to_string(), class, false)
        }
    };
    debug_assert_ne!(class, FailureClass::Permanent);
    let attempt_end = if was_panic {
        AttemptEnd::Panicked
    } else if class == FailureClass::DeadlineKill {
        AttemptEnd::DeadlineKill
    } else {
        AttemptEnd::Transient
    };
    if job.attempt >= cfg.max_retries {
        ledger.totals.exhausted += 1;
        if let Some(s) = ledger.scope.as_mut() {
            s.exhausted(job.spec.id, now, attempt_end);
        }
        finish_record(
            ledger,
            &job,
            JobOutcome::Exhausted {
                attempts: job.attempt + 1,
                last_error: error,
            },
        );
        return;
    }
    job.attempt += 1;
    ledger.totals.retries += 1;
    if class == FailureClass::DeadlineKill {
        ledger.detail.retries_deadline += 1;
    } else {
        ledger.detail.retries_transient += 1;
    }
    if was_panic {
        ledger.detail.retries_panic += 1;
    }
    let delay = backoff_delay(cfg, job.spec.id, job.attempt);
    if let Some(s) = ledger.scope.as_mut() {
        s.retry(job.spec.id, now, now + delay, attempt_end);
    }
    retry_bin.push((now + delay, job));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn a_single_job_completes_and_drains() {
        let sched = vec![(5, JobSpec::new(0, "conv", 8, 200_000))];
        let r = serve(sched, &quick_cfg());
        assert_eq!(r.totals.submitted, 1);
        assert_eq!(r.totals.completed, 1);
        assert_eq!(r.records.len(), 1);
        assert!(r.records[0].outcome.is_completed());
        assert_eq!(r.totals.cache_misses, 1);
        assert!(r.totals.drained_at > 5);
        assert_eq!(r.latencies.len(), 1);
    }

    #[test]
    fn repeated_content_hits_the_cache() {
        let sched = vec![
            (1, JobSpec::new(0, "conv", 8, 200_000)),
            // Far enough apart that job 0 has completed (and inserted)
            // before job 1 dispatches.
            (200_000, JobSpec::new(1, "conv", 8, 200_000)),
        ];
        let r = serve(sched, &quick_cfg());
        assert_eq!(r.totals.completed, 2);
        assert_eq!(r.totals.cache_misses, 1);
        assert_eq!(r.totals.cache_hits, 1);
        assert_eq!(r.totals.cache_entries, 1);
    }

    #[test]
    fn malformed_jobs_are_rejected_typed() {
        let sched = vec![
            (1, JobSpec::new(0, "nonesuch", 8, 1_000)),
            (2, JobSpec::new(1, "conv", 3, 1_000)),
            (3, JobSpec::new(2, "conv", 8, 0)),
        ];
        let r = serve(sched, &quick_cfg());
        assert_eq!(r.totals.rejected_invalid, 3);
        assert_eq!(r.totals.admitted, 0);
        assert!(matches!(
            &r.records[0].outcome,
            JobOutcome::Rejected(Rejected::UnknownWorkload { .. })
        ));
        assert!(matches!(
            &r.records[1].outcome,
            JobOutcome::Rejected(Rejected::InvalidCores { cores: 3 })
        ));
        assert!(matches!(
            &r.records[2].outcome,
            JobOutcome::Rejected(Rejected::ZeroBudget)
        ));
    }

    #[test]
    fn backoff_grows_and_is_deterministic() {
        let cfg = ServiceConfig::default();
        let d1 = backoff_delay(&cfg, 3, 1);
        let d2 = backoff_delay(&cfg, 3, 2);
        let d3 = backoff_delay(&cfg, 3, 3);
        assert_eq!(d1, backoff_delay(&cfg, 3, 1));
        // Exponential envelope: base<<k plus jitter < base.
        assert!((500..1_000).contains(&d1), "{d1}");
        assert!((1_000..1_500).contains(&d2), "{d2}");
        assert!((2_000..2_500).contains(&d3), "{d3}");
        // Different jobs get different jitter streams.
        assert_ne!(
            backoff_delay(&cfg, 1, 1),
            backoff_delay(&cfg, 2, 1),
            "jitter streams decorrelate by job id (overwhelmingly likely)"
        );
    }

    #[test]
    fn deadline_kill_escalates_budget_and_succeeds_on_retry() {
        // conv at 8 cores takes ~7k cycles: a 2k budget dies, 4k dies,
        // 8k succeeds — two retries with doubling.
        let sched = vec![(1, JobSpec::new(0, "conv", 8, 2_000))];
        let r = serve(sched, &quick_cfg());
        assert_eq!(r.totals.completed, 1);
        assert_eq!(r.totals.deadline_kills, 2);
        assert_eq!(r.totals.retries, 2);
        assert_eq!(r.records[0].attempts, 3);
    }

    #[test]
    fn detail_counters_split_retries_and_track_the_queue_peak() {
        // The deadline-kill scenario again: both retries are
        // deadline-classed, none transient, none panics.
        let sched = vec![(1, JobSpec::new(0, "conv", 8, 2_000))];
        let r = serve(sched, &quick_cfg());
        assert_eq!(r.detail.retries_deadline, 2);
        assert_eq!(r.detail.retries_transient, 0);
        assert_eq!(r.detail.retries_panic, 0);
        assert_eq!(r.detail.completed_by_class.get("hand_optimized"), Some(&1));
        // One job never queues deeper than 1.
        assert_eq!(r.detail.queue_peak, 1);
        assert!(r.detail.queue_peak >= r.totals.max_queue_depth);
    }

    #[test]
    fn scope_off_and_scope_on_agree_on_the_service_result() {
        // Profiling per job must not perturb the virtual schedule: the
        // scope-on run's ServiceResult equals the scope-off run's.
        let sched = || {
            vec![
                (1u64, JobSpec::new(0, "conv", 8, 2_000)),
                (500, JobSpec::new(1, "bezier", 4, 200_000)),
            ]
        };
        let off = serve(sched(), &quick_cfg());
        let (on, report) = serve_scoped(sched(), &quick_cfg(), Some(&ScopeOptions::default()));
        let rep = report.expect("scope on");
        assert_eq!(off.totals, on.totals);
        assert_eq!(off.records, on.records);
        assert_eq!(off.latencies, on.latencies);
        // The scope report saw the same history the result records.
        assert_eq!(rep.jobs.len(), 2);
        assert_eq!(rep.drained_at, on.totals.drained_at);
        assert_eq!(
            rep.fleet.total.jobs, on.totals.completed,
            "every completed job folded into the fleet book"
        );
    }
}
