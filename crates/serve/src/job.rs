//! Job vocabulary: what a client submits, why the admission controller
//! may refuse it, and what the service ultimately reports per job.

use clp_sim::FaultPlan;
use serde::Serialize;
use std::fmt;

/// A job submitted to the service: run one suite workload at one
/// composition size under a cycle-budget deadline, optionally with an
/// attempt-0 fault plan (injected faults and scheduled core kills) and
/// an optional planted worker panic (the chaos hook the robustness tests
/// lean on).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Client-assigned identifier, unique within one service run.
    pub id: u64,
    /// Suite workload name (`clp_workloads::suite::by_name`).
    pub workload: String,
    /// Requested TFlex composition size (power of two, 1..=32).
    pub cores: usize,
    /// Cycle-budget deadline for each attempt; a run that crosses it is
    /// reaped as a deadline kill (retryable with an escalated budget).
    pub budget: u64,
    /// Fault plan applied on the *first* attempt only: retries run on
    /// fresh hardware with the transient condition cleared.
    pub faults: FaultPlan,
    /// Plant a panic in the worker executing this job (attempt 0 only):
    /// exercises catch_unwind isolation, poisoned-worker disposal, and
    /// pool respawn without touching simulator internals.
    pub sabotage: bool,
}

impl JobSpec {
    /// A plain job: no faults, no sabotage.
    #[must_use]
    pub fn new(id: u64, workload: &str, cores: usize, budget: u64) -> Self {
        JobSpec {
            id,
            workload: workload.to_string(),
            cores,
            budget,
            faults: FaultPlan::none(),
            sabotage: false,
        }
    }
}

/// Why the admission controller refused a job. Every rejection is typed
/// and deterministic — under pressure the service sheds load by policy,
/// never by panicking or blocking.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum Rejected {
    /// The bounded submission queue is full; the job was shed. `depth`
    /// is the queue depth observed at arrival.
    Overloaded {
        /// Queue depth at the moment of rejection.
        depth: usize,
    },
    /// The requested composition size is not a power of two in 1..=32.
    InvalidCores {
        /// The offending request.
        cores: usize,
    },
    /// A zero cycle budget can never complete any job.
    ZeroBudget,
    /// The workload name is not in the suite.
    UnknownWorkload {
        /// The offending name.
        name: String,
    },
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::Overloaded { depth } => {
                write!(f, "overloaded: queue depth {depth} at arrival")
            }
            Rejected::InvalidCores { cores } => {
                write!(
                    f,
                    "invalid composition size {cores} (want a power of two in 1..=32)"
                )
            }
            Rejected::ZeroBudget => write!(f, "zero cycle budget"),
            Rejected::UnknownWorkload { name } => write!(f, "unknown workload `{name}`"),
        }
    }
}

impl std::error::Error for Rejected {}

/// Terminal disposition of one submitted job.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub enum JobOutcome {
    /// The job ran to completion and verified against the golden.
    Completed {
        /// Simulated cycles of the successful attempt.
        cycles: u64,
    },
    /// The admission controller refused the job.
    Rejected(Rejected),
    /// The job failed with a permanent (non-retryable) error.
    Failed {
        /// Rendered [`clp_core::RunFailure`].
        error: String,
    },
    /// Every retry was spent without a success.
    Exhausted {
        /// Attempts made (1 + retries).
        attempts: u32,
        /// Rendered error of the last attempt.
        last_error: String,
    },
}

impl JobOutcome {
    /// Whether the job completed successfully.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejections_render() {
        assert!(Rejected::Overloaded { depth: 9 }.to_string().contains("9"));
        assert!(Rejected::InvalidCores { cores: 3 }
            .to_string()
            .contains("3"));
        assert!(Rejected::UnknownWorkload { name: "x".into() }
            .to_string()
            .contains("`x`"));
    }

    #[test]
    fn outcome_predicates() {
        assert!(JobOutcome::Completed { cycles: 1 }.is_completed());
        assert!(!JobOutcome::Rejected(Rejected::ZeroBudget).is_completed());
    }
}
