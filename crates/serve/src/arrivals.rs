//! Seeded open-loop arrival generation: a deterministic job schedule
//! `(arrival_tick, JobSpec)` that is a pure function of the
//! configuration, so a whole service run replays bit-for-bit from
//! `(seed, job count)`.
//!
//! Interarrival gaps are integer-uniform in `1..=2*mean_gap - 1` — same
//! mean as an exponential clock without any platform-dependent floating
//! point (`ln`) in the replayable path.

use crate::job::JobSpec;
use clp_sim::fault::Prng;

/// Composition sizes the generator draws from (32 is left out so a
/// multiprogram-style mix never trivially monopolizes the chip).
const CORE_CHOICES: [usize; 5] = [1, 2, 4, 8, 16];

/// Configuration of the arrival generator.
#[derive(Clone, Debug)]
pub struct ArrivalConfig {
    /// Jobs to generate.
    pub jobs: usize,
    /// PRNG seed; the whole schedule is a pure function of this.
    pub seed: u64,
    /// Mean interarrival gap in virtual ticks (>= 1).
    pub mean_gap: u64,
    /// Default per-attempt cycle budget.
    pub budget: u64,
    /// Every `tight_every`-th job (1-indexed; 0 disables) gets
    /// `tight_budget` instead — tight enough to trigger deadline kills
    /// on slower workloads, exercising the escalate-and-retry path.
    pub tight_every: usize,
    /// The tight budget.
    pub tight_budget: u64,
    /// Job ids whose attempt 0 plants a worker panic.
    pub plant_panic: Vec<u64>,
    /// Job ids whose attempt 0 kills their core at the given cycle.
    /// Kill jobs are pinned to 1-core compositions so the kill always
    /// leaves no survivor — a guaranteed recovery *failure* that the
    /// retry (fault-free by policy) then absorbs.
    pub kill_at: Vec<(u64, u64)>,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig {
            jobs: 32,
            seed: 1,
            mean_gap: 3_000,
            budget: 200_000,
            tight_every: 0,
            tight_budget: 2_500,
            plant_panic: Vec::new(),
            kill_at: Vec::new(),
        }
    }
}

/// Generates the arrival schedule: strictly increasing ticks, job ids
/// `0..jobs` in arrival order.
#[must_use]
pub fn generate(cfg: &ArrivalConfig) -> Vec<(u64, JobSpec)> {
    let names: Vec<&str> = clp_workloads::suite::all().iter().map(|w| w.name).collect();
    let mut prng = Prng::new(cfg.seed);
    let mut now = 0u64;
    let mut out = Vec::with_capacity(cfg.jobs);
    for id in 0..cfg.jobs as u64 {
        let gap = if cfg.mean_gap <= 1 {
            1
        } else {
            1 + prng.next_below(2 * cfg.mean_gap - 1)
        };
        now += gap;
        let name = names[prng.next_below(names.len() as u64) as usize];
        let cores = CORE_CHOICES[prng.next_below(CORE_CHOICES.len() as u64) as usize];
        let tight = cfg.tight_every > 0 && (id as usize + 1).is_multiple_of(cfg.tight_every);
        let budget = if tight { cfg.tight_budget } else { cfg.budget };
        let mut spec = JobSpec::new(id, name, cores, budget);
        if cfg.plant_panic.contains(&id) {
            spec.sabotage = true;
        }
        if let Some(&(_, cycle)) = cfg.kill_at.iter().find(|&&(j, _)| j == id) {
            spec.cores = 1;
            spec.faults
                .add_kill(0, cycle)
                .expect("kill schedule within plan capacity");
        }
        out.push((now, spec));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic() {
        let cfg = ArrivalConfig {
            jobs: 16,
            seed: 42,
            ..ArrivalConfig::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), 16);
        for ((ta, ja), (tb, jb)) in a.iter().zip(&b) {
            assert_eq!(ta, tb);
            assert_eq!(ja, jb);
        }
    }

    #[test]
    fn seeds_change_the_schedule() {
        let mut cfg = ArrivalConfig {
            jobs: 16,
            seed: 1,
            ..ArrivalConfig::default()
        };
        let a = generate(&cfg);
        cfg.seed = 2;
        let b = generate(&cfg);
        assert!(
            a.iter().zip(&b).any(|((ta, _), (tb, _))| ta != tb),
            "different seeds should shift arrivals"
        );
    }

    #[test]
    fn arrivals_strictly_increase_and_sizes_are_valid() {
        let cfg = ArrivalConfig {
            jobs: 64,
            seed: 7,
            ..ArrivalConfig::default()
        };
        let sched = generate(&cfg);
        let mut last = 0;
        for (t, spec) in &sched {
            assert!(*t > last, "gaps are at least one tick");
            last = *t;
            assert!(CORE_CHOICES.contains(&spec.cores));
            assert!(spec.budget > 0);
        }
    }

    #[test]
    fn chaos_hooks_land_on_the_requested_jobs() {
        let cfg = ArrivalConfig {
            jobs: 12,
            seed: 3,
            tight_every: 4,
            plant_panic: vec![5],
            kill_at: vec![(7, 500)],
            ..ArrivalConfig::default()
        };
        let sched = generate(&cfg);
        let spec = |id: u64| &sched.iter().find(|(_, s)| s.id == id).unwrap().1;
        assert!(spec(5).sabotage);
        assert_eq!(spec(7).cores, 1, "kill jobs pinned to one core");
        assert!(spec(7).faults.kills.iter().any(|k| k.is_some()));
        assert_eq!(spec(3).budget, cfg.tight_budget, "4th job is tight");
        assert_eq!(spec(4).budget, cfg.budget);
    }
}
