//! The persistent worker pool: real OS threads executing simulation
//! jobs, with per-job panic isolation and poisoned-worker respawn.
//!
//! Each virtual worker slot of the service maps 1:1 to a physical
//! thread. A job runs under [`std::panic::catch_unwind`]; if it panics,
//! the worker reports the panic and then *exits* — its state is treated
//! as poisoned and discarded — and the pool spawns a fresh thread into
//! the slot. Sibling workers never observe anything but their own jobs,
//! which is what the panic-isolation test pins down cycle-for-cycle.
//!
//! Determinism: a job's result is a pure function of its request
//! (workload content, composition size, budget, fault plan), so physical
//! thread scheduling cannot leak into outcomes. The *service* keeps all
//! ordering decisions on virtual time; the pool is just muscle.

use crate::job::JobSpec;
use clp_core::{
    compile_workload, run_compiled_observed, CompiledWorkload, ObsOptions, ProcessorConfig,
    RunFailure,
};
use clp_sim::FaultPlan;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Once;
use std::thread::JoinHandle;

/// Prefix of pool thread names; the panic hook stays quiet for these so
/// planted panics don't spray backtraces over test and bench output.
const WORKER_THREAD_PREFIX: &str = "clp-serve-worker";

static HOOK: Once = Once::new();

fn install_quiet_hook() {
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_THREAD_PREFIX));
            if !in_worker {
                previous(info);
            }
        }));
    });
}

/// A request handed to a worker: one attempt of one job. The workload
/// is resolved at admission (an unknown name is a typed rejection long
/// before any worker sees it), so the worker never does name lookups.
pub struct ExecRequest {
    /// The job being attempted.
    pub spec: JobSpec,
    /// The resolved workload.
    pub workload: clp_workloads::Workload,
    /// Composition size actually granted (may be degraded below
    /// `spec.cores` under load).
    pub cores: usize,
    /// Cycle budget of *this* attempt (escalates across deadline kills).
    pub budget: u64,
    /// Fault plan of this attempt ([`FaultPlan::none`] on retries).
    pub faults: FaultPlan,
    /// Whether to plant a panic (attempt 0 of a sabotaged job).
    pub sabotage: bool,
    /// Whether to run with clp-prof cycle accounting on, so the
    /// response can carry the run-level bucket book (clp-scope folds it
    /// into the fleet book). Profiling never changes cycle counts — the
    /// PR-5 bit-identity contract — so the virtual schedule is the same
    /// either way.
    pub profile: bool,
    /// Cache-hit program, or `None` when the worker must compile.
    pub compiled: Option<std::sync::Arc<CompiledWorkload>>,
}

/// What a worker reports back.
pub enum ExecOutcome {
    /// The run completed and verified.
    Success {
        /// Simulated cycles.
        cycles: u64,
        /// The clp-prof report when the request asked for profiling
        /// (boxed: it is much larger than the rest of the response).
        profile: Option<Box<clp_obs::ProfileReport>>,
    },
    /// The run failed with a typed error.
    Failure(RunFailure),
    /// The job panicked; the worker is poisoned and has exited.
    Panicked,
}

/// A worker's response: the job id it ran, what happened, and (on a
/// cache miss) the program it compiled, for the scheduler to insert.
pub struct ExecResponse {
    /// Echo of the request's job id.
    pub job_id: u64,
    /// The outcome.
    pub outcome: ExecOutcome,
    /// Compiled on this attempt (cache miss): the program plus its lint
    /// warning count, ready for cache insertion.
    pub compiled_here: Option<(std::sync::Arc<CompiledWorkload>, u64)>,
}

/// Executes one attempt. Pure: the result depends only on the request.
fn execute(req: &ExecRequest) -> ExecResponse {
    if req.sabotage {
        panic!("planted panic in job {}", req.spec.id);
    }
    let (compiled, compiled_here) = match &req.compiled {
        Some(arc) => (arc.clone(), None),
        None => {
            let cw = match compile_workload(&req.workload) {
                Ok(cw) => std::sync::Arc::new(cw),
                Err(e) => {
                    return ExecResponse {
                        job_id: req.spec.id,
                        outcome: ExecOutcome::Failure(e),
                        compiled_here: None,
                    };
                }
            };
            let lint = clp_lint::lint_program(&cw.edge, &clp_lint::LintConfig::default());
            let warnings = lint.count(clp_lint::Severity::Warn) as u64;
            (cw.clone(), Some((cw, warnings)))
        }
    };
    let cfg = ProcessorConfig::tflex(req.cores)
        .with_faults(req.faults)
        .with_deadline(req.budget);
    let obs = ObsOptions {
        profile: req.profile,
        ..ObsOptions::default()
    };
    let outcome = match run_compiled_observed(&compiled, &cfg, &obs) {
        Ok(r) => ExecOutcome::Success {
            cycles: r.stats.cycles,
            profile: r.profile.map(Box::new),
        },
        Err(e) => ExecOutcome::Failure(e),
    };
    ExecResponse {
        job_id: req.spec.id,
        outcome,
        compiled_here,
    }
}

struct Slot {
    tx: Sender<ExecRequest>,
    rx: Receiver<ExecResponse>,
    handle: Option<JoinHandle<()>>,
}

fn spawn_worker(index: usize) -> Slot {
    let (req_tx, req_rx) = channel::<ExecRequest>();
    let (resp_tx, resp_rx) = channel::<ExecResponse>();
    let handle = std::thread::Builder::new()
        .name(format!("{WORKER_THREAD_PREFIX}-{index}"))
        .spawn(move || {
            while let Ok(req) = req_rx.recv() {
                let job_id = req.spec.id;
                match catch_unwind(AssertUnwindSafe(|| execute(&req))) {
                    Ok(resp) => {
                        if resp_tx.send(resp).is_err() {
                            return;
                        }
                    }
                    Err(_) => {
                        // Poisoned: report, then dispose of this thread.
                        // Whatever half-mutated state the job left behind
                        // dies with it; the pool respawns the slot.
                        let _ = resp_tx.send(ExecResponse {
                            job_id,
                            outcome: ExecOutcome::Panicked,
                            compiled_here: None,
                        });
                        return;
                    }
                }
            }
        })
        .expect("spawn worker thread");
    Slot {
        tx: req_tx,
        rx: resp_rx,
        handle: Some(handle),
    }
}

/// The pool: `workers` persistent threads, respawned on poisoning.
pub struct WorkerPool {
    slots: Vec<Slot>,
    respawns: u64,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        install_quiet_hook();
        WorkerPool {
            slots: (0..workers.max(1)).map(spawn_worker).collect(),
            respawns: 0,
        }
    }

    /// Number of worker slots.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Workers respawned after poisoning so far.
    #[must_use]
    pub fn respawns(&self) -> u64 {
        self.respawns
    }

    /// Hands a request to slot `i` without waiting — the service
    /// dispatches a whole batch first so independent jobs execute on
    /// their threads in parallel, then awaits in worker-index order.
    pub fn dispatch(&self, i: usize, req: ExecRequest) {
        self.slots[i].tx.send(req).expect("worker accepts requests");
    }

    /// Blocks for slot `i`'s response to its in-flight request. If the
    /// job panicked, the poisoned thread has already exited; the slot is
    /// respawned here, so the pool is whole again before the next
    /// dispatch round.
    pub fn await_response(&mut self, i: usize) -> ExecResponse {
        let resp = self.slots[i].rx.recv().expect("worker always responds");
        if matches!(resp.outcome, ExecOutcome::Panicked) {
            if let Some(h) = self.slots[i].handle.take() {
                let _ = h.join();
            }
            self.slots[i] = spawn_worker(i);
            self.respawns += 1;
        }
        resp
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close the request channels, then reap the threads.
        for slot in &mut self.slots {
            let (dead_tx, _) = channel();
            slot.tx = dead_tx;
        }
        for slot in &mut self.slots {
            if let Some(h) = slot.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain_request(id: u64, name: &str, cores: usize, budget: u64) -> ExecRequest {
        ExecRequest {
            spec: JobSpec::new(id, name, cores, budget),
            workload: clp_workloads::suite::by_name(name).expect("suite workload"),
            cores,
            budget,
            faults: FaultPlan::none(),
            sabotage: false,
            profile: false,
            compiled: None,
        }
    }

    #[test]
    fn pool_runs_a_job_and_returns_the_compile() {
        let mut pool = WorkerPool::new(1);
        pool.dispatch(0, plain_request(7, "conv", 8, 200_000));
        let resp = pool.await_response(0);
        assert_eq!(resp.job_id, 7);
        assert!(matches!(resp.outcome, ExecOutcome::Success { cycles, .. } if cycles > 100));
        assert!(resp.compiled_here.is_some(), "miss compiles");
        assert_eq!(pool.respawns(), 0);
    }

    #[test]
    fn planted_panic_poisons_and_respawns_the_worker() {
        let mut pool = WorkerPool::new(1);
        let mut req = plain_request(1, "conv", 4, 200_000);
        req.sabotage = true;
        pool.dispatch(0, req);
        let resp = pool.await_response(0);
        assert!(matches!(resp.outcome, ExecOutcome::Panicked));
        assert_eq!(pool.respawns(), 1);
        // The respawned worker is immediately serviceable.
        pool.dispatch(0, plain_request(2, "conv", 4, 200_000));
        let resp = pool.await_response(0);
        assert!(matches!(resp.outcome, ExecOutcome::Success { .. }));
    }

    #[test]
    fn deadline_kill_is_reported_as_typed_failure() {
        let mut pool = WorkerPool::new(1);
        pool.dispatch(0, plain_request(3, "conv", 8, 500));
        let resp = pool.await_response(0);
        match resp.outcome {
            ExecOutcome::Failure(f) => {
                assert_eq!(f.class(), clp_core::FailureClass::DeadlineKill);
            }
            _ => panic!("expected a deadline kill"),
        }
    }

    #[test]
    fn results_are_pure_functions_of_the_request() {
        let mut pool = WorkerPool::new(2);
        pool.dispatch(0, plain_request(1, "bezier", 4, 200_000));
        pool.dispatch(1, plain_request(2, "bezier", 4, 200_000));
        let a = pool.await_response(0);
        let b = pool.await_response(1);
        match (a.outcome, b.outcome) {
            (
                ExecOutcome::Success { cycles: ca, .. },
                ExecOutcome::Success { cycles: cb, .. },
            ) => {
                assert_eq!(ca, cb, "same request, same cycles, any thread");
            }
            _ => panic!("both succeed"),
        }
    }
}
