//! The `clp-serve-v1` report: a pinned, serde-serialized document of one
//! service run, the stats-registry export, and the CI threshold gate.
//!
//! Because the service is deterministic, the same `(seed, config)`
//! reproduces the report *byte-for-byte* — the replay golden test pins
//! that, and CI compares a fresh run against the committed
//! `BENCH_serve.json` with a latency/throughput threshold (the
//! `clp-bench --check` pattern).

use crate::arrivals::ArrivalConfig;
use crate::service::{JobRecord, ServiceConfig, ServiceDetail, ServiceResult, ServiceTotals};
use clp_obs::{LatencySummary, StatsNode};
use serde::{Serialize, Value};

/// Schema tag of the serialized report.
pub const SCHEMA: &str = "clp-serve-v1";

/// The full report document.
#[derive(Clone, Debug, Serialize)]
pub struct ServiceReport {
    /// Schema tag (`clp-serve-v1`).
    pub schema: String,
    /// Arrival-generator seed (the replay key, together with the
    /// configs echoed below).
    pub seed: u64,
    /// Jobs in the arrival schedule.
    pub jobs_generated: usize,
    /// Mean interarrival gap in ticks.
    pub mean_gap: u64,
    /// Service policy configuration (echoed for replay).
    pub config: ServiceConfig,
    /// Aggregate counters.
    pub totals: ServiceTotals,
    /// Sojourn-latency summary over completed jobs, in virtual ticks.
    pub latency_ticks: LatencySummary,
    /// Completed jobs per 1000 ticks of drained service time.
    pub throughput_per_ktick: f64,
    /// Per-job terminal records, sorted by id.
    pub jobs: Vec<JobRecord>,
}

impl ServiceReport {
    /// Assembles the report from a drained service run.
    #[must_use]
    pub fn new(arrivals: &ArrivalConfig, cfg: &ServiceConfig, result: &ServiceResult) -> Self {
        let mut samples = result.latencies.clone();
        let latency = LatencySummary::from_samples(&mut samples);
        let drained = result.totals.drained_at.max(1);
        ServiceReport {
            schema: SCHEMA.to_string(),
            seed: arrivals.seed,
            jobs_generated: arrivals.jobs,
            mean_gap: arrivals.mean_gap,
            config: cfg.clone(),
            totals: result.totals,
            latency_ticks: latency,
            throughput_per_ktick: result.totals.completed as f64 * 1000.0 / drained as f64,
            jobs: result.records.clone(),
        }
    }

    /// Pinned pretty-printed JSON (byte-stable for a given run).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Exports the run through the stats registry as a `serve` subtree,
    /// the same shape every other subsystem uses (`serve/completed`,
    /// `serve/cache/hits`, `serve/latency/p99`, ...).
    #[must_use]
    pub fn stats_node(&self) -> StatsNode {
        let t = &self.totals;
        StatsNode::new("serve")
            .count("submitted", t.submitted)
            .count("admitted", t.admitted)
            .count("completed", t.completed)
            .count("rejected_overloaded", t.rejected_overloaded)
            .count("rejected_invalid", t.rejected_invalid)
            .count("failed_permanent", t.failed_permanent)
            .count("exhausted", t.exhausted)
            .count("retries", t.retries)
            .count("deadline_kills", t.deadline_kills)
            .count("panics", t.panics)
            .count("respawns", t.respawns)
            .count("transient_failures", t.transient_failures)
            .count("degraded", t.degraded)
            .count("max_queue_depth", t.max_queue_depth)
            .count("drained_at", t.drained_at)
            .gauge("throughput_per_ktick", self.throughput_per_ktick)
            .child(
                StatsNode::new("cache")
                    .count("hits", t.cache_hits)
                    .count("misses", t.cache_misses)
                    .count("entries", t.cache_entries)
                    .count("lint_warnings", t.lint_warnings),
            )
            .child(self.latency_ticks.to_node("latency"))
    }

    /// [`ServiceReport::stats_node`] extended with the fine-grained
    /// [`ServiceDetail`] counters: `serve/queue/peak` (the high-watermark
    /// over *all* queue mutations, retry releases included),
    /// `serve/retries_by/<failure class>`, and
    /// `serve/completed_by_class/<workload class>`. Kept out of the
    /// pinned `clp-serve-v1` document so the serialization stays stable.
    #[must_use]
    pub fn stats_node_detailed(&self, detail: &ServiceDetail) -> StatsNode {
        let mut by_class = StatsNode::new("completed_by_class");
        for (label, n) in &detail.completed_by_class {
            by_class = by_class.count(label, *n);
        }
        self.stats_node()
            .child(
                StatsNode::new("queue")
                    .count("peak", detail.queue_peak)
                    .count("peak_at", detail.queue_peak_at),
            )
            .child(
                StatsNode::new("retries_by")
                    .count("transient", detail.retries_transient)
                    .count("deadline_kill", detail.retries_deadline)
                    .count("panic", detail.retries_panic),
            )
            .child(by_class)
    }
}

/// Compares a fresh report against a committed baseline document.
///
/// Counters that determinism pins exactly (completed, rejections,
/// panics, respawns, deadline kills) must match; the latency p99 and
/// throughput may drift by at most `threshold_pct` percent — tick
/// charging is policy, not physics, and the gate should not weld it in
/// place. Returns human-readable regression lines (empty = pass).
#[must_use]
pub fn check(baseline: &Value, current: &ServiceReport, threshold_pct: f64) -> Vec<String> {
    let mut regressions = Vec::new();
    let get = |path: &[&str]| -> Option<f64> {
        let mut v = baseline;
        for key in path {
            v = v.get(key);
        }
        v.as_f64()
    };
    if baseline.get("schema").as_str() != Some(SCHEMA) {
        regressions.push(format!("baseline is not a {SCHEMA} document"));
        return regressions;
    }
    let exact: [(&str, u64); 7] = [
        ("completed", current.totals.completed),
        ("rejected_overloaded", current.totals.rejected_overloaded),
        ("rejected_invalid", current.totals.rejected_invalid),
        ("deadline_kills", current.totals.deadline_kills),
        ("panics", current.totals.panics),
        ("respawns", current.totals.respawns),
        ("exhausted", current.totals.exhausted),
    ];
    for (name, got) in exact {
        match get(&["totals", name]) {
            Some(want) if (want - got as f64).abs() < 0.5 => {}
            Some(want) => regressions.push(format!("totals/{name}: baseline {want}, got {got}")),
            None => regressions.push(format!("baseline is missing totals/{name}")),
        }
    }
    let frac = threshold_pct / 100.0;
    if let Some(base_p99) = get(&["latency_ticks", "p99"]) {
        // A current run with no completions has no p99; the exact
        // `completed` counter above already flags that divergence.
        let got = current.latency_ticks.p99.map_or(0.0, |v| v as f64);
        if got > base_p99 * (1.0 + frac) {
            regressions.push(format!(
                "latency p99 regressed: baseline {base_p99:.0} ticks, got {got:.0} \
                 (> +{threshold_pct}%)"
            ));
        }
    } else {
        regressions.push("baseline is missing latency_ticks/p99".to_string());
    }
    if let Some(base_tp) = get(&["throughput_per_ktick"]) {
        let got = current.throughput_per_ktick;
        if got < base_tp * (1.0 - frac) {
            regressions.push(format!(
                "throughput regressed: baseline {base_tp:.3}/ktick, got {got:.3} \
                 (< -{threshold_pct}%)"
            ));
        }
    } else {
        regressions.push("baseline is missing throughput_per_ktick".to_string());
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::generate;
    use crate::service::serve;

    fn small_report() -> ServiceReport {
        let acfg = ArrivalConfig {
            jobs: 4,
            seed: 9,
            mean_gap: 5_000,
            ..ArrivalConfig::default()
        };
        let scfg = ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        };
        let result = serve(generate(&acfg), &scfg);
        ServiceReport::new(&acfg, &scfg, &result)
    }

    #[test]
    fn report_serializes_with_schema_tag() {
        let r = small_report();
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"clp-serve-v1\""));
        let v: Value = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(v["seed"].as_f64(), Some(9.0));
    }

    #[test]
    fn stats_node_exports_the_serve_subtree() {
        let r = small_report();
        let node = r.stats_node();
        assert_eq!(
            node.lookup("completed").map(|m| m.as_f64()),
            Some(r.totals.completed as f64)
        );
        assert!(node.lookup("cache/misses").is_some());
        assert!(node.lookup("latency/p99").is_some());
    }

    #[test]
    fn detailed_stats_node_adds_watermark_retry_and_class_splits() {
        let acfg = ArrivalConfig {
            jobs: 4,
            seed: 9,
            mean_gap: 5_000,
            ..ArrivalConfig::default()
        };
        let scfg = ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        };
        let result = serve(generate(&acfg), &scfg);
        let r = ServiceReport::new(&acfg, &scfg, &result);
        let node = r.stats_node_detailed(&result.detail);
        assert_eq!(
            node.lookup("queue/peak").map(|m| m.as_f64()),
            Some(result.detail.queue_peak as f64)
        );
        assert!(node.lookup("retries_by/transient").is_some());
        assert!(node.lookup("retries_by/deadline_kill").is_some());
        // The per-class splits sum to the aggregate completion counter.
        let split: u64 = result.detail.completed_by_class.values().sum();
        assert_eq!(split, result.totals.completed);
        // The base subtree is still there.
        assert!(node.lookup("completed").is_some());
        assert!(node.lookup("cache/misses").is_some());
    }

    /// Replaces a nested object field (the vendored `Value` has no
    /// `IndexMut`; its objects are plain `Vec<(String, Value)>` pairs).
    fn set(v: &mut Value, path: &[&str], new: Value) {
        let Value::Object(fields) = v else {
            panic!("not an object at {path:?}")
        };
        let slot = fields
            .iter_mut()
            .find(|(k, _)| k == path[0])
            .unwrap_or_else(|| panic!("missing key {}", path[0]));
        if path.len() == 1 {
            slot.1 = new;
        } else {
            set(&mut slot.1, &path[1..], new);
        }
    }

    #[test]
    fn check_passes_against_its_own_output_and_fails_on_drift() {
        let r = small_report();
        let baseline: Value = serde_json::from_str(&r.to_json()).unwrap();
        assert!(check(&baseline, &r, 5.0).is_empty());

        // Corrupt the baseline: pretend it completed one more job.
        let mut bad = baseline.clone();
        set(
            &mut bad,
            &["totals", "completed"],
            Value::UInt(r.totals.completed + 1),
        );
        let regressions = check(&bad, &r, 5.0);
        assert!(regressions.iter().any(|l| l.contains("totals/completed")));

        // A wildly better baseline p99 makes the current run a regression.
        let mut fast = baseline;
        set(&mut fast, &["latency_ticks", "p99"], Value::UInt(1));
        if r.latency_ticks.p99.unwrap_or(0) > 1 {
            let regs = check(&fast, &r, 5.0);
            assert!(regs.iter().any(|l| l.contains("latency p99")));
        }
    }
}
