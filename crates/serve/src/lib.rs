//! # clp-serve — a deterministic, fault-tolerant simulation service
//!
//! Long-running experiment campaigns treat the simulator as a *service*:
//! jobs (workload, composition size, cycle budget) arrive over time,
//! execute on a pool of workers, and must survive everything the
//! robustness layers can throw at them — injected protocol faults,
//! scheduled core kills, runaway simulations, even a panicking worker —
//! without dropping or corrupting any *other* job.
//!
//! The subsystem is built from five pieces:
//!
//! - [`job`] — the typed vocabulary: [`JobSpec`], the typed rejections
//!   ([`Rejected`]), and terminal [`JobOutcome`]s.
//! - [`arrivals`] — a seeded open-loop arrival generator; the schedule
//!   is a pure function of `(seed, count)`.
//! - [`cache`] — a content-hashed cache of compiled hyperblock programs
//!   and their lint results, owned by the scheduler so hit/miss counts
//!   are deterministic.
//! - [`pool`] — persistent worker threads running jobs under
//!   `catch_unwind`; a panicking job poisons its worker, which is
//!   disposed of and respawned.
//! - [`service`] — the virtual-time scheduler: bounded admission queue
//!   with deterministic load shedding and graceful degradation, per-job
//!   cycle-budget deadlines, seeded exponential backoff with jitter for
//!   transient failures, and a full drain on shutdown.
//! - [`report`] — the pinned `clp-serve-v1` JSON document, the
//!   `serve/*` stats-registry export, and the CI threshold gate.
//!
//! On top of these, [`service::serve_scoped`] threads the clp-scope
//! recorder (from `clp-obs`) through the same deterministic event
//! points: per-job lifecycle span trees, worker occupancy tracks, a
//! fleet-wide cycle-attribution book folded from per-job clp-prof
//! reports, and a service time series — all replayable byte-for-byte,
//! and all strictly observational (scope off takes the identical code
//! path).
//!
//! The load-bearing property is *replayability*: no wall-clock exists
//! anywhere, every stochastic choice draws from seeded SplitMix64
//! streams, and event classes are processed in a fixed order per virtual
//! tick — so one `(seed, job list)` pair reproduces the entire service
//! run, including every retry, panic, and shed job, byte-for-byte.
//!
//! ```
//! use clp_serve::{arrivals, report::ServiceReport, service};
//!
//! let acfg = arrivals::ArrivalConfig { jobs: 2, seed: 7, ..Default::default() };
//! let scfg = service::ServiceConfig::default();
//! let result = service::serve(arrivals::generate(&acfg), &scfg);
//! let report = ServiceReport::new(&acfg, &scfg, &result);
//! assert_eq!(report.totals.submitted, 2);
//! ```

#![warn(missing_docs)]

pub mod arrivals;
pub mod cache;
pub mod job;
pub mod pool;
pub mod report;
pub mod service;

pub use arrivals::ArrivalConfig;
pub use job::{JobOutcome, JobSpec, Rejected};
pub use report::{check, ServiceReport, SCHEMA};
pub use service::{
    serve, serve_scoped, JobRecord, ServiceConfig, ServiceDetail, ServiceResult, ServiceTotals,
};
