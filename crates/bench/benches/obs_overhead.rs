//! The observability-overhead guard: a full simulator run with a
//! `NullSink` attached must be as fast as one with no tracer at all,
//! proving the emission hooks compile down to a single predictable
//! branch; the `profiler-on` column measures the clp-prof recording and
//! backward-walk cost against the same baseline, and the `trend-on`
//! column adds the clp-trend columnar recorder on top of the profiler
//! (one compare per cycle, a registry sample per interval). The
//! `serve/scope-*` pair measures the service-level clp-scope recorder:
//! a full drain of a small job schedule with span recording off vs on
//! (scope-on also profiles every job, so the column prices the whole
//! observability stack end-to-end). The companion test
//! `tests/obs_guard.rs` asserts hard bounds on all of these in CI;
//! this bench gives the measured numbers.

use clp_core::{compile_workload, run_compiled_observed, ObsOptions, ProcessorConfig};
use clp_obs::{NullSink, ScopeOptions, Tracer, TrendOptions};
use clp_serve::{arrivals, service};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_obs_overhead(c: &mut Criterion) {
    let w = clp_workloads::suite::by_name("conv").expect("exists");
    let cw = compile_workload(&w).expect("compiles");
    let cfg = ProcessorConfig::tflex(8);

    c.bench_function("obs/conv8/tracer-off", |b| {
        let obs = ObsOptions::default();
        b.iter(|| run_compiled_observed(black_box(&cw), &cfg, &obs).expect("runs"))
    });
    c.bench_function("obs/conv8/null-sink", |b| {
        let obs = ObsOptions {
            tracer: Tracer::new(NullSink),
            ..ObsOptions::default()
        };
        b.iter(|| run_compiled_observed(black_box(&cw), &cfg, &obs).expect("runs"))
    });
    c.bench_function("obs/conv8/sampling-1k", |b| {
        let obs = ObsOptions {
            sample_every: Some(1000),
            ..ObsOptions::default()
        };
        b.iter(|| run_compiled_observed(black_box(&cw), &cfg, &obs).expect("runs"))
    });
    c.bench_function("obs/conv8/profiler-on", |b| {
        let obs = ObsOptions {
            profile: true,
            ..ObsOptions::default()
        };
        b.iter(|| run_compiled_observed(black_box(&cw), &cfg, &obs).expect("runs"))
    });
    c.bench_function("obs/conv8/trend-on", |b| {
        let obs = ObsOptions {
            trend: Some(TrendOptions::default()),
            ..ObsOptions::default()
        };
        b.iter(|| run_compiled_observed(black_box(&cw), &cfg, &obs).expect("runs"))
    });

    // Service-level: one full drain of a small quiet schedule. Scope-on
    // profiles every job and records spans/tracks/series on top.
    let acfg = arrivals::ArrivalConfig {
        jobs: 6,
        seed: 7,
        mean_gap: 4_000,
        ..arrivals::ArrivalConfig::default()
    };
    let scfg = service::ServiceConfig {
        workers: 2,
        seed: 7,
        ..service::ServiceConfig::default()
    };
    c.bench_function("obs/serve6/scope-off", |b| {
        b.iter(|| {
            service::serve_scoped(arrivals::generate(black_box(&acfg)), &scfg, None)
                .0
                .totals
        })
    });
    c.bench_function("obs/serve6/scope-on", |b| {
        let opts = ScopeOptions::default();
        b.iter(|| {
            service::serve_scoped(arrivals::generate(black_box(&acfg)), &scfg, Some(&opts))
                .1
                .expect("scope on")
                .fleet
                .total
                .jobs
        })
    });
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
