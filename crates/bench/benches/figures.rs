//! Criterion coverage of every figure's measurement path, at reduced
//! scale, so `cargo bench --workspace` exercises the same code that the
//! `fig*` binaries run at full scale: composition sweeps (Fig. 6–8),
//! the protocol-latency instrumentation (Fig. 9), the idealized-handshake
//! ablation (§6.4), the TRIPS/baseline comparison (Fig. 5), the
//! multiprogrammed chip (Fig. 10's contention), and the allocation DP.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn workload(name: &str) -> clp_workloads::Workload {
    clp_workloads::suite::by_name(name).expect("known workload")
}

/// Fig. 6/7/8 path: a composition sweep of one benchmark.
fn fig678_sweep(c: &mut Criterion) {
    let cw = clp_core::compile_workload(&workload("autocor")).expect("compiles");
    c.bench_function("figures/sweep_autocor_1_8_32", |b| {
        b.iter(|| {
            for n in [1usize, 8, 32] {
                let r = clp_core::run_compiled(&cw, &clp_core::ProcessorConfig::tflex(n))
                    .expect("runs");
                black_box(r.stats.cycles);
                black_box(r.power.total());
                black_box(r.area_mm2);
            }
        })
    });
}

/// Fig. 5 path: TRIPS mode plus the conventional baseline.
fn fig5_compare(c: &mut Criterion) {
    let w = workload("rspeed");
    let cw = clp_core::compile_workload(&w).expect("compiles");
    c.bench_function("figures/fig5_rspeed", |b| {
        b.iter(|| {
            let t = clp_core::run_compiled(&cw, &clp_core::ProcessorConfig::trips()).expect("runs");
            let base = clp_baseline::run_baseline(
                &w.program,
                &w.args,
                &w.init_mem,
                &clp_baseline::BaselineConfig::core2(),
            );
            black_box(base.cycles as f64 / t.stats.cycles as f64)
        })
    });
}

/// Fig. 9 path: protocol-latency instrumentation across two sizes.
fn fig9_breakdown(c: &mut Criterion) {
    let cw = clp_core::compile_workload(&workload("tblook")).expect("compiles");
    c.bench_function("figures/fig9_tblook", |b| {
        b.iter(|| {
            for n in [4usize, 16] {
                let r = clp_core::run_compiled(&cw, &clp_core::ProcessorConfig::tflex(n))
                    .expect("runs");
                let ps = &r.stats.procs[0];
                black_box(ps.fetch_latency().total());
                black_box(ps.commit_latency().total());
            }
        })
    });
}

/// §6.4 path: modeled versus instantaneous handshakes.
fn handshake_ablation(c: &mut Criterion) {
    let cw = clp_core::compile_workload(&workload("conv")).expect("compiles");
    c.bench_function("figures/ablation_handshake_conv_x16", |b| {
        b.iter(|| {
            let modeled =
                clp_core::run_compiled(&cw, &clp_core::ProcessorConfig::tflex(16)).expect("runs");
            let mut ideal = clp_core::ProcessorConfig::tflex(16);
            ideal.sim.protocol = clp_sim::ProtocolTiming::Instant;
            let ideal = clp_core::run_compiled(&cw, &ideal).expect("runs");
            black_box(modeled.stats.cycles as f64 / ideal.stats.cycles as f64)
        })
    });
}

/// Fig. 10 path: a real multiprogrammed chip plus the allocation DP.
fn fig10_multiprogram(c: &mut Criterion) {
    c.bench_function("figures/fig10_two_program_chip", |b| {
        b.iter(|| {
            let out = clp_core::run_multiprogram(&[
                clp_core::ProgramSpec {
                    workload: workload("conv"),
                    cores: 8,
                },
                clp_core::ProgramSpec {
                    workload: workload("tblook"),
                    cores: 2,
                },
            ])
            .expect("runs");
            assert!(out.correct.iter().all(|&x| x));
            black_box(out.cycles)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig678_sweep, fig5_compare, fig9_breakdown, handshake_ablation, fig10_multiprogram
}
criterion_main!(benches);
