//! Criterion microbenchmarks for each substrate: simulator throughput,
//! compiler throughput, mesh routing, predictor machinery, LSQ search,
//! and the allocation DP. These measure *this repository's* code speed
//! (how fast the simulator simulates), complementing the `fig*` binaries
//! that measure the *simulated machine*.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_compiler(c: &mut Criterion) {
    let w = clp_workloads::suite::by_name("genalg").expect("exists");
    c.bench_function("compile/genalg", |b| {
        b.iter(|| {
            clp_compiler::compile(
                black_box(&w.program),
                &clp_compiler::CompileOptions::default(),
            )
            .expect("compiles")
        })
    });
}

fn bench_interpreter(c: &mut Criterion) {
    let w = clp_workloads::suite::by_name("conv").expect("exists");
    c.bench_function("interpret/conv", |b| {
        b.iter_batched(
            || w.initial_image(),
            |mut image| {
                clp_compiler::interpret(&w.program, &w.args, &mut image, 10_000_000)
                    .expect("interprets")
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_simulator(c: &mut Criterion) {
    let w = clp_workloads::suite::by_name("conv").expect("exists");
    let cw = clp_core::compile_workload(&w).expect("compiles");
    for n in [1usize, 8, 32] {
        c.bench_function(&format!("simulate/conv/x{n}"), |b| {
            b.iter(|| {
                clp_core::run_compiled(&cw, &clp_core::ProcessorConfig::tflex(n)).expect("runs")
            })
        });
    }
}

fn bench_baseline(c: &mut Criterion) {
    let w = clp_workloads::suite::by_name("conv").expect("exists");
    c.bench_function("baseline/conv", |b| {
        b.iter(|| {
            clp_baseline::run_baseline(
                black_box(&w.program),
                &w.args,
                &w.init_mem,
                &clp_baseline::BaselineConfig::core2(),
            )
        })
    });
}

fn bench_mesh(c: &mut Criterion) {
    use clp_isa::{InstId, Operand, Target};
    c.bench_function("noc/mesh_1000_messages", |b| {
        b.iter(|| {
            let mut mesh: clp_noc::Mesh<Target> =
                clp_noc::Mesh::new(clp_noc::MeshConfig::tflex_operand());
            for i in 0..1000usize {
                mesh.inject(
                    clp_noc::NodeId(i % 32),
                    clp_noc::NodeId((i * 7) % 32),
                    Target::new(InstId::new(i % 128), Operand::Left),
                );
            }
            let mut delivered = 0;
            while !mesh.is_idle() {
                mesh.step();
                delivered += mesh.drain_delivered().len();
            }
            assert_eq!(delivered, 1000);
        })
    });
}

fn bench_lsq(c: &mut Criterion) {
    c.bench_function("mem/lsq_fill_and_commit", |b| {
        b.iter(|| {
            let mut image = clp_mem::MemoryImage::new();
            let mut lsq = clp_mem::LsqBank::new(44);
            for i in 0..22u64 {
                let _ = lsq.execute_store(i * 2, i * 8, 8, i);
                let _ = lsq.execute_load(i * 2 + 1, i * 8, 8, &image);
            }
            black_box(lsq.commit_range(0, 64, &mut image));
        })
    });
}

fn bench_predictor(c: &mut Criterion) {
    use clp_predictor::{ComposedPredictor, ExitOutcome, PredictorConfig};
    c.bench_function("predictor/loop_1000_blocks", |b| {
        b.iter(|| {
            let mut p = ComposedPredictor::new(PredictorConfig::tflex(), 8);
            for i in 0..1000u64 {
                let addr = 0x1000 + (i % 4) * 512;
                let pred = p.predict(addr);
                let actual = ExitOutcome {
                    exit_id: (i % 2) as u8,
                    kind: clp_isa::BranchKind::Branch,
                    target: 0x1000 + ((i + 1) % 4) * 512,
                };
                let miss = pred.target != actual.target;
                p.resolve(addr, &pred, &actual, miss);
            }
            black_box(p.misprediction_rate())
        })
    });
}

fn bench_alloc(c: &mut Criterion) {
    use clp_alloc::{optimal_clp, SpeedupCurve};
    let curves: Vec<SpeedupCurve> = (0..16)
        .map(|i| {
            let sat = 1 << (i % 6);
            let samples: Vec<(usize, f64)> = clp_alloc::SIZES
                .iter()
                .map(|&c| (c, (c.min(sat) as f64).powf(0.6)))
                .collect();
            SpeedupCurve::new(&format!("w{i}"), &samples)
        })
        .collect();
    c.bench_function("alloc/dp_16_apps", |b| {
        b.iter(|| black_box(optimal_clp(black_box(&curves))))
    });
}

criterion_group!(
    benches,
    bench_compiler,
    bench_interpreter,
    bench_simulator,
    bench_baseline,
    bench_mesh,
    bench_lsq,
    bench_predictor,
    bench_alloc
);
criterion_main!(benches);
