//! # clp-bench — the evaluation harness
//!
//! One binary per table and figure of the paper (see DESIGN.md's
//! experiment index): `table1`, `fig5`, `fig6`, `table2`, `fig7`, `fig8`,
//! `fig9`, `fig10`, plus the `ablation_*` binaries for §6.4 and the
//! design-choice studies. Each prints the same rows/series the paper
//! reports and writes machine-readable JSON under `target/clp-results/`.
//!
//! This library holds the shared sweep machinery: parallel measurement of
//! every workload at every composition size plus the TRIPS baseline, and
//! small statistics helpers.

#![warn(missing_docs)]

use clp_core::{compile_workload, run_compiled, ProcessorConfig, RunOutcome};
use clp_workloads::{IlpClass, Workload};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::mpsc;
use std::thread;

/// The composition sizes of the Figure 6–8 sweeps.
pub const SWEEP_SIZES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Measured results for one workload across the sweep.
pub struct BenchRow {
    /// The workload.
    pub workload: Workload,
    /// `(cores, outcome)` for each TFlex size.
    pub tflex: Vec<(usize, RunOutcome)>,
    /// The TRIPS baseline outcome.
    pub trips: RunOutcome,
}

impl BenchRow {
    /// Cycles at a TFlex size.
    ///
    /// # Panics
    ///
    /// Panics if the size was not swept.
    #[must_use]
    pub fn cycles_at(&self, n: usize) -> u64 {
        self.tflex
            .iter()
            .find(|(c, _)| *c == n)
            .map(|(_, r)| r.cycles())
            .unwrap_or_else(|| panic!("size {n} not swept"))
    }

    /// Speedup over one TFlex core at a given size.
    #[must_use]
    pub fn speedup_at(&self, n: usize) -> f64 {
        self.cycles_at(1) as f64 / self.cycles_at(n) as f64
    }

    /// The best (fastest) TFlex size.
    #[must_use]
    pub fn best_size(&self) -> usize {
        self.tflex
            .iter()
            .min_by_key(|(_, r)| r.cycles())
            .map(|(c, _)| *c)
            .expect("swept")
    }

    /// Speedup of the per-application best configuration.
    #[must_use]
    pub fn best_speedup(&self) -> f64 {
        self.speedup_at(self.best_size())
    }

    /// TFlex-vs-TRIPS speedup at a given size (>1 means TFlex wins).
    #[must_use]
    pub fn vs_trips_at(&self, n: usize) -> f64 {
        self.trips.cycles() as f64 / self.cycles_at(n) as f64
    }
}

/// Sweeps every workload over `sizes` plus TRIPS, in parallel (one thread
/// per workload), preserving input order.
///
/// # Panics
///
/// Panics if any run fails — the correctness gate for every figure.
#[must_use]
pub fn sweep_suite(workloads: &[Workload], sizes: &[usize]) -> Vec<BenchRow> {
    let (tx, rx) = mpsc::channel();
    thread::scope(|scope| {
        for (idx, w) in workloads.iter().enumerate() {
            let tx = tx.clone();
            let sizes = sizes.to_vec();
            scope.spawn(move || {
                let cw = compile_workload(w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
                let tflex: Vec<(usize, RunOutcome)> = sizes
                    .iter()
                    .map(|&n| {
                        let r = run_compiled(&cw, &ProcessorConfig::tflex(n))
                            .unwrap_or_else(|e| panic!("{} on {n} cores: {e}", w.name));
                        (n, r)
                    })
                    .collect();
                let trips = run_compiled(&cw, &ProcessorConfig::trips())
                    .unwrap_or_else(|e| panic!("{} on TRIPS: {e}", w.name));
                tx.send((
                    idx,
                    BenchRow {
                        workload: w.clone(),
                        tflex,
                        trips,
                    },
                ))
                .expect("receiver alive");
            });
        }
        drop(tx);
        let mut rows: Vec<Option<BenchRow>> = (0..workloads.len()).map(|_| None).collect();
        for (idx, row) in rx {
            rows[idx] = Some(row);
        }
        rows.into_iter().map(|r| r.expect("all sent")).collect()
    })
}

/// Geometric mean (the paper's cross-benchmark average).
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Orders rows for the Figure 6 x-axis: low-ILP benchmarks first, then
/// high-ILP, alphabetical within each group.
pub fn order_by_ilp(rows: &mut [BenchRow]) {
    rows.sort_by_key(|r| {
        (
            match r.workload.ilp {
                IlpClass::Low => 0,
                IlpClass::High => 1,
            },
            r.workload.name,
        )
    });
}

/// The directory where binaries drop machine-readable results.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir =
        PathBuf::from(std::env::var_os("CARGO_TARGET_DIR").unwrap_or_else(|| "target".into()))
            .join("clp-results");
    std::fs::create_dir_all(&dir).expect("can create results dir");
    dir
}

/// Serializes `value` as pretty JSON into `target/clp-results/<name>`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(name);
    let json = serde_json::to_string_pretty(value).expect("serializable");
    std::fs::write(&path, json).expect("can write results");
    println!("[saved {}]", path.display());
}

/// Reduced-size sweep used by the criterion benches and smoke tests:
/// a few representative workloads at three sizes.
#[must_use]
pub fn smoke_rows() -> Vec<BenchRow> {
    let names = ["conv", "tblook", "bezier"];
    let workloads: Vec<Workload> = names
        .iter()
        .map(|n| clp_workloads::suite::by_name(n).expect("known"))
        .collect();
    sweep_suite(&workloads, &[1, 4, 16])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn smoke_sweep_runs_and_orders() {
        let mut rows = smoke_rows();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.cycles_at(1) >= r.cycles_at(16) / 64, "sane cycles");
            assert!(r.speedup_at(1) == 1.0);
            assert!(r.best_speedup() >= 1.0);
            assert!(r.vs_trips_at(4) > 0.0);
        }
        order_by_ilp(&mut rows);
        assert_eq!(rows[0].workload.ilp, clp_workloads::IlpClass::Low);
    }
}
