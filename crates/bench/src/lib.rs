//! # clp-bench — the evaluation harness
//!
//! One binary per table and figure of the paper (see DESIGN.md's
//! experiment index): `table1`, `fig5`, `fig6`, `table2`, `fig7`, `fig8`,
//! `fig9`, `fig10`, plus the `ablation_*` binaries for §6.4 and the
//! design-choice studies. Each prints the same rows/series the paper
//! reports and writes machine-readable JSON under `target/clp-results/`.
//!
//! This library holds the shared sweep machinery: parallel measurement of
//! every workload at every composition size plus the TRIPS baseline, and
//! small statistics helpers.

#![warn(missing_docs)]

use clp_core::{compile_workload, run_compiled_observed, ObsOptions, ProcessorConfig, RunOutcome};
use clp_workloads::{IlpClass, Workload};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::mpsc;
use std::thread;

pub mod cli;

/// The composition sizes of the Figure 6–8 sweeps.
pub const SWEEP_SIZES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Measured results for one workload across the sweep.
pub struct BenchRow {
    /// The workload.
    pub workload: Workload,
    /// `(cores, outcome)` for each TFlex size.
    pub tflex: Vec<(usize, RunOutcome)>,
    /// The TRIPS baseline outcome.
    pub trips: RunOutcome,
}

impl BenchRow {
    /// Cycles at a TFlex size.
    ///
    /// # Panics
    ///
    /// Panics if the size was not swept.
    #[must_use]
    pub fn cycles_at(&self, n: usize) -> u64 {
        self.tflex
            .iter()
            .find(|(c, _)| *c == n)
            .map(|(_, r)| r.cycles())
            .unwrap_or_else(|| panic!("size {n} not swept"))
    }

    /// Speedup over one TFlex core at a given size.
    #[must_use]
    pub fn speedup_at(&self, n: usize) -> f64 {
        self.cycles_at(1) as f64 / self.cycles_at(n) as f64
    }

    /// The best (fastest) TFlex size.
    #[must_use]
    pub fn best_size(&self) -> usize {
        self.tflex
            .iter()
            .min_by_key(|(_, r)| r.cycles())
            .map(|(c, _)| *c)
            .expect("swept")
    }

    /// Speedup of the per-application best configuration.
    #[must_use]
    pub fn best_speedup(&self) -> f64 {
        self.speedup_at(self.best_size())
    }

    /// TFlex-vs-TRIPS speedup at a given size (>1 means TFlex wins).
    #[must_use]
    pub fn vs_trips_at(&self, n: usize) -> f64 {
        self.trips.cycles() as f64 / self.cycles_at(n) as f64
    }
}

/// One failed `(workload, configuration)` cell of a sweep.
///
/// `config` names the failing organization: `tflex-N`, `trips`, or
/// `compile` when the workload never made it past the compiler (which
/// fails every cell of its row).
#[derive(Clone, Debug, Serialize)]
pub struct CellFailure {
    /// The workload whose cell failed.
    pub workload: String,
    /// The configuration that failed (`tflex-N`, `trips`, `compile`).
    pub config: String,
    /// The rendered error.
    pub error: String,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]: {}", self.workload, self.config, self.error)
    }
}

/// Per-cell results for one workload across the sweep: every `(workload,
/// size)` cell carries its own `Result`, so one failing configuration
/// does not lose the rest of the row.
pub struct RowResult {
    /// The workload.
    pub workload: Workload,
    /// `(cores, result)` for each TFlex size.
    pub tflex: Vec<(usize, Result<RunOutcome, String>)>,
    /// The TRIPS baseline result.
    pub trips: Result<RunOutcome, String>,
}

impl RowResult {
    /// The failed cells of this row.
    #[must_use]
    pub fn failures(&self) -> Vec<CellFailure> {
        let mut out = Vec::new();
        for (n, r) in &self.tflex {
            if let Err(e) = r {
                out.push(CellFailure {
                    workload: self.workload.name.to_string(),
                    config: format!("tflex-{n}"),
                    error: e.clone(),
                });
            }
        }
        if let Err(e) = &self.trips {
            out.push(CellFailure {
                workload: self.workload.name.to_string(),
                config: "trips".to_string(),
                error: e.clone(),
            });
        }
        out
    }

    /// Converts to a [`BenchRow`] if every cell succeeded.
    #[must_use]
    pub fn into_complete(self) -> Option<BenchRow> {
        let mut tflex = Vec::with_capacity(self.tflex.len());
        for (n, r) in self.tflex {
            tflex.push((n, r.ok()?));
        }
        Some(BenchRow {
            workload: self.workload,
            tflex,
            trips: self.trips.ok()?,
        })
    }
}

/// The outcome of a resilient sweep: every row, with per-cell `Result`s.
pub struct SweepOutcome {
    /// One entry per input workload, in input order.
    pub rows: Vec<RowResult>,
}

impl SweepOutcome {
    /// Every failed cell across the sweep.
    #[must_use]
    pub fn failures(&self) -> Vec<CellFailure> {
        self.rows.iter().flat_map(RowResult::failures).collect()
    }

    /// True when every cell of every row succeeded.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.rows.iter().all(|r| r.failures().is_empty())
    }

    /// Splits into the fully-successful rows (ready for the figure math,
    /// which needs every size present) and the failed cells (for the
    /// warning log and the JSON report). Rows with any failed cell are
    /// dropped from the first list and reported in the second.
    #[must_use]
    pub fn complete_rows(self) -> (Vec<BenchRow>, Vec<CellFailure>) {
        let failures = self.failures();
        let rows = self
            .rows
            .into_iter()
            .filter_map(RowResult::into_complete)
            .collect();
        (rows, failures)
    }
}

/// Sweeps every workload over `sizes` plus TRIPS, in parallel (one thread
/// per workload), preserving input order. A failing cell is recorded in
/// its row's `Result` and the sweep keeps going — one bad `(workload,
/// size)` combination never kills a whole figure binary.
#[must_use]
pub fn sweep_suite_resilient(workloads: &[Workload], sizes: &[usize]) -> SweepOutcome {
    sweep_suite_resilient_observed(workloads, sizes, &ObsOptions::default())
}

/// Like [`sweep_suite_resilient`], with observability attached to every
/// cell's run (the figure binaries thread their shared `--sample-every`
/// / `--stats-json` flags through here; see [`cli::FigObs`]).
#[must_use]
pub fn sweep_suite_resilient_observed(
    workloads: &[Workload],
    sizes: &[usize],
    obs: &ObsOptions,
) -> SweepOutcome {
    let (tx, rx) = mpsc::channel();
    thread::scope(|scope| {
        for (idx, w) in workloads.iter().enumerate() {
            let tx = tx.clone();
            let sizes = sizes.to_vec();
            scope.spawn(move || {
                let row = match compile_workload(w) {
                    Ok(cw) => {
                        let tflex = sizes
                            .iter()
                            .map(|&n| {
                                let r = run_compiled_observed(&cw, &ProcessorConfig::tflex(n), obs)
                                    .map_err(|e| e.to_string());
                                (n, r)
                            })
                            .collect();
                        let trips = run_compiled_observed(&cw, &ProcessorConfig::trips(), obs)
                            .map_err(|e| e.to_string());
                        RowResult {
                            workload: w.clone(),
                            tflex,
                            trips,
                        }
                    }
                    Err(e) => {
                        // A compile failure fails every cell of the row.
                        let msg = e.to_string();
                        RowResult {
                            workload: w.clone(),
                            tflex: sizes.iter().map(|&n| (n, Err(msg.clone()))).collect(),
                            trips: Err(msg),
                        }
                    }
                };
                tx.send((idx, row)).expect("receiver alive");
            });
        }
        drop(tx);
        let mut rows: Vec<Option<RowResult>> = (0..workloads.len()).map(|_| None).collect();
        for (idx, row) in rx {
            rows[idx] = Some(row);
        }
        SweepOutcome {
            rows: rows.into_iter().map(|r| r.expect("all sent")).collect(),
        }
    })
}

/// Sweeps every workload over `sizes` plus TRIPS (see
/// [`sweep_suite_resilient`]), insisting on a clean sweep.
///
/// # Panics
///
/// Panics if any cell fails — the correctness gate for the smoke tests.
#[must_use]
pub fn sweep_suite(workloads: &[Workload], sizes: &[usize]) -> Vec<BenchRow> {
    let (rows, failures) = sweep_suite_resilient(workloads, sizes).complete_rows();
    assert!(
        failures.is_empty(),
        "sweep failed: {}",
        failures
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ")
    );
    rows
}

/// Geometric mean (the paper's cross-benchmark average).
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Orders rows for the Figure 6 x-axis: low-ILP benchmarks first, then
/// high-ILP, alphabetical within each group.
pub fn order_by_ilp(rows: &mut [BenchRow]) {
    rows.sort_by_key(|r| {
        (
            match r.workload.ilp {
                IlpClass::Low => 0,
                IlpClass::High => 1,
            },
            r.workload.name,
        )
    });
}

/// The directory where binaries drop machine-readable results.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir =
        PathBuf::from(std::env::var_os("CARGO_TARGET_DIR").unwrap_or_else(|| "target".into()))
            .join("clp-results");
    std::fs::create_dir_all(&dir).expect("can create results dir");
    dir
}

/// Serializes `value` as pretty JSON into `target/clp-results/<name>`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(name);
    let json = serde_json::to_string_pretty(value).expect("serializable");
    std::fs::write(&path, json).expect("can write results");
    println!("[saved {}]", path.display());
}

/// Reduced-size sweep used by the criterion benches and smoke tests:
/// a few representative workloads at three sizes.
#[must_use]
pub fn smoke_rows() -> Vec<BenchRow> {
    let names = ["conv", "tblook", "bezier"];
    let workloads: Vec<Workload> = names
        .iter()
        .map(|n| clp_workloads::suite::by_name(n).expect("known"))
        .collect();
    sweep_suite(&workloads, &[1, 4, 16])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn resilient_sweep_reports_failed_cells_and_keeps_going() {
        // 64 cores is not a valid composition: that cell fails, the rest
        // of the row (and the other workloads) still produce results.
        let workloads: Vec<Workload> = ["conv", "bezier"]
            .iter()
            .map(|n| clp_workloads::suite::by_name(n).expect("known"))
            .collect();
        let outcome = sweep_suite_resilient(&workloads, &[1, 64]);
        assert!(!outcome.is_clean());
        let failures = outcome.failures();
        assert_eq!(failures.len(), 2, "one bad cell per workload");
        for f in &failures {
            assert_eq!(f.config, "tflex-64");
            assert!(f.error.contains("compose"), "unexpected error: {}", f.error);
        }
        for row in &outcome.rows {
            assert!(row.tflex[0].1.is_ok(), "1-core cell still measured");
            assert!(row.trips.is_ok(), "TRIPS cell still measured");
        }
        // Rows with a failed cell are excluded from the complete set but
        // surfaced in the failure list.
        let (rows, failures) = outcome.complete_rows();
        assert!(rows.is_empty());
        assert_eq!(failures.len(), 2);
    }

    #[test]
    fn resilient_sweep_clean_run_is_complete() {
        let workloads = [clp_workloads::suite::by_name("conv").expect("known")];
        let outcome = sweep_suite_resilient(&workloads, &[1, 4]);
        assert!(outcome.is_clean());
        let (rows, failures) = outcome.complete_rows();
        assert!(failures.is_empty());
        assert_eq!(rows.len(), 1);
        assert!(rows[0].cycles_at(4) > 0);
    }

    #[test]
    fn smoke_sweep_runs_and_orders() {
        let mut rows = smoke_rows();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.cycles_at(1) >= r.cycles_at(16) / 64, "sane cycles");
            assert!(r.speedup_at(1) == 1.0);
            assert!(r.best_speedup() >= 1.0);
            assert!(r.vs_trips_at(4) > 0.0);
        }
        order_by_ilp(&mut rows);
        assert_eq!(rows[0].workload.ilp, clp_workloads::IlpClass::Low);
    }
}
