//! Shared observability flags for the figure binaries.
//!
//! Every `fig*` binary accepts the same two flags, parsed here so the
//! wiring cannot drift between binaries:
//!
//! ```text
//! --sample-every <cycles>   interval-sampling period for every run
//! --stats-json <path>       write labeled stats snapshots as JSON
//! ```
//!
//! When `--stats-json` is given without `--sample-every`, sampling
//! defaults to one window per 1000 cycles (matching `run_one`), so the
//! dumped snapshots always carry a time series.

use clp_core::ObsOptions;
use clp_obs::StatsSnapshot;
use serde::Serialize;
use std::path::PathBuf;

use crate::BenchRow;

/// The shared observability flags of the figure binaries.
#[derive(Clone, Debug, Default)]
pub struct FigObs {
    /// Interval-sampling period in cycles (`--sample-every`).
    pub sample_every: Option<u64>,
    /// Where to write labeled stats snapshots (`--stats-json`).
    pub stats_json: Option<PathBuf>,
}

fn die(prog: &str, msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: {prog} [--sample-every <cycles>] [--stats-json <path>]");
    std::process::exit(2);
}

impl FigObs {
    /// Parses the shared flags from the process arguments; `prog` names
    /// the binary in the usage message. Exits with status 2 on unknown
    /// arguments or malformed values.
    #[must_use]
    pub fn parse_env(prog: &str) -> FigObs {
        Self::parse(prog, std::env::args().skip(1))
    }

    /// Parses the shared flags from an explicit argument iterator.
    pub fn parse(prog: &str, mut args: impl Iterator<Item = String>) -> FigObs {
        let mut out = FigObs::default();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--sample-every" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| die(prog, "--sample-every wants a value"));
                    match v.parse::<u64>() {
                        Ok(p) if p >= 1 => out.sample_every = Some(p),
                        _ => die(
                            prog,
                            &format!("--sample-every wants a period >= 1, got `{v}`"),
                        ),
                    }
                }
                "--stats-json" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| die(prog, "--stats-json wants a path"));
                    out.stats_json = Some(PathBuf::from(v));
                }
                other => die(prog, &format!("unknown argument `{other}`")),
            }
        }
        out
    }

    /// The [`ObsOptions`] these flags select. Sampling defaults to a
    /// 1000-cycle period when snapshots were requested.
    #[must_use]
    pub fn obs_options(&self) -> ObsOptions {
        ObsOptions {
            sample_every: self.sample_every.or(if self.stats_json.is_some() {
                Some(1000)
            } else {
                None
            }),
            ..ObsOptions::default()
        }
    }

    /// Writes `labeled` snapshots to the `--stats-json` path as a JSON
    /// array of `{label, snapshot}` objects. No-op when the flag was not
    /// given.
    pub fn save_snapshots(&self, labeled: Vec<(String, StatsSnapshot)>) {
        let Some(path) = &self.stats_json else {
            return;
        };
        #[derive(Serialize)]
        struct Labeled {
            label: String,
            snapshot: StatsSnapshot,
        }
        let entries: Vec<Labeled> = labeled
            .into_iter()
            .map(|(label, snapshot)| Labeled { label, snapshot })
            .collect();
        let json = serde_json::to_string_pretty(&entries).expect("serializable");
        std::fs::write(path, json).expect("can write stats json");
        println!("[saved {}]", path.display());
    }

    /// Labels and writes every cell snapshot of a completed sweep
    /// (`<workload>/tflex-<n>` and `<workload>/trips`). No-op when
    /// `--stats-json` was not given.
    pub fn save_sweep_snapshots(&self, rows: &[BenchRow]) {
        if self.stats_json.is_none() {
            return;
        }
        let mut labeled = Vec::new();
        for r in rows {
            for (n, o) in &r.tflex {
                labeled.push((format!("{}/tflex-{n}", r.workload.name), o.snapshot.clone()));
            }
            labeled.push((
                format!("{}/trips", r.workload.name),
                r.trips.snapshot.clone(),
            ));
        }
        self.save_snapshots(labeled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_both_flags_in_any_order() {
        let args = ["--stats-json", "out.json", "--sample-every", "250"];
        let f = FigObs::parse("t", args.iter().map(ToString::to_string));
        assert_eq!(f.sample_every, Some(250));
        assert_eq!(
            f.stats_json.as_deref(),
            Some(std::path::Path::new("out.json"))
        );
        assert_eq!(f.obs_options().sample_every, Some(250));
    }

    #[test]
    fn stats_json_alone_defaults_the_period() {
        let args = ["--stats-json", "out.json"];
        let f = FigObs::parse("t", args.iter().map(ToString::to_string));
        assert_eq!(f.sample_every, None);
        assert_eq!(f.obs_options().sample_every, Some(1000));
    }

    #[test]
    fn no_flags_means_no_observability() {
        let f = FigObs::parse("t", std::iter::empty());
        assert_eq!(f.obs_options().sample_every, None);
        assert!(f.stats_json.is_none());
    }
}
