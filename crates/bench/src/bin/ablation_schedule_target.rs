//! §5's scheduling claim: "performing instruction scheduling for a
//! larger number of cores and running it on fewer results in little
//! performance degradation." Compares binaries scheduled for the
//! 32-core composition (the default, used for every other experiment)
//! against binaries scheduled exactly for the composition they run on.

use clp_bench::{geomean, save_json};
use clp_compiler::{compile, CompileOptions};
use clp_core::{run_compiled, CompiledWorkload, ProcessorConfig};
use clp_workloads::suite;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    cores: usize,
    degradation_pct: f64,
}

fn main() {
    let workloads = suite::all();
    let mut series = Vec::new();
    for &n in &[2usize, 4, 8] {
        let mut ratios = Vec::new();
        for w in &workloads {
            let make = |cores: usize| CompiledWorkload {
                golden: w.golden(),
                workload: w.clone(),
                edge: compile(
                    &w.program,
                    &CompileOptions {
                        placement_cores: cores,
                        ..Default::default()
                    },
                )
                .unwrap_or_else(|e| panic!("{}: {e}", w.name)),
            };
            let for32 = run_compiled(&make(32), &ProcessorConfig::tflex(n))
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let exact = run_compiled(&make(n), &ProcessorConfig::tflex(n))
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            ratios.push(for32.stats.cycles as f64 / exact.stats.cycles as f64);
        }
        let pct = 100.0 * (geomean(&ratios) - 1.0);
        println!(
            "{n:>2} cores: scheduling for 32 instead of {n} costs {pct:+.1}% (paper: 'little')"
        );
        series.push(Point {
            cores: n,
            degradation_pct: pct,
        });
    }
    save_json("ablation_schedule_target.json", &series);
}
