//! clp-prof: critical-path extraction and top-down cycle accounting for
//! composed processors.
//!
//! ```sh
//! cargo run --release -p clp-bench --bin clp-prof -- conv 16
//! cargo run --release -p clp-bench --bin clp-prof -- --suite --json
//! ```
//!
//! Runs one workload (or the whole built-in suite with `--suite`) with
//! the profiler enabled and prints, per workload:
//!
//! * the top-down breakdown table — one row per cycle-accounting bucket,
//!   summing exactly to the run's critical-path cycles;
//! * a per-core contribution heatmap shaped like the operand mesh;
//! * the hottest operand-mesh links on the critical path.
//!
//! `--json` replaces the tables with the pinned `clp-prof-v1` schema on
//! stdout (one top-level object; per-run reports under `"runs"`).
//! `--cores N` picks the composition size (default 16); `--top-links N`
//! bounds the link list (default 8).

use clp_core::{compile_workload, run_compiled_observed, ObsOptions, ProcessorConfig};
use clp_workloads::suite;
use serde::Value;

struct Args {
    workloads: Vec<String>,
    cores: usize,
    json: bool,
    top_links: usize,
}

fn die(msg: &str) -> ! {
    eprintln!("clp-prof: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        workloads: Vec::new(),
        cores: 16,
        json: false,
        top_links: 8,
    };
    let mut want_suite = false;
    let mut positional = 0;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut flag_value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{flag} requires a value")))
        };
        match a.as_str() {
            "--suite" => want_suite = true,
            "--json" => args.json = true,
            "--cores" => {
                let v = flag_value("--cores");
                match v.parse() {
                    Ok(c) if c > 0 => args.cores = c,
                    _ => die(&format!("bad --cores `{v}`")),
                }
            }
            "--top-links" => {
                let v = flag_value("--top-links");
                match v.parse() {
                    Ok(c) => args.top_links = c,
                    Err(_) => die(&format!("bad --top-links `{v}`")),
                }
            }
            _ => {
                match positional {
                    0 => args.workloads.push(a),
                    1 => match a.parse() {
                        Ok(c) => args.cores = c,
                        Err(_) => die(&format!("bad core count `{a}`")),
                    },
                    _ => die(&format!("unexpected argument `{a}`")),
                }
                positional += 1;
            }
        }
    }
    if want_suite {
        args.workloads = suite::all()
            .into_iter()
            .map(|w| w.name.to_string())
            .collect();
    } else if args.workloads.is_empty() {
        die("pass a workload name or --suite");
    }
    args
}

fn main() {
    let args = parse_args();
    let mut runs: Vec<Value> = Vec::new();
    for name in &args.workloads {
        let w = suite::by_name(name).unwrap_or_else(|| {
            let names: Vec<&str> = suite::all().into_iter().map(|w| w.name).collect();
            die(&format!(
                "unknown workload `{name}`; available: {}",
                names.join(", ")
            ))
        });
        let cw = compile_workload(&w).unwrap_or_else(|e| die(&format!("{name}: {e}")));
        let obs = ObsOptions {
            profile: true,
            ..ObsOptions::default()
        };
        let r = run_compiled_observed(&cw, &ProcessorConfig::tflex(args.cores), &obs)
            .unwrap_or_else(|e| die(&format!("{name} on {} cores: {e}", args.cores)));
        let report = r.profile.expect("profiling was enabled");
        if args.json {
            runs.push(Value::Object(vec![
                ("workload".to_string(), Value::String(name.clone())),
                ("cores".to_string(), Value::UInt(args.cores as u64)),
                ("cycles".to_string(), Value::UInt(r.stats.cycles)),
                ("ipc".to_string(), Value::Float(r.stats.procs[0].ipc())),
                ("profile".to_string(), report.to_json_value()),
            ]));
        } else {
            println!(
                "== {name} on {} cores: {} cycles, critical path {} ==",
                args.cores,
                r.stats.cycles,
                report.crit_path_cycles()
            );
            print!("{}", report.render_breakdown());
            println!("per-core critical cycles:");
            print!("{}", report.render_core_heatmap());
            println!("hottest operand links:");
            print!("{}", report.render_links(args.top_links));
            println!();
        }
    }
    if args.json {
        let doc = Value::Object(vec![
            (
                "schema".to_string(),
                Value::String("clp-prof-v1".to_string()),
            ),
            ("runs".to_string(), Value::Array(runs)),
        ]);
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).expect("serializes")
        );
    }
}
