//! Figure 8: power efficiency — performance²/Watt for TFlex compositions
//! and TRIPS, normalized to one TFlex core.
//!
//! Paper shape: the most power-efficient fixed composition is 8 cores;
//! picking per-application BEST adds ~22%; fixed 8-core TFlex is ~1.64x
//! more power-efficient than TRIPS.

use clp_bench::cli::FigObs;
use clp_bench::{
    geomean, order_by_ilp, save_json, sweep_suite_resilient_observed, CellFailure, SWEEP_SIZES,
};
use clp_power::perf2_per_watt;
use clp_workloads::suite;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: &'static str,
    efficiency: Vec<(usize, f64)>,
    trips: f64,
    peak_size: usize,
}

#[derive(Serialize)]
struct Out {
    rows: Vec<Row>,
    failures: Vec<CellFailure>,
}

fn main() {
    let fig = FigObs::parse_env("fig8");
    let (mut rows, failures) =
        sweep_suite_resilient_observed(&suite::all(), &SWEEP_SIZES, &fig.obs_options())
            .complete_rows();
    for f in &failures {
        eprintln!("warning: dropping failed cell {f}");
    }
    order_by_ilp(&mut rows);

    println!("Figure 8: performance^2/Watt normalized to one TFlex core");
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}  {:>5}",
        "benchmark", "x1", "x2", "x4", "x8", "x16", "x32", "TRIPS", "peak"
    );
    let mut out = Vec::new();
    for r in &rows {
        let base = perf2_per_watt(r.cycles_at(1), r.tflex[0].1.power.total());
        let eff: Vec<(usize, f64)> = r
            .tflex
            .iter()
            .map(|(n, o)| (*n, perf2_per_watt(o.cycles(), o.power.total()) / base))
            .collect();
        let trips_eff = perf2_per_watt(r.trips.cycles(), r.trips.power.total()) / base;
        let peak = eff
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, _)| *n)
            .expect("swept");
        print!("{:<10}", r.workload.name);
        for (_, e) in &eff {
            print!(" {e:>6.2}");
        }
        println!(" {trips_eff:>6.2}  {peak:>5}");
        out.push(Row {
            name: r.workload.name,
            efficiency: eff,
            trips: trips_eff,
            peak_size: peak,
        });
    }

    println!();
    let mut best_fixed = (0usize, f64::MIN);
    for &n in &SWEEP_SIZES {
        let avg = geomean(
            &out.iter()
                .map(|r| r.efficiency.iter().find(|(c, _)| *c == n).expect("swept").1)
                .collect::<Vec<_>>(),
        );
        if avg > best_fixed.1 {
            best_fixed = (n, avg);
        }
        println!("AVG x{n:<2}: {avg:.2}");
    }
    let avg_best = geomean(
        &out.iter()
            .map(|r| {
                r.efficiency
                    .iter()
                    .map(|&(_, e)| e)
                    .fold(f64::MIN, f64::max)
            })
            .collect::<Vec<_>>(),
    );
    let avg_trips = geomean(&out.iter().map(|r| r.trips).collect::<Vec<_>>());
    let avg8 = geomean(
        &out.iter()
            .map(|r| r.efficiency.iter().find(|(c, _)| *c == 8).expect("swept").1)
            .collect::<Vec<_>>(),
    );
    println!(
        "best fixed composition: {} cores (paper: 8); BEST/best-fixed: {:+.0}% (paper: +22%)",
        best_fixed.0,
        100.0 * (avg_best / best_fixed.1 - 1.0)
    );
    println!(
        "8-core TFlex vs TRIPS: {:.2}x (paper: ~1.64x)",
        avg8 / avg_trips
    );

    save_json(
        "fig8.json",
        &Out {
            rows: out,
            failures,
        },
    );
    fig.save_sweep_snapshots(&rows);
}
