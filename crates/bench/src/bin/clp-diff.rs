//! clp-diff: structural comparison of two measurement documents.
//!
//! ```sh
//! cargo run --release -p clp-bench --bin clp-diff -- before.json after.json
//! cargo run --release -p clp-bench --bin clp-diff -- BENCH_baseline.json BENCH_suite.json --top 5
//! ```
//!
//! Both files must carry the same pinned schema — a stats-registry
//! snapshot (`run_one --stats-json`), a `clp-prof-v1` profile
//! (`clp-prof --json`), a `clp-bench-v1` matrix (`clp-bench`), or a
//! `clp-trend-v1` time series (`clp-trend --json`, single run). The
//! first file is the baseline; the report attributes the delta to the
//! cycle-accounting buckets, cores, NoC links, and counters that moved,
//! largest movers first.
//!
//! `--top N` bounds each section (default 10; 0 means unbounded).
//! Exit codes: 0 = compared (even if everything moved), 2 = usage or
//! parse error.

use clp_obs::diff_documents;
use serde::Value;

fn die(msg: &str) -> ! {
    eprintln!("clp-diff: {msg}");
    eprintln!("usage: clp-diff <before.json> <after.json> [--top N]");
    std::process::exit(2);
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read `{path}`: {e}")));
    serde_json::from_str::<Value>(&text)
        .unwrap_or_else(|e| die(&format!("cannot parse `{path}`: {e}")))
}

fn main() {
    let mut files = Vec::new();
    let mut top = 10usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--top" => {
                let v = it.next().unwrap_or_else(|| die("--top requires a value"));
                match v.parse() {
                    Ok(t) => top = t,
                    Err(_) => die(&format!("bad --top `{v}`")),
                }
            }
            _ => files.push(a),
        }
    }
    let [before_path, after_path] = files.as_slice() else {
        die("pass exactly two files");
    };
    let (before, after) = (load(before_path), load(after_path));
    let report = diff_documents(&before, &after).unwrap_or_else(|e| die(&e));
    println!("{} vs {} ({})", before_path, after_path, report.kind);
    print!("{}", report.render(top));
}
