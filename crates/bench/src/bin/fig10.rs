//! Figure 10: weighted speedup of multiprogrammed workloads on the
//! composable TFlex array versus fixed-granularity CMPs and the
//! hypothetical symmetric flexible CMP (VB CMP).
//!
//! Methodology follows §7: per-benchmark speedup-versus-cores curves come
//! from the Figure 6 sweep of the 12 hand-optimized benchmarks; an
//! optimal dynamic program assigns 32 cores to each workload mix.
//!
//! Paper shape: the best fixed granularity shifts with workload size
//! (CMP-16 for 2 threads down to CMP-2 for 12-16); TFlex beats the best
//! fixed CMP by ~26% on average (max ~47%) and the symmetric VB CMP by
//! ~6%; the allocation-fraction table shows mixed granularities within
//! one workload size.

use clp_alloc::{
    fixed_cmp, granularity_fractions, optimal_clp, variable_best_cmp, Allocation, SpeedupCurve,
};
use clp_bench::cli::FigObs;
use clp_bench::{save_json, sweep_suite_resilient_observed, CellFailure, SWEEP_SIZES};
use clp_workloads::suite;
use serde::Serialize;
use std::collections::BTreeMap;

/// Deterministic workload mixes: `count` benchmarks per mix, rotating
/// through the 12-benchmark list from different offsets.
fn mixes(curves: &[SpeedupCurve], count: usize, n_mixes: usize) -> Vec<Vec<SpeedupCurve>> {
    (0..n_mixes)
        .map(|m| {
            (0..count)
                .map(|k| curves[(m * 5 + k * 7 + k * k) % curves.len()].clone())
                .collect()
        })
        .collect()
}

#[derive(Serialize)]
struct SizePoint {
    threads: usize,
    tflex: f64,
    vb_cmp: f64,
    cmp: BTreeMap<usize, f64>,
    best_cmp_granularity: usize,
    tflex_over_best_cmp_pct: f64,
}

#[derive(Serialize)]
struct Out {
    points: Vec<SizePoint>,
    failures: Vec<CellFailure>,
}

fn main() {
    let fig = FigObs::parse_env("fig10");
    // Measure the 12 hand-optimized speedup curves (Figure 6 data).
    let (rows, failures) =
        sweep_suite_resilient_observed(&suite::hand_optimized(), &SWEEP_SIZES, &fig.obs_options())
            .complete_rows();
    for f in &failures {
        eprintln!("warning: dropping failed cell {f}");
    }
    let curves: Vec<SpeedupCurve> = rows
        .iter()
        .map(|r| {
            let samples: Vec<(usize, f64)> =
                SWEEP_SIZES.iter().map(|&n| (n, r.speedup_at(n))).collect();
            SpeedupCurve::new(r.workload.name, &samples)
        })
        .collect();

    println!("speedup curves (normalized to 1 core):");
    for c in &curves {
        print!("  {:<8}", c.name);
        for &n in &SWEEP_SIZES {
            print!(" x{n}:{:>5.2}", c.at(n));
        }
        println!();
    }
    println!();

    let sizes = [2usize, 4, 6, 8, 12, 16];
    let granularities = [2usize, 4, 8, 16];
    let n_mixes = 6;
    let mut out = Vec::new();
    let mut all_tflex_allocs: BTreeMap<usize, Vec<Allocation>> = BTreeMap::new();
    println!(
        "{:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>9} {:>7}",
        "threads", "CMP-2", "CMP-4", "CMP-8", "CMP-16", "VB-CMP", "TFlex", "best-CMP", "gain"
    );
    for &count in &sizes {
        let mut sums: BTreeMap<usize, f64> = granularities.iter().map(|&g| (g, 0.0)).collect();
        let mut vb_sum = 0.0;
        let mut tflex_sum = 0.0;
        for mix in mixes(&curves, count, n_mixes) {
            for &g in &granularities {
                *sums.get_mut(&g).expect("present") += fixed_cmp(&mix, g).weighted_speedup;
            }
            vb_sum += variable_best_cmp(&mix).weighted_speedup;
            let a = optimal_clp(&mix);
            tflex_sum += a.weighted_speedup;
            all_tflex_allocs.entry(count).or_default().push(a);
        }
        let n = n_mixes as f64;
        let cmp: BTreeMap<usize, f64> = sums.iter().map(|(&g, &s)| (g, s / n)).collect();
        let (best_g, best_cmp) = cmp
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(&g, &v)| (g, v))
            .expect("nonempty");
        let tflex = tflex_sum / n;
        let vb = vb_sum / n;
        println!(
            "{:>7} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>9} {:>6.1}%",
            count,
            cmp[&2],
            cmp[&4],
            cmp[&8],
            cmp[&16],
            vb,
            tflex,
            format!("CMP-{best_g}"),
            100.0 * (tflex / best_cmp - 1.0)
        );
        out.push(SizePoint {
            threads: count,
            tflex,
            vb_cmp: vb,
            cmp,
            best_cmp_granularity: best_g,
            tflex_over_best_cmp_pct: 100.0 * (tflex / best_cmp - 1.0),
        });
    }

    // Averages and the allocation-fraction table.
    let avg_gain = out.iter().map(|p| p.tflex_over_best_cmp_pct).sum::<f64>() / out.len() as f64;
    let max_gain = out
        .iter()
        .map(|p| p.tflex_over_best_cmp_pct)
        .fold(f64::MIN, f64::max);
    let avg_vb_gain = out
        .iter()
        .map(|p| 100.0 * (p.tflex / p.vb_cmp - 1.0))
        .sum::<f64>()
        / out.len() as f64;
    println!();
    println!(
        "TFlex over best fixed CMP: avg {avg_gain:+.1}% max {max_gain:+.1}% (paper: +26% avg, +47% max)"
    );
    println!("TFlex over symmetric VB CMP: {avg_vb_gain:+.1}% (paper: +6%)");
    println!();
    println!("allocation fractions by workload size (Figure 10's table):");
    for (count, allocs) in &all_tflex_allocs {
        let fr = granularity_fractions(allocs);
        print!("  {count:>2} threads:");
        for (g, f) in fr {
            print!("  {g}c:{:.0}%", 100.0 * f);
        }
        println!();
    }

    save_json(
        "fig10.json",
        &Out {
            points: out,
            failures,
        },
    );
    fig.save_sweep_snapshots(&rows);
}
