//! Figure 7: area efficiency — performance per area, `1/(cycles x mm²)`,
//! for TFlex compositions and TRIPS, normalized to one TFlex core.
//!
//! Paper shape: area efficiency peaks at one or two cores for most
//! benchmarks; beyond two cores performance grows more slowly than area.

use clp_bench::cli::FigObs;
use clp_bench::{
    geomean, order_by_ilp, save_json, sweep_suite_resilient_observed, CellFailure, SWEEP_SIZES,
};
use clp_power::perf_per_area;
use clp_workloads::suite;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: &'static str,
    /// `(cores, perf-per-area normalized to 1 core)`.
    efficiency: Vec<(usize, f64)>,
    trips: f64,
    peak_size: usize,
}

#[derive(Serialize)]
struct Out {
    rows: Vec<Row>,
    failures: Vec<CellFailure>,
}

fn main() {
    let fig = FigObs::parse_env("fig7");
    let (mut rows, failures) =
        sweep_suite_resilient_observed(&suite::all(), &SWEEP_SIZES, &fig.obs_options())
            .complete_rows();
    for f in &failures {
        eprintln!("warning: dropping failed cell {f}");
    }
    order_by_ilp(&mut rows);

    println!("Figure 7: performance/area normalized to one TFlex core");
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}  {:>5}",
        "benchmark", "x1", "x2", "x4", "x8", "x16", "x32", "TRIPS", "peak"
    );
    let mut out = Vec::new();
    for r in &rows {
        let base = perf_per_area(r.cycles_at(1), r.tflex[0].1.area_mm2);
        let eff: Vec<(usize, f64)> = r
            .tflex
            .iter()
            .map(|(n, o)| (*n, perf_per_area(o.cycles(), o.area_mm2) / base))
            .collect();
        let trips_eff = perf_per_area(r.trips.cycles(), r.trips.area_mm2) / base;
        let peak = eff
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, _)| *n)
            .expect("swept");
        print!("{:<10}", r.workload.name);
        for (_, e) in &eff {
            print!(" {e:>6.2}");
        }
        println!(" {trips_eff:>6.2}  {peak:>5}");
        out.push(Row {
            name: r.workload.name,
            efficiency: eff,
            trips: trips_eff,
            peak_size: peak,
        });
    }

    println!();
    for &n in &SWEEP_SIZES {
        let avg = geomean(
            &out.iter()
                .map(|r| r.efficiency.iter().find(|(c, _)| *c == n).expect("swept").1)
                .collect::<Vec<_>>(),
        );
        println!("AVG x{n:<2}: {avg:.2}");
    }
    let peaks_small = out.iter().filter(|r| r.peak_size <= 2).count();
    println!(
        "peak at 1-2 cores for {}/{} benchmarks (paper: most)",
        peaks_small,
        out.len()
    );
    let avg_trips = geomean(&out.iter().map(|r| r.trips).collect::<Vec<_>>());
    let best_eff_avg = geomean(
        &out.iter()
            .map(|r| {
                r.efficiency
                    .iter()
                    .map(|&(_, e)| e)
                    .fold(f64::MIN, f64::max)
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "best-per-app/TRIPS area efficiency: {:.2}x (paper: ~3.4x)",
        best_eff_avg / avg_trips
    );

    save_json(
        "fig7.json",
        &Out {
            rows: out,
            failures,
        },
    );
    fig.save_sweep_snapshots(&rows);
}
