//! Figure 9: overheads of the distributed protocols — (a) per-block
//! fetch-latency components and (b) per-block commit-latency components,
//! as a function of composition size.
//!
//! Paper shape: prediction+tag are constant; hand-off and fetch-command
//! distribution grow with core count; dispatch time shrinks as fetch
//! bandwidth scales. For commit, handshaking grows with distance while
//! the architectural-state update shrinks with added bandwidth.

use clp_bench::cli::FigObs;
use clp_bench::{save_json, sweep_suite_resilient_observed, CellFailure, SWEEP_SIZES};
use clp_sim::{CommitLatencyBreakdown, FetchLatencyBreakdown};
use clp_workloads::suite;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    cores: usize,
    fetch: FetchLatencyBreakdown,
    commit: CommitLatencyBreakdown,
}

#[derive(Serialize)]
struct Out {
    series: Vec<Point>,
    failures: Vec<CellFailure>,
}

fn main() {
    let fig = FigObs::parse_env("fig9");
    let (rows, failures) =
        sweep_suite_resilient_observed(&suite::all(), &SWEEP_SIZES, &fig.obs_options())
            .complete_rows();
    for f in &failures {
        eprintln!("warning: dropping failed cell {f}");
    }
    let mut series = Vec::new();
    for (i, &n) in SWEEP_SIZES.iter().enumerate() {
        let mut fetch = FetchLatencyBreakdown::default();
        let mut commit = CommitLatencyBreakdown::default();
        let count = rows.len() as f64;
        for r in &rows {
            // Figure inputs come through the stats registry, addressed by
            // stable path rather than struct-field plucking.
            let snap = &r.tflex[i].1.snapshot;
            fetch.prediction += snap.expect("proc0/fetch_latency/prediction") / count;
            fetch.tag_access += snap.expect("proc0/fetch_latency/tag_access") / count;
            fetch.hand_off += snap.expect("proc0/fetch_latency/hand_off") / count;
            fetch.fetch_distribution +=
                snap.expect("proc0/fetch_latency/fetch_distribution") / count;
            fetch.dispatch += snap.expect("proc0/fetch_latency/dispatch") / count;
            commit.handshake += snap.expect("proc0/commit_latency/handshake") / count;
            commit.arch_update += snap.expect("proc0/commit_latency/arch_update") / count;
        }
        series.push(Point {
            cores: n,
            fetch,
            commit,
        });
    }

    println!("Figure 9a: distributed fetch latency per block (cycles, suite average)");
    println!(
        "{:>5} {:>10} {:>5} {:>9} {:>10} {:>9} {:>7}",
        "cores", "predict", "tag", "hand-off", "fetch-dist", "dispatch", "total"
    );
    for p in &series {
        println!(
            "{:>5} {:>10.1} {:>5.1} {:>9.1} {:>10.1} {:>9.1} {:>7.1}",
            p.cores,
            p.fetch.prediction,
            p.fetch.tag_access,
            p.fetch.hand_off,
            p.fetch.fetch_distribution,
            p.fetch.dispatch,
            p.fetch.total()
        );
    }
    println!();
    println!("Figure 9b: distributed commit latency per block (cycles, suite average)");
    println!(
        "{:>5} {:>10} {:>12} {:>7}",
        "cores", "handshake", "arch-update", "total"
    );
    for p in &series {
        println!(
            "{:>5} {:>10.1} {:>12.1} {:>7.1}",
            p.cores,
            p.commit.handshake,
            p.commit.arch_update,
            p.commit.total()
        );
    }

    save_json("fig9.json", &Out { series, failures });
    fig.save_sweep_snapshots(&rows);
}
