//! Table 2: component areas (mm² at 130 nm) and the average power
//! breakdown of TRIPS versus an 8-core TFlex processor.

use clp_bench::{save_json, sweep_suite_resilient, CellFailure};
use clp_power::PowerBreakdown;
use clp_workloads::suite;
use serde::Serialize;

#[derive(Serialize)]
struct PowerRows {
    tflex8: PowerBreakdown,
    trips: PowerBreakdown,
    failures: Vec<CellFailure>,
}

fn main() {
    let area = clp_power::AreaModel::at_130nm();
    println!("{}", area.table());
    println!(
        "die check: 8 TFlex cores + 1.5MB L2 = {:.1} mm^2 (18mm x 18mm die = 324 mm^2)",
        clp_power::chip_area_mm2(&area, 8, 1.5)
    );
    println!();

    // Average power across the suite at the paper's two organizations.
    let (rows, failures) = sweep_suite_resilient(&suite::all(), &[8]).complete_rows();
    for f in &failures {
        eprintln!("warning: dropping failed cell {f}");
    }
    let n = rows.len() as f64;
    let mut tflex8 = PowerBreakdown::default();
    let mut trips = PowerBreakdown::default();
    let add = |acc: &mut PowerBreakdown, p: &PowerBreakdown, n: f64| {
        acc.fetch += p.fetch / n;
        acc.execution += p.execution / n;
        acc.l1d += p.l1d / n;
        acc.routers += p.routers / n;
        acc.l2 += p.l2 / n;
        acc.dram_io += p.dram_io / n;
        acc.clock += p.clock / n;
        acc.leakage += p.leakage / n;
    };
    for r in &rows {
        add(&mut tflex8, &r.tflex[0].1.power, n);
        add(&mut trips, &r.trips.power, n);
    }

    println!("Table 2 (average power across the 26-benchmark suite)");
    println!("{}", tflex8.table_row("8-core TFlex"));
    println!("{}", trips.table_row("TRIPS"));
    println!(
        "leakage fractions: TFlex {:.1}%  TRIPS {:.1}%  (paper: 8-10%)",
        100.0 * tflex8.leakage_fraction(),
        100.0 * trips.leakage_fraction()
    );

    save_json(
        "table2.json",
        &PowerRows {
            tflex8,
            trips,
            failures,
        },
    );
}
