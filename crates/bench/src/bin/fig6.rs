//! Figure 6: speedup of TFlex compositions (2–32 cores) and TRIPS over a
//! single TFlex core, per benchmark, plus AVG and BEST.
//!
//! Paper shape: 16-core TFlex averages ~3.5x over one core; BEST adds
//! ~13% more (~4x); 8-core TFlex beats TRIPS by ~19%; BEST beats TRIPS
//! by ~42%.

use clp_bench::cli::FigObs;
use clp_bench::{
    geomean, order_by_ilp, save_json, sweep_suite_resilient_observed, CellFailure, SWEEP_SIZES,
};
use clp_workloads::suite;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: &'static str,
    ilp: String,
    speedups: Vec<(usize, f64)>,
    trips: f64,
    best_size: usize,
    best: f64,
}

#[derive(Serialize)]
struct Out {
    rows: Vec<Row>,
    failures: Vec<CellFailure>,
}

fn main() {
    let fig = FigObs::parse_env("fig6");
    let workloads = suite::all();
    let (mut rows, failures) =
        sweep_suite_resilient_observed(&workloads, &SWEEP_SIZES, &fig.obs_options())
            .complete_rows();
    for f in &failures {
        eprintln!("warning: dropping failed cell {f}");
    }
    order_by_ilp(&mut rows);

    println!("Figure 6: speedup over one TFlex core");
    println!(
        "{:<10} {:>4} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "benchmark", "ilp", "x2", "x4", "x8", "x16", "x32", "TRIPS", "BESTn", "BEST"
    );
    let mut out = Vec::new();
    for r in &rows {
        let s: Vec<(usize, f64)> = SWEEP_SIZES.iter().map(|&n| (n, r.speedup_at(n))).collect();
        let trips_speedup = r.cycles_at(1) as f64 / r.trips.cycles() as f64;
        println!(
            "{:<10} {:>4} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>6} {:>6.2}",
            r.workload.name,
            format!("{:?}", r.workload.ilp).to_lowercase(),
            r.speedup_at(2),
            r.speedup_at(4),
            r.speedup_at(8),
            r.speedup_at(16),
            r.speedup_at(32),
            trips_speedup,
            r.best_size(),
            r.best_speedup(),
        );
        out.push(Row {
            name: r.workload.name,
            ilp: format!("{:?}", r.workload.ilp),
            speedups: s,
            trips: trips_speedup,
            best_size: r.best_size(),
            best: r.best_speedup(),
        });
    }

    println!();
    for &n in &SWEEP_SIZES[1..] {
        let avg = geomean(&rows.iter().map(|r| r.speedup_at(n)).collect::<Vec<_>>());
        println!("AVG  x{n:<2}: {avg:.2}");
    }
    let avg_best = geomean(&rows.iter().map(|r| r.best_speedup()).collect::<Vec<_>>());
    let avg_trips = geomean(
        &rows
            .iter()
            .map(|r| r.cycles_at(1) as f64 / r.trips.cycles() as f64)
            .collect::<Vec<_>>(),
    );
    let avg8_vs_trips = geomean(&rows.iter().map(|r| r.vs_trips_at(8)).collect::<Vec<_>>());
    let best_vs_trips = geomean(
        &rows
            .iter()
            .map(|r| r.trips.cycles() as f64 / r.cycles_at(r.best_size()) as f64)
            .collect::<Vec<_>>(),
    );
    println!("AVG  BEST: {avg_best:.2}  (paper: ~4x, +13% over the best fixed size)");
    println!("AVG  TRIPS: {avg_trips:.2}");
    println!("8-core TFlex vs TRIPS: {avg8_vs_trips:.2}x  (paper: ~1.19x)");
    println!("BEST TFlex  vs TRIPS: {best_vs_trips:.2}x  (paper: ~1.42x)");

    save_json(
        "fig6.json",
        &Out {
            rows: out,
            failures,
        },
    );
    fig.save_sweep_snapshots(&rows);
}
