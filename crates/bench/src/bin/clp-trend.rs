//! clp-trend: deterministic time-series telemetry and phase detection
//! for composed processors.
//!
//! ```sh
//! cargo run --release -p clp-bench --bin clp-trend -- conv 16
//! cargo run --release -p clp-bench --bin clp-trend -- --suite --json
//! cargo run --release -p clp-bench --bin clp-trend -- conv --paths mem/l1d_misses,operand_net/msgs_delivered
//! ```
//!
//! Runs one workload (or the whole built-in suite with `--suite`) with
//! trend recording enabled and prints, per workload, the ASCII IPC
//! timeline with phase boundaries and the phase table with per-phase
//! bucket breakdowns.
//!
//! `--json` replaces the tables with pinned `clp-trend-v1` documents on
//! stdout (one top-level object; per-run reports under `"runs"`).
//! `--cores N` picks the composition size (default 16); `--period N`
//! the interval width in cycles (default 1000); `--paths a,b,c` records
//! extra stats-registry columns; `--phase-window N` and `--threshold N`
//! tune the change-point detector; `--perfetto <path>` additionally
//! writes the series as Chrome counter tracks.

use clp_core::{compile_workload, run_compiled_observed, ObsOptions, ProcessorConfig};
use clp_obs::TrendOptions;
use clp_workloads::suite;
use serde::Value;

struct Args {
    workloads: Vec<String>,
    cores: usize,
    json: bool,
    period: u64,
    paths: Vec<String>,
    phase_window: usize,
    threshold: u64,
    perfetto: Option<String>,
}

fn die(msg: &str) -> ! {
    eprintln!("clp-trend: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        workloads: Vec::new(),
        cores: 16,
        json: false,
        period: 1000,
        paths: Vec::new(),
        phase_window: 4,
        threshold: 150,
        perfetto: None,
    };
    let mut want_suite = false;
    let mut positional = 0;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut flag_value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{flag} requires a value")))
        };
        match a.as_str() {
            "--suite" => want_suite = true,
            "--json" => args.json = true,
            "--cores" => {
                let v = flag_value("--cores");
                match v.parse() {
                    Ok(c) if c > 0 => args.cores = c,
                    _ => die(&format!("bad --cores `{v}`")),
                }
            }
            "--period" => {
                let v = flag_value("--period");
                match v.parse() {
                    Ok(p) if p > 0 => args.period = p,
                    _ => die(&format!("--period wants cycles >= 1, got `{v}`")),
                }
            }
            "--paths" => {
                let v = flag_value("--paths");
                args.paths
                    .extend(v.split(',').filter(|s| !s.is_empty()).map(String::from));
            }
            "--phase-window" => {
                let v = flag_value("--phase-window");
                match v.parse() {
                    Ok(w) if w > 0 => args.phase_window = w,
                    _ => die(&format!("bad --phase-window `{v}`")),
                }
            }
            "--threshold" => {
                let v = flag_value("--threshold");
                match v.parse() {
                    Ok(t) => args.threshold = t,
                    Err(_) => die(&format!("bad --threshold `{v}`")),
                }
            }
            "--perfetto" => args.perfetto = Some(flag_value("--perfetto")),
            _ => {
                match positional {
                    0 => args.workloads.push(a),
                    1 => match a.parse() {
                        Ok(c) => args.cores = c,
                        Err(_) => die(&format!("bad core count `{a}`")),
                    },
                    _ => die(&format!("unexpected argument `{a}`")),
                }
                positional += 1;
            }
        }
    }
    if want_suite {
        args.workloads = suite::all()
            .into_iter()
            .map(|w| w.name.to_string())
            .collect();
    } else if args.workloads.is_empty() {
        die("pass a workload name or --suite");
    }
    args
}

fn main() {
    let args = parse_args();
    let trend_opts = TrendOptions {
        period: args.period,
        paths: args.paths.clone(),
        phase_window: args.phase_window,
        phase_threshold: args.threshold,
        ..TrendOptions::default()
    };
    let obs = ObsOptions {
        trend: Some(trend_opts),
        ..ObsOptions::default()
    };
    let mut runs: Vec<Value> = Vec::new();
    for name in &args.workloads {
        let w = suite::by_name(name).unwrap_or_else(|| {
            let names: Vec<&str> = suite::all().into_iter().map(|w| w.name).collect();
            die(&format!(
                "unknown workload `{name}`; available: {}",
                names.join(", ")
            ))
        });
        let cw = compile_workload(&w).unwrap_or_else(|e| die(&format!("{name}: {e}")));
        let r = run_compiled_observed(&cw, &ProcessorConfig::tflex(args.cores), &obs)
            .unwrap_or_else(|e| die(&format!("{name} on {} cores: {e}", args.cores)));
        let trend = r.trend.expect("trend recording was enabled");
        if let Some(path) = &args.perfetto {
            std::fs::write(path, trend.to_chrome_trace())
                .unwrap_or_else(|e| die(&format!("cannot write `{path}`: {e}")));
            println!("[perfetto counters -> {path}]");
        }
        if args.json {
            runs.push(Value::Object(vec![
                ("workload".to_string(), Value::String(name.clone())),
                ("cores".to_string(), Value::UInt(args.cores as u64)),
                ("trend".to_string(), trend.to_json_value()),
            ]));
        } else {
            println!(
                "== {name} on {} cores: {} cycles ==",
                args.cores, trend.cycles
            );
            print!("{}", trend.render_timeline());
            print!("{}", trend.render_phase_table());
            println!();
        }
    }
    if args.json {
        let doc = Value::Object(vec![
            (
                "schema".to_string(),
                Value::String("clp-trend-suite-v1".to_string()),
            ),
            ("runs".to_string(), Value::Array(runs)),
        ]);
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).expect("serializes")
        );
    }
}
