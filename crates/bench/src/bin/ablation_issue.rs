//! Ablation: limited dual issue (the second TFlex optimization over the
//! single-issue TRIPS tiles, §5). Runs the suite at 8 and 16 cores with
//! issue width 1 versus 2.

use clp_bench::{geomean, save_json};
use clp_core::{compile_workload, run_compiled, ProcessorConfig};
use clp_workloads::suite;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    cores: usize,
    speedup_from_dual_issue_pct: f64,
}

fn main() {
    let workloads = suite::all();
    let mut series = Vec::new();
    for &n in &[8usize, 16] {
        let mut ratios = Vec::new();
        for w in &workloads {
            let cw = compile_workload(w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let dual = run_compiled(&cw, &ProcessorConfig::tflex(n))
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let mut single_cfg = ProcessorConfig::tflex(n);
            single_cfg.sim.core.issue_width = 1;
            let single =
                run_compiled(&cw, &single_cfg).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            ratios.push(single.stats.cycles as f64 / dual.stats.cycles as f64);
        }
        let pct = 100.0 * (geomean(&ratios) - 1.0);
        println!("{n:>2} cores: dual issue buys {pct:+.1}%");
        series.push(Point {
            cores: n,
            speedup_from_dual_issue_pct: pct,
        });
    }
    save_json("ablation_issue.json", &series);
}
