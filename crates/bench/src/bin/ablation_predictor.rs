//! Ablation: distributed versus centralized next-block prediction and
//! control (§4.3). The centralized variant sequences every block through
//! core 0 with a single predictor bank, as the TRIPS prototype does;
//! the distributed variant is standard TFlex.

use clp_bench::{geomean, save_json};
use clp_core::{compile_workload, run_compiled, ProcessorConfig};
use clp_workloads::suite;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    cores: usize,
    speedup_from_distribution_pct: f64,
    mispredict_rate_distributed: f64,
    mispredict_rate_centralized: f64,
}

fn main() {
    let workloads = suite::all();
    let mut series = Vec::new();
    for &n in &[8usize, 16, 32] {
        let mut ratios = Vec::new();
        let mut mp_d = Vec::new();
        let mut mp_c = Vec::new();
        for w in &workloads {
            let cw = compile_workload(w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let dist = run_compiled(&cw, &ProcessorConfig::tflex(n))
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let mut central_cfg = ProcessorConfig::tflex(n);
            central_cfg.sim.centralized_control = true;
            let central =
                run_compiled(&cw, &central_cfg).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            ratios.push(central.stats.cycles as f64 / dist.stats.cycles as f64);
            let rate = |r: &clp_core::RunOutcome| {
                let p = &r.stats.procs[0].predictor;
                if p.predictions == 0 {
                    0.0
                } else {
                    p.mispredictions as f64 / p.predictions as f64
                }
            };
            mp_d.push(rate(&dist));
            mp_c.push(rate(&central));
        }
        let pct = 100.0 * (geomean(&ratios) - 1.0);
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "{n:>2} cores: distribution buys {pct:+.1}% (mispredict rate {:.1}% vs {:.1}% centralized)",
            100.0 * avg(&mp_d),
            100.0 * avg(&mp_c)
        );
        series.push(Point {
            cores: n,
            speedup_from_distribution_pct: pct,
            mispredict_rate_distributed: avg(&mp_d),
            mispredict_rate_centralized: avg(&mp_c),
        });
    }
    save_json("ablation_predictor.json", &series);
}
