//! Bring-up probe: prints the compiled block structure of a workload.
use clp_compiler::{compile, CompileOptions};
use clp_workloads::suite;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "conv".into());
    let w = suite::by_name(&name).expect("workload");
    let edge = compile(&w.program, &CompileOptions::default()).expect("compiles");
    println!("{name}: {} blocks", edge.len());
    for (addr, b) in edge.iter() {
        let exits: Vec<String> = b
            .exits()
            .iter()
            .map(|e| format!("{:?}->{:?}", e.kind, e.target.map(|t| format!("{t:#x}"))))
            .collect();
        println!("  {addr:#07x}: {:>3} instrs, exits {exits:?}", b.len());
    }
}
