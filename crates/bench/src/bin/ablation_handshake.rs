//! §6.4 ablation: how much performance do the distributed-protocol
//! handshakes cost? Compares the modeled control protocol against an
//! idealized machine where all handshaking is instantaneous.
//!
//! Paper result: less than 2% degradation at the largest (32-core)
//! composition — the block-structured ISA amortizes the coordination.

use clp_bench::{geomean, save_json};
use clp_core::{compile_workload, run_compiled, ProcessorConfig};
use clp_sim::ProtocolTiming;
use clp_workloads::suite;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    cores: usize,
    /// Geomean slowdown of modeled handshakes vs instantaneous ones.
    overhead_pct: f64,
}

fn main() {
    let workloads = suite::all();
    let mut series = Vec::new();
    for &n in &[4usize, 8, 16, 32] {
        let mut ratios = Vec::new();
        for w in &workloads {
            let cw = compile_workload(w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let modeled = run_compiled(&cw, &ProcessorConfig::tflex(n))
                .unwrap_or_else(|e| panic!("{} modeled on {n}: {e}", w.name));
            let mut ideal_cfg = ProcessorConfig::tflex(n);
            ideal_cfg.sim.protocol = ProtocolTiming::Instant;
            let ideal = run_compiled(&cw, &ideal_cfg)
                .unwrap_or_else(|e| panic!("{} ideal on {n}: {e}", w.name));
            ratios.push(modeled.stats.cycles as f64 / ideal.stats.cycles as f64);
        }
        let overhead_pct = 100.0 * (geomean(&ratios) - 1.0);
        println!("{n:>2} cores: modeled handshakes cost {overhead_pct:+.1}% vs instantaneous");
        series.push(Point {
            cores: n,
            overhead_pct,
        });
    }
    println!("paper: <2% at 32 cores");
    save_json("ablation_handshake.json", &series);
}
