//! Degraded-mode throughput sweep: how much performance survives a hard
//! core failure, across composition sizes.
//!
//! For each workload and each composition size in {2, 4, 8, 16}, a clean
//! run pins the baseline cycle count; a second run kills one composed
//! core halfway through and must still verify against the interpreter
//! golden on the surviving cores. The sweep reports the throughput
//! retained (clean cycles / degraded cycles), the detection latency of
//! the heartbeat watchdog, and the recovery cost (flushed blocks,
//! migrated architectural state).
//!
//! The shape to expect: larger compositions lose a smaller fraction of
//! their throughput (one core of sixteen is 6% of the capacity; one of
//! two is half), but pay a slightly higher detection latency because the
//! probe round-trip spans a wider region. Everything is deterministic —
//! the kill schedule derives from the clean run's cycle count, not from
//! any wall clock.

use clp_bench::cli::FigObs;
use clp_bench::{geomean, save_json};
use clp_core::{compile_workload, run_compiled_observed, ProcessorConfig};
use clp_sim::FaultPlan;
use clp_workloads::suite;
use serde::Serialize;

/// The composition sizes swept; 1 is excluded because a 1-core
/// composition has no survivor to recover onto.
const SIZES: [usize; 4] = [2, 4, 8, 16];

/// The workloads swept: one per class with short-enough clean runs that
/// the whole sweep stays interactive.
const WORKLOADS: [&str; 5] = ["conv", "tblook", "a2time", "bezier", "gzip"];

#[derive(Serialize)]
struct Row {
    name: &'static str,
    cores: usize,
    /// The composed core that dies (global mesh ID).
    victim: usize,
    kill_cycle: u64,
    clean_cycles: u64,
    degraded_cycles: u64,
    /// clean/degraded: 1.0 means the failure cost nothing.
    throughput_retained: f64,
    detection_cycles: u64,
    flushed_blocks: u64,
    migrated_bytes: u64,
    degraded_ipc: f64,
}

fn main() {
    let fig = FigObs::parse_env("fig_degraded");
    let obs = fig.obs_options();
    let mut rows = Vec::new();
    let mut snapshots = Vec::new();
    for name in WORKLOADS {
        let w = suite::by_name(name).expect("workload exists");
        let cw = compile_workload(&w).unwrap_or_else(|e| panic!("{name}: {e}"));
        for n in SIZES {
            let clean_cfg = ProcessorConfig::tflex(n);
            let clean = run_compiled_observed(&cw, &clean_cfg, &obs)
                .unwrap_or_else(|e| panic!("{name} clean on {n}: {e}"));
            assert!(clean.correct, "{name} clean on {n} cores must verify");

            // Kill a mid-region core halfway through the clean run's
            // cycle count: pre-kill execution is bit-identical to the
            // clean run, so the kill is guaranteed to land mid-flight.
            let region =
                clp_noc::region_for(&clean_cfg.sim.operand_net, n, 0).expect("region exists");
            let victim = region[n / 2].0;
            let kill_cycle = (clean.stats.cycles / 2).max(1);
            let mut plan = FaultPlan::none();
            plan.add_kill(victim, kill_cycle).expect("valid kill");
            let degraded =
                run_compiled_observed(&cw, &ProcessorConfig::tflex(n).with_faults(plan), &obs)
                    .unwrap_or_else(|e| panic!("{name} degraded on {n}: {e}"));
            assert!(
                degraded.correct,
                "{name} on {n} cores must verify after losing core {victim}"
            );
            if fig.stats_json.is_some() {
                snapshots.push((format!("{name}/tflex-{n}/clean"), clean.snapshot.clone()));
                snapshots.push((
                    format!("{name}/tflex-{n}/degraded"),
                    degraded.snapshot.clone(),
                ));
            }
            let rec = &degraded.stats.recovery;
            rows.push(Row {
                name: w.name,
                cores: n,
                victim,
                kill_cycle,
                clean_cycles: clean.stats.cycles,
                degraded_cycles: degraded.stats.cycles,
                throughput_retained: clean.stats.cycles as f64 / degraded.stats.cycles as f64,
                detection_cycles: rec.detection_cycles,
                flushed_blocks: rec.flushed_blocks,
                migrated_bytes: rec.migrated_bytes,
                degraded_ipc: rec.degraded_ipc(),
            });
        }
    }

    println!("Degraded-mode throughput: one core hard-killed mid-run, per composition size");
    println!(
        "{:<8} {:>5} {:>6} {:>10} {:>10} {:>9} {:>7} {:>7} {:>9} {:>7}",
        "bench",
        "cores",
        "victim",
        "clean cyc",
        "killed cyc",
        "retained",
        "detect",
        "flush",
        "migr B",
        "d-ipc"
    );
    for r in &rows {
        println!(
            "{:<8} {:>5} {:>6} {:>10} {:>10} {:>8.0}% {:>7} {:>7} {:>9} {:>7.2}",
            r.name,
            r.cores,
            r.victim,
            r.clean_cycles,
            r.degraded_cycles,
            100.0 * r.throughput_retained,
            r.detection_cycles,
            r.flushed_blocks,
            r.migrated_bytes,
            r.degraded_ipc,
        );
    }

    println!();
    for n in SIZES {
        let v: Vec<f64> = rows
            .iter()
            .filter(|r| r.cores == n)
            .map(|r| r.throughput_retained)
            .collect();
        println!(
            "geomean throughput retained at {n:>2} cores: {:.0}%",
            100.0 * geomean(&v)
        );
    }

    save_json("fig_degraded.json", &rows);
    fig.save_snapshots(snapshots);
}
