//! Ablation: the operand-network bandwidth doubling (one of the two
//! TFlex optimizations over TRIPS, §5). Runs the suite at 8 and 16 cores
//! with link bandwidth 1 (TRIPS-like) versus 2 (TFlex).

use clp_bench::{geomean, save_json};
use clp_core::{compile_workload, run_compiled, ProcessorConfig};
use clp_workloads::suite;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    cores: usize,
    speedup_from_double_bw_pct: f64,
}

fn main() {
    let workloads = suite::all();
    let mut series = Vec::new();
    for &n in &[8usize, 16] {
        let mut ratios = Vec::new();
        for w in &workloads {
            let cw = compile_workload(w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let wide = run_compiled(&cw, &ProcessorConfig::tflex(n))
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let mut narrow_cfg = ProcessorConfig::tflex(n);
            narrow_cfg.sim.operand_net.link_bandwidth = 1;
            let narrow =
                run_compiled(&cw, &narrow_cfg).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            ratios.push(narrow.stats.cycles as f64 / wide.stats.cycles as f64);
        }
        let pct = 100.0 * (geomean(&ratios) - 1.0);
        println!("{n:>2} cores: doubling operand bandwidth buys {pct:+.1}%");
        series.push(Point {
            cores: n,
            speedup_from_double_bw_pct: pct,
        });
    }
    save_json("ablation_bandwidth.json", &series);
}
