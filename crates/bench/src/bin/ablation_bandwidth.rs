//! Ablation: the operand-network bandwidth doubling (one of the two
//! TFlex optimizations over TRIPS, §5). Runs the suite at 8 and 16 cores
//! with link bandwidth 1 (TRIPS-like) versus 2 (TFlex).
//!
//! The operand-network numbers come from the clp-prof attribution
//! rather than ad-hoc message counters: `operand_noc` is the share of
//! the whole-run critical path spent in operand-mesh transit (hop
//! latency plus contention), and the mean hop count is derived from the
//! profiler's per-link attribution (each critical mesh segment is spread
//! over the dimension-order route it took, so total link cycles /
//! operand_noc cycles is the average route length of critical
//! operands). Ad-hoc hop counting in this binary was deleted in favor
//! of that single source of truth.

use clp_bench::{geomean, save_json};
use clp_core::{compile_workload, run_compiled_observed, ObsOptions, ProcessorConfig};
use clp_obs::{Bucket, ProfileReport};
use clp_workloads::suite;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    cores: usize,
    speedup_from_double_bw_pct: f64,
    /// Share of the critical path in operand-mesh transit (narrow bw).
    narrow_noc_share_pct: f64,
    /// Share of the critical path in operand-mesh transit (doubled bw).
    wide_noc_share_pct: f64,
    /// Mean dimension-order route length of critical operands, in links
    /// (profiler link attribution / operand_noc cycles, doubled bw).
    mean_critical_hops: f64,
}

fn noc_share_and_hops(report: &ProfileReport) -> (f64, f64) {
    let buckets = report.run_buckets();
    let noc = buckets.get(Bucket::OperandNoc);
    let share = 100.0 * noc as f64 / buckets.total().max(1) as f64;
    let link_total: u64 = report.link_cycles.iter().map(|&(_, c)| c).sum();
    let hops = if noc == 0 {
        0.0
    } else {
        link_total as f64 / noc as f64
    };
    (share, hops)
}

fn main() {
    let workloads = suite::all();
    let obs = ObsOptions {
        profile: true,
        ..ObsOptions::default()
    };
    let mut series = Vec::new();
    for &n in &[8usize, 16] {
        let mut ratios = Vec::new();
        let mut narrow_shares = Vec::new();
        let mut wide_shares = Vec::new();
        let mut hop_means = Vec::new();
        for w in &workloads {
            let cw = compile_workload(w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let wide = run_compiled_observed(&cw, &ProcessorConfig::tflex(n), &obs)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let mut narrow_cfg = ProcessorConfig::tflex(n);
            narrow_cfg.sim.operand_net.link_bandwidth = 1;
            let narrow = run_compiled_observed(&cw, &narrow_cfg, &obs)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            ratios.push(narrow.stats.cycles as f64 / wide.stats.cycles as f64);
            let (ns, _) = noc_share_and_hops(narrow.profile.as_ref().expect("profiled"));
            let (ws, wh) = noc_share_and_hops(wide.profile.as_ref().expect("profiled"));
            narrow_shares.push(ns);
            wide_shares.push(ws);
            hop_means.push(wh);
        }
        let pct = 100.0 * (geomean(&ratios) - 1.0);
        let count = workloads.len() as f64;
        let narrow_share = narrow_shares.iter().sum::<f64>() / count;
        let wide_share = wide_shares.iter().sum::<f64>() / count;
        let hops = hop_means.iter().sum::<f64>() / count;
        println!(
            "{n:>2} cores: doubling operand bandwidth buys {pct:+.1}% \
             (critical-path noc share {narrow_share:.1}% -> {wide_share:.1}%, \
             {hops:.1} hops/critical operand)"
        );
        series.push(Point {
            cores: n,
            speedup_from_double_bw_pct: pct,
            narrow_noc_share_pct: narrow_share,
            wide_noc_share_pct: wide_share,
            mean_critical_hops: hops,
        });
    }
    save_json("ablation_bandwidth.json", &series);
}
