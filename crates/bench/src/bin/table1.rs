//! Table 1: single-core TFlex microarchitectural parameters.

use clp_sim::{table1_text, SimConfig};

fn main() {
    println!("{}", table1_text(&SimConfig::tflex()));
    println!();
    println!("TRIPS baseline differences: 16 single-issue tiles, centralized");
    println!("control/prediction at tile 0, operand-network bandwidth 1,");
    println!("8 in-flight blocks (1K-instruction window).");
}
