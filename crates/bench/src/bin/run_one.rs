//! Command-line runner: one workload at one composition, with a full
//! machine-state dump on failure. Handy for quick measurements and for
//! debugging protocol stalls.
//!
//! ```sh
//! cargo run --release -p clp-bench --bin run_one -- mcf 16
//! ```

use clp_core::compile_workload;
use clp_isa::Reg;
use clp_sim::{Machine, SimConfig};
use clp_workloads::suite;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map_or("gzip", String::as_str);
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(32);
    let w = suite::by_name(name).expect("workload exists");
    let cw = compile_workload(&w).expect("compiles");
    let mut cfg = SimConfig::tflex();
    cfg.max_cycles = 2_000_000;
    let mut m = Machine::new(cfg);
    for (addr, words) in &w.init_mem {
        m.memory_mut().image.load_words(*addr, words);
    }
    let pid = m.compose(n, 0, cw.edge.clone(), &w.args).expect("composes");
    match m.run() {
        Ok(stats) => {
            let ret = m.register(pid, Reg::new(1));
            let ok = w.verify_against(&cw.golden, ret, &m.memory().image).is_ok();
            println!(
                "{name} on {n} cores: {} cycles, ret={ret:#x}, correct={ok}",
                stats.cycles
            );
        }
        Err(e) => {
            println!("{name} on {n} cores FAILED: {e}");
            println!("{}", m.debug_snapshot());
        }
    }
}
