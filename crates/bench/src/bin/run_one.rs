//! Command-line runner: one workload at one composition, with a full
//! machine-state dump on failure. Handy for quick measurements, for
//! debugging protocol stalls, and for capturing traces.
//!
//! ```sh
//! cargo run --release -p clp-bench --bin run_one -- mcf 16
//! cargo run --release -p clp-bench --bin run_one -- \
//!     802.11b 16 --trace out.json --stats-json stats.json --sample-every 500
//! ```
//!
//! `--trace <path>` writes a Chrome trace-event JSON file (open at
//! <https://ui.perfetto.dev>); `--stats-json <path>` writes the unified
//! [`clp_obs::StatsSnapshot`]; `--sample-every <cycles>` sets the
//! interval-sampling period (default 1000 when `--stats-json` is given).
//!
//! `--faults <spec>` attaches a deterministic fault-injection plan: a
//! comma-separated list of `kind[=rate]` entries (rate in per-mille,
//! default 25), or `all[=rate]` for every kind, e.g.
//! `--faults noc_delay,forced_nack=100`. Kinds: `noc_delay`, `noc_burst`,
//! `forced_nack`, `mispredict`, `dram_spike`, `handoff_delay`.
//! `--fault-seed <n>` picks the PRNG stream (default 1); the same spec
//! and seed always reproduce the same cycle count.
//!
//! `--threads <n>` steps the operand mesh on `n` worker shards; any
//! value produces bit-identical cycle counts and stats (see the
//! "Execution engine" section of DESIGN.md for the determinism
//! argument), so this is purely a wall-clock knob.
//!
//! `--lint` runs the [`clp_lint`] static analyses on the compiled
//! program before simulating and refuses to run it if any
//! error-severity diagnostic is found.
//!
//! `--bound` computes the clp-bound static cycle floor at the chosen
//! composition size, prints it beside the measured cycles with the
//! per-block component breakdown (which resource binds each block:
//! dataflow height, issue bandwidth, NoC link, or dispatch), and
//! renders the L5xx bound lints rustc-style.
//!
//! `--profile` enables the clp-prof cycle-accounting layer and prints
//! the top-down breakdown, the per-core contribution heatmap, and the
//! hottest mesh links after the run (see also the `clp-prof` binary for
//! suite-wide tables and JSON output).
//!
//! `--trend` records the clp-trend columnar time series (bucket shares
//! and IPC per interval) and prints the ASCII phase timeline after the
//! run; `--phase-table` also prints the per-phase bucket breakdown
//! table (and implies `--trend`). Both enable profiling so the bucket
//! columns are populated; cycle counts stay bit-identical either way.
//!
//! `--kill-core ID@CYCLE` (repeatable, up to 4) schedules a *hard*
//! kill: global core ID dies permanently at that cycle and the
//! composition must detect it, migrate state, and recompose around the
//! survivors. The schedule is exactly reproducible.
//!
//! `--max-cycles N` arms the per-run deadline watchdog: if the
//! simulation crosses N cycles it is killed with a typed
//! `DeadlineExceeded` error and run_one exits with code 4 — distinct
//! from other run failures so wrappers (CI timeouts, clp-serve) can
//! tell "job was slow" from "job is broken".
//!
//! Exit codes tell failure modes apart: 1 = outputs diverged from the
//! golden, 2 = usage error, 3 = the run itself failed (deadlock, cycle
//! limit, invalid kill schedule — i.e. recovery failure), 4 = killed by
//! the `--max-cycles` deadline.

use clp_core::compile_workload;
use clp_isa::Reg;
use clp_obs::{ChromeTraceWriter, Tracer, TrendOptions};
use clp_sim::{CoreKill, FaultPlan, Machine, RunError, SimConfig, ALL_FAULT_KINDS};
use clp_workloads::suite;

struct Args {
    name: String,
    cores: usize,
    trace: Option<String>,
    stats_json: Option<String>,
    sample_every: Option<u64>,
    faults: Option<String>,
    fault_seed: u64,
    kills: Vec<CoreKill>,
    max_cycles: Option<u64>,
    lint: bool,
    bound: bool,
    threads: usize,
    profile: bool,
    trend: bool,
    phase_table: bool,
}

fn die(msg: &str) -> ! {
    eprintln!("run_one: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        name: "gzip".to_string(),
        cores: 32,
        trace: None,
        stats_json: None,
        sample_every: None,
        faults: None,
        fault_seed: 1,
        kills: Vec::new(),
        max_cycles: None,
        lint: false,
        bound: false,
        threads: 1,
        profile: false,
        trend: false,
        phase_table: false,
    };
    let mut positional = 0;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut flag_value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{flag} requires a value")))
        };
        match a.as_str() {
            "--trace" => args.trace = Some(flag_value("--trace")),
            "--stats-json" => args.stats_json = Some(flag_value("--stats-json")),
            "--sample-every" => {
                let v = flag_value("--sample-every");
                match v.parse() {
                    Ok(p) if p > 0 => args.sample_every = Some(p),
                    _ => die(&format!("--sample-every wants a period >= 1, got `{v}`")),
                }
            }
            "--lint" => args.lint = true,
            "--bound" => args.bound = true,
            "--threads" => {
                let v = flag_value("--threads");
                match v.parse() {
                    Ok(t) if t >= 1 => args.threads = t,
                    _ => die(&format!("--threads wants a count >= 1, got `{v}`")),
                }
            }
            "--profile" => args.profile = true,
            "--trend" => args.trend = true,
            "--phase-table" => {
                args.phase_table = true;
                args.trend = true;
            }
            "--faults" => args.faults = Some(flag_value("--faults")),
            "--kill-core" => {
                let v = flag_value("--kill-core");
                match CoreKill::parse(&v) {
                    Ok(k) => args.kills.push(k),
                    Err(e) => die(&format!("bad --kill-core: {e}")),
                }
            }
            "--max-cycles" => {
                let v = flag_value("--max-cycles");
                match v.parse() {
                    Ok(n) if n > 0 => args.max_cycles = Some(n),
                    _ => die(&format!("--max-cycles wants a budget >= 1, got `{v}`")),
                }
            }
            "--fault-seed" => {
                let v = flag_value("--fault-seed");
                match v.parse() {
                    Ok(s) => args.fault_seed = s,
                    Err(_) => die(&format!("bad --fault-seed `{v}`")),
                }
            }
            _ => {
                match positional {
                    0 => args.name = a,
                    1 => match a.parse() {
                        Ok(c) => args.cores = c,
                        Err(_) => die(&format!("bad core count `{a}`")),
                    },
                    _ => die(&format!("unexpected argument `{a}`")),
                }
                positional += 1;
            }
        }
    }
    args
}

fn main() {
    // Nonzero exit on a failed or incorrect run, so CI smoke jobs can
    // gate on run_one directly.
    let mut exit_code = 0;
    let args = parse_args();
    let (name, n) = (args.name.as_str(), args.cores);
    let w = suite::by_name(name).unwrap_or_else(|| {
        let names: Vec<&str> = suite::all().into_iter().map(|w| w.name).collect();
        die(&format!(
            "unknown workload `{name}`; available: {}",
            names.join(", ")
        ))
    });
    let cw = compile_workload(&w).expect("compiles");
    if args.lint {
        let cfg = clp_lint::LintConfig {
            placement_cores: n,
            ..clp_lint::LintConfig::default()
        };
        let report = clp_lint::lint_program(&cw.edge, &cfg);
        if report.is_empty() {
            println!("[lint: clean]");
        } else {
            print!("{}", clp_lint::render_report(&report, Some(&cw.edge)));
        }
        if report.has_errors() {
            die("lint found error-severity diagnostics");
        }
    }
    // Fail on an unwritable output path now, not after a long run.
    for path in args.trace.iter().chain(&args.stats_json) {
        if let Err(e) = std::fs::write(path, "") {
            die(&format!("cannot write `{path}`: {e}"));
        }
    }
    let mut cfg = SimConfig::tflex();
    cfg.max_cycles = 2_000_000;
    cfg.deadline = args.max_cycles;
    cfg.threads = args.threads;
    if let Some(spec) = &args.faults {
        cfg.faults = FaultPlan::parse(spec, args.fault_seed)
            .unwrap_or_else(|e| die(&format!("bad --faults spec: {e}")));
    }
    for k in &args.kills {
        cfg.faults
            .add_kill(usize::from(k.core), k.cycle)
            .unwrap_or_else(|e| die(&format!("bad --kill-core schedule: {e}")));
    }
    let mut m = Machine::new(cfg);
    if let Some(path) = &args.trace {
        m.set_tracer(Tracer::new(ChromeTraceWriter::new(path)));
    }
    if args.stats_json.is_some() || args.sample_every.is_some() {
        m.set_sample_period(args.sample_every.unwrap_or(1000));
    }
    if args.profile {
        m.enable_profiling();
    }
    if args.trend {
        if !args.profile {
            m.enable_profiling();
        }
        m.enable_trend(TrendOptions {
            period: args.sample_every.unwrap_or(1000),
            ..TrendOptions::default()
        });
    }
    for (addr, words) in &w.init_mem {
        m.memory_mut().image.load_words(*addr, words);
    }
    let pid = m
        .compose(n, 0, cw.edge.clone(), &w.args)
        .unwrap_or_else(|e| die(&format!("cannot compose {n} cores: {e:?}")));
    match m.run() {
        Ok(stats) => {
            let ret = m.register(pid, Reg::new(1));
            let ok = w.verify_against(&cw.golden, ret, &m.memory().image).is_ok();
            println!(
                "{name} on {n} cores: {} cycles, ret={ret:#x}, correct={ok}",
                stats.cycles
            );
            if !ok {
                exit_code = 1;
            }
            if args.faults.is_some() {
                let fs = stats.faults;
                let per_kind: Vec<String> = ALL_FAULT_KINDS
                    .iter()
                    .filter(|&&k| fs.count(k) > 0)
                    .map(|&k| format!("{}={}", k.label(), fs.count(k)))
                    .collect();
                println!(
                    "[faults: {} injected (seed {}){}{}]",
                    fs.total(),
                    args.fault_seed,
                    if per_kind.is_empty() { "" } else { ": " },
                    per_kind.join(", ")
                );
            }
            if !args.kills.is_empty() {
                let rec = stats.recovery;
                println!(
                    "[recovery: {} killed, {} recoveries, detection {:.0} cycles, \
                     {} blocks flushed, {} B migrated, degraded ipc {:.2}]",
                    rec.cores_killed,
                    rec.recoveries,
                    rec.mean_detection_latency(),
                    rec.flushed_blocks,
                    rec.migrated_bytes,
                    rec.degraded_ipc(),
                );
            }
            if args.bound {
                let lcfg = clp_lint::LintConfig {
                    placement_cores: n,
                    ..clp_lint::LintConfig::default()
                };
                let pb = clp_lint::bound_program(&cw.edge, &lcfg, n);
                println!(
                    "[bound: static floor {} cycles vs {} measured ({:.2}x), \
                     floors must-commit={} terminal={} work={}]",
                    pb.cycles,
                    stats.cycles,
                    stats.cycles as f64 / pb.cycles as f64,
                    pb.must_commit,
                    pb.terminal,
                    pb.work_floor,
                );
                for b in &pb.blocks {
                    println!(
                        "  block @{:#x}: bound {} cycles, bound by {} \
                         (height {}, flat {}, issue {}, noc {}, dispatch {}{})",
                        b.addr,
                        b.cycles,
                        b.binding.label(),
                        b.height,
                        b.flat_height,
                        b.issue,
                        b.noc,
                        b.dispatch,
                        if b.exhaustive {
                            ""
                        } else {
                            "; sampled predicate paths"
                        },
                    );
                }
                let diags = clp_lint::lint_bounds(&cw.edge, &lcfg);
                if !diags.is_empty() {
                    let report = clp_lint::LintReport { diagnostics: diags };
                    print!("{}", clp_lint::render_report(&report, Some(&cw.edge)));
                }
            }
            if args.profile {
                let report = m.profile_report().expect("profiling enabled");
                print!("{}", report.render_breakdown());
                print!("{}", report.render_core_heatmap());
                print!("{}", report.render_links(8));
            }
            if args.trend {
                let trend = m.take_trend_report().expect("trend enabled");
                print!("{}", trend.render_timeline());
                if args.phase_table {
                    print!("{}", trend.render_phase_table());
                }
            }
            let snapshot = m.snapshot();
            if let Some(path) = &args.stats_json {
                std::fs::write(path, snapshot.to_json()).expect("can write stats");
                println!(
                    "[stats -> {path}: {} intervals, ipc {:.2}]",
                    snapshot.intervals.len(),
                    snapshot.expect("proc0/ipc"),
                );
            }
        }
        Err(RunError::DeadlineExceeded { budget }) => {
            println!("{name} on {n} cores KILLED: exceeded --max-cycles deadline of {budget}");
            // 4: the watchdog fired. The job may well be fine, just
            // slower than the budget — callers decide whether to retry
            // with a larger one.
            exit_code = 4;
        }
        Err(e) => {
            println!("{name} on {n} cores FAILED: {e}");
            println!("{}", m.debug_snapshot());
            // 3, not 1: the run itself died (deadlock, cycle limit, bad
            // kill schedule), as opposed to finishing with wrong outputs.
            exit_code = 3;
        }
    }
    if let Some(path) = &args.trace {
        m.tracer().finish().expect("can write trace");
        println!("[trace -> {path}]");
    }
    std::process::exit(exit_code);
}
