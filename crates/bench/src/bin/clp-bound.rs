//! clp-bound: static per-block cycle/resource lower bounds, checked
//! against the simulator.
//!
//! ```sh
//! cargo run --release -p clp-bench --bin clp-bound -- conv 16
//! cargo run --release -p clp-bench --bin clp-bound -- --suite --json
//! cargo run --release -p clp-bench --bin clp-bound -- --suite --check BOUND_baseline.json
//! ```
//!
//! For each workload and composition size, computes the clp-lint static
//! cycle bound ([`clp_lint::bound_program`]), runs the simulator with
//! profiling, and reports the bound beside the measured cycles with the
//! tightness ratio `measured / bound`. Every invocation *enforces
//! soundness*: the program bound must not exceed the measured cycles,
//! and no per-block bound may exceed the shortest fetch-to-commit span
//! the profiler observed for that block — any violation is printed and
//! the process exits 1.
//!
//! `--json` emits the pinned `clp-bound-v1` schema; `--check FILE`
//! compares the per-cell `bound`/`measured` figures against a committed
//! baseline (the CI regression gate); `--cores A,B,..` overrides the
//! default 1,2,4,8,16 sweep. The `curves` section is the analytic
//! speedup sketch `bound(1)/bound(n)` exported through
//! [`clp_alloc::SpeedupCurve::analytic`].

use clp_alloc::SpeedupCurve;
use clp_core::{compile_workload, run_compiled_observed, ObsOptions, ProcessorConfig};
use clp_lint::{bound_program, LintConfig, ProgramBound};
use clp_workloads::suite;
use serde::Value;

const DEFAULT_CORES: [usize; 5] = [1, 2, 4, 8, 16];

struct Args {
    workloads: Vec<String>,
    cores: Vec<usize>,
    json: bool,
    check: Option<String>,
}

fn die(msg: &str) -> ! {
    eprintln!("clp-bound: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        workloads: Vec::new(),
        cores: DEFAULT_CORES.to_vec(),
        json: false,
        check: None,
    };
    let mut want_suite = false;
    let mut positional = 0;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut flag_value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{flag} requires a value")))
        };
        match a.as_str() {
            "--suite" => want_suite = true,
            "--json" => args.json = true,
            "--check" => args.check = Some(flag_value("--check")),
            "--cores" => {
                let v = flag_value("--cores");
                let parsed: Result<Vec<usize>, _> = v.split(',').map(str::parse).collect();
                match parsed {
                    Ok(cs) if !cs.is_empty() && cs.iter().all(|&c| c > 0) => args.cores = cs,
                    _ => die(&format!("bad --cores `{v}`")),
                }
            }
            _ => {
                match positional {
                    0 => args.workloads.push(a),
                    1 => match a.parse() {
                        Ok(c) if c > 0 => args.cores = vec![c],
                        _ => die(&format!("bad core count `{a}`")),
                    },
                    _ => die(&format!("unexpected argument `{a}`")),
                }
                positional += 1;
            }
        }
    }
    if want_suite {
        args.workloads = suite::all()
            .into_iter()
            .map(|w| w.name.to_string())
            .collect();
    } else if args.workloads.is_empty() {
        die("pass a workload name or --suite");
    }
    args
}

struct Cell {
    workload: String,
    cores: usize,
    bound: ProgramBound,
    measured: u64,
}

impl Cell {
    fn tightness(&self) -> f64 {
        self.measured as f64 / self.bound.cycles as f64
    }

    /// Which program-level floor set the bound.
    fn floor(&self) -> &'static str {
        let b = &self.bound;
        if b.must_commit >= b.terminal && b.must_commit >= b.work_floor {
            "must-commit"
        } else if b.terminal >= b.work_floor {
            "terminal"
        } else {
            "work"
        }
    }

    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("workload".to_string(), Value::String(self.workload.clone())),
            ("cores".to_string(), Value::UInt(self.cores as u64)),
            ("bound".to_string(), Value::UInt(self.bound.cycles)),
            ("measured".to_string(), Value::UInt(self.measured)),
            ("tightness".to_string(), Value::Float(self.tightness())),
            (
                "must_commit".to_string(),
                Value::UInt(self.bound.must_commit),
            ),
            ("terminal".to_string(), Value::UInt(self.bound.terminal)),
            ("work_floor".to_string(), Value::UInt(self.bound.work_floor)),
        ])
    }
}

fn main() {
    let args = parse_args();
    let cfg = LintConfig::default();
    let mut cells: Vec<Cell> = Vec::new();
    let mut violations: Vec<String> = Vec::new();

    for name in &args.workloads {
        let w = suite::by_name(name).unwrap_or_else(|| {
            let names: Vec<&str> = suite::all().into_iter().map(|w| w.name).collect();
            die(&format!(
                "unknown workload `{name}`; available: {}",
                names.join(", ")
            ))
        });
        let cw = compile_workload(&w).unwrap_or_else(|e| die(&format!("{name}: {e}")));
        for &cores in &args.cores {
            let pb = bound_program(&cw.edge, &cfg, cores);
            let obs = ObsOptions {
                profile: true,
                ..ObsOptions::default()
            };
            let r = run_compiled_observed(&cw, &ProcessorConfig::tflex(cores), &obs)
                .unwrap_or_else(|e| die(&format!("{name} on {cores} cores: {e}")));
            let measured = r.stats.cycles;
            if pb.cycles > measured {
                violations.push(format!(
                    "{name} on {cores} cores: program bound {} > measured {measured}",
                    pb.cycles
                ));
            }
            let spans = r.profile.expect("profiling was enabled").block_spans();
            for bb in &pb.blocks {
                if let Some(s) = spans.get(&bb.addr) {
                    if bb.cycles > s.min_cycles {
                        violations.push(format!(
                            "{name} on {cores} cores: block @{:#x} bound {} \
                             ({}) > measured min span {}",
                            bb.addr,
                            bb.cycles,
                            bb.binding.label(),
                            s.min_cycles
                        ));
                    }
                }
            }
            cells.push(Cell {
                workload: name.clone(),
                cores,
                bound: pb,
                measured,
            });
        }
    }

    let curves: Vec<(String, SpeedupCurve)> = args
        .workloads
        .iter()
        .filter_map(|name| {
            let samples: Vec<(usize, u64)> = cells
                .iter()
                .filter(|c| &c.workload == name)
                .map(|c| (c.cores, c.bound.cycles))
                .collect();
            samples
                .iter()
                .any(|&(c, _)| c == 1)
                .then(|| (name.clone(), SpeedupCurve::analytic(name, &samples)))
        })
        .collect();

    if args.json {
        let doc = Value::Object(vec![
            (
                "schema".to_string(),
                Value::String("clp-bound-v1".to_string()),
            ),
            (
                "cores".to_string(),
                Value::Array(args.cores.iter().map(|&c| Value::UInt(c as u64)).collect()),
            ),
            (
                "cells".to_string(),
                Value::Array(cells.iter().map(Cell::to_json).collect()),
            ),
            (
                "curves".to_string(),
                Value::Array(
                    curves
                        .iter()
                        .map(|(name, curve)| {
                            Value::Object(vec![
                                ("workload".to_string(), Value::String(name.clone())),
                                (
                                    "speedup".to_string(),
                                    Value::Object(
                                        curve
                                            .speedup
                                            .iter()
                                            .map(|(&c, &s)| (c.to_string(), Value::Float(s)))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).expect("serializes")
        );
    } else {
        let mut last = "";
        for cell in &cells {
            if cell.workload != last {
                println!("== {} ==", cell.workload);
                println!(
                    "{:>6} {:>10} {:>10} {:>10}  floor",
                    "cores", "bound", "measured", "tightness"
                );
                last = &cell.workload;
            }
            println!(
                "{:>6} {:>10} {:>10} {:>9.2}x  {}",
                cell.cores,
                cell.bound.cycles,
                cell.measured,
                cell.tightness(),
                cell.floor()
            );
        }
        for (name, curve) in &curves {
            let samples: Vec<String> = curve
                .speedup
                .iter()
                .map(|(c, s)| format!("{c}:{s:.2}"))
                .collect();
            println!("analytic speedup sketch {name}: {}", samples.join(" "));
        }
    }

    for v in &violations {
        eprintln!("clp-bound: SOUNDNESS VIOLATION: {v}");
    }
    let mut failed = !violations.is_empty();

    if let Some(path) = &args.check {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        let doc: Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| die(&format!("bad json in {path}: {e}")));
        let Value::Array(baseline) = &doc["cells"] else {
            die(&format!("{path} has no `cells` array"));
        };
        let mut mismatches = 0usize;
        for want in baseline {
            let (Some(wl), Some(cores), Some(bound), Some(measured)) = (
                want["workload"].as_str(),
                want["cores"].as_u64(),
                want["bound"].as_u64(),
                want["measured"].as_u64(),
            ) else {
                die(&format!("{path} has a malformed cell"));
            };
            let got = cells
                .iter()
                .find(|c| c.workload == wl && c.cores as u64 == cores);
            match got {
                None => {
                    eprintln!("clp-bound: baseline cell {wl}/{cores} was not computed");
                    mismatches += 1;
                }
                Some(c) if c.bound.cycles != bound || c.measured != measured => {
                    eprintln!(
                        "clp-bound: {wl} on {cores} cores drifted: bound {} \
                         (baseline {bound}), measured {} (baseline {measured}), \
                         tightness {:.2}x",
                        c.bound.cycles,
                        c.measured,
                        c.tightness()
                    );
                    mismatches += 1;
                }
                Some(_) => {}
            }
        }
        if baseline.len() != cells.len() {
            eprintln!(
                "clp-bound: baseline has {} cells, this run produced {}",
                baseline.len(),
                cells.len()
            );
            mismatches += 1;
        }
        if mismatches > 0 {
            eprintln!("clp-bound: {mismatches} baseline mismatch(es) against {path}");
            failed = true;
        } else {
            eprintln!("clp-bound: all {} cells match {path}", cells.len());
        }
    }

    if failed {
        std::process::exit(1);
    }
}
