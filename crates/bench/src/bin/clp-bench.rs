//! clp-bench: the performance-regression harness.
//!
//! ```sh
//! cargo run --release -p clp-bench --bin clp-bench            # write BENCH_suite.json
//! cargo run --release -p clp-bench --bin clp-bench -- \
//!     --check BENCH_baseline.json --threshold 2               # CI regression gate
//! ```
//!
//! Runs the built-in suite at 1/2/4/8/16 cores with the clp-prof layer
//! enabled and emits `BENCH_suite.json` (pinned `clp-bench-v1` schema:
//! cycles, IPC, and the top-down cycle-accounting buckets per cell) in
//! the current directory. With `--check <baseline>` it instead compares
//! every `(workload, cores)` cell's cycle count against the committed
//! baseline and exits 1 if any cell regressed by more than
//! `--threshold` percent (default 2) or disappeared — the CI perf gate.
//! The simulator is deterministic, so the threshold only leaves room
//! for intentional modeling changes, which must re-baseline.
//!
//! `--explain` augments every regressed cell with clp-diff bucket
//! attribution: the cycle-accounting buckets that moved between the
//! baseline's recorded breakdown and the fresh measurement, largest
//! movers first — so a gate failure names *what got slower*, not just
//! that something did. It also reports the cell's clp-bound static
//! cycle floor and how the measured/bound tightness ratio moved, which
//! tells whether the regression ate into genuine headroom or the cell
//! was already near its dataflow/resource floor.
//!
//! `--time` switches to the wall-clock harness: every `(workload,
//! cores)` cell is simulated serially (no harness-level parallelism,
//! no profiling layer) `--reps` times (default 3) and the fastest
//! run's wall time is recorded to `BENCH_wallclock.json`. With
//! `--threads <n>` each cell is also run on the sharded stepper and
//! the harness asserts the cycle counts match the serial run before
//! recording the threaded column. With `--speedup <baseline>` the
//! fresh times are divided into a committed serial-baseline artifact
//! (same schema, recorded from the pre-event-engine stepper — see
//! DESIGN.md "Execution engine") and the per-cell and per-size
//! speedups land in `BENCH_speedup.json`.

use clp_core::{compile_workload, run_compiled_observed, ObsOptions, ProcessorConfig};
use clp_obs::attribute_buckets;
use clp_workloads::suite;
use serde::Value;
use std::sync::mpsc;
use std::thread;

/// The composition sizes of the regression matrix.
const BENCH_SIZES: [usize; 5] = [1, 2, 4, 8, 16];

struct Args {
    out: String,
    check: Option<String>,
    threshold: f64,
    explain: bool,
    time: bool,
    reps: usize,
    threads: usize,
    speedup: Option<String>,
}

fn die(msg: &str) -> ! {
    eprintln!("clp-bench: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_suite.json".to_string(),
        check: None,
        threshold: 2.0,
        explain: false,
        time: false,
        reps: 3,
        threads: 1,
        speedup: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut flag_value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{flag} requires a value")))
        };
        match a.as_str() {
            "--out" => args.out = flag_value("--out"),
            "--check" => args.check = Some(flag_value("--check")),
            "--explain" => args.explain = true,
            "--time" => args.time = true,
            "--speedup" => args.speedup = Some(flag_value("--speedup")),
            "--reps" => {
                let v = flag_value("--reps");
                match v.parse() {
                    Ok(r) if r >= 1 => args.reps = r,
                    _ => die(&format!("--reps wants a count >= 1, got `{v}`")),
                }
            }
            "--threads" => {
                let v = flag_value("--threads");
                match v.parse() {
                    Ok(t) if t >= 1 => args.threads = t,
                    _ => die(&format!("--threads wants a count >= 1, got `{v}`")),
                }
            }
            "--threshold" => {
                let v = flag_value("--threshold");
                match v.parse() {
                    Ok(t) if t >= 0.0 => args.threshold = t,
                    _ => die(&format!("bad --threshold `{v}`")),
                }
            }
            _ => die(&format!("unexpected argument `{a}`")),
        }
    }
    args
}

/// One measured cell: `(cores, cycles, ipc, run-level buckets json)`.
type Cell = (usize, u64, f64, Value);

fn measure_suite() -> Vec<(String, Vec<Cell>)> {
    let workloads = suite::all();
    let (tx, rx) = mpsc::channel();
    thread::scope(|scope| {
        for (idx, w) in workloads.iter().enumerate() {
            let tx = tx.clone();
            scope.spawn(move || {
                let cw = compile_workload(w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
                let obs = ObsOptions {
                    profile: true,
                    ..ObsOptions::default()
                };
                let cells: Vec<Cell> = BENCH_SIZES
                    .iter()
                    .map(|&n| {
                        let r = run_compiled_observed(&cw, &ProcessorConfig::tflex(n), &obs)
                            .unwrap_or_else(|e| panic!("{} on {n} cores: {e}", w.name));
                        let report = r.profile.expect("profiled");
                        let buckets = Value::Object(
                            report
                                .run_buckets()
                                .iter()
                                .map(|(b, c)| (b.label().to_string(), Value::UInt(c)))
                                .collect(),
                        );
                        (n, r.stats.cycles, r.stats.procs[0].ipc(), buckets)
                    })
                    .collect();
                tx.send((idx, (w.name.to_string(), cells)))
                    .expect("receiver alive");
            });
        }
        drop(tx);
        let mut rows: Vec<Option<(String, Vec<Cell>)>> =
            (0..workloads.len()).map(|_| None).collect();
        for (idx, row) in rx {
            rows[idx] = Some(row);
        }
        rows.into_iter().map(|r| r.expect("all sent")).collect()
    })
}

fn to_doc(rows: &[(String, Vec<Cell>)]) -> Value {
    Value::Object(vec![
        (
            "schema".to_string(),
            Value::String("clp-bench-v1".to_string()),
        ),
        (
            "sizes".to_string(),
            Value::Array(BENCH_SIZES.iter().map(|&n| Value::UInt(n as u64)).collect()),
        ),
        (
            "workloads".to_string(),
            Value::Array(
                rows.iter()
                    .map(|(name, cells)| {
                        Value::Object(vec![
                            ("name".to_string(), Value::String(name.clone())),
                            (
                                "runs".to_string(),
                                Value::Array(
                                    cells
                                        .iter()
                                        .map(|(n, cycles, ipc, buckets)| {
                                            Value::Object(vec![
                                                ("cores".to_string(), Value::UInt(*n as u64)),
                                                ("cycles".to_string(), Value::UInt(*cycles)),
                                                ("ipc".to_string(), Value::Float(*ipc)),
                                                ("buckets".to_string(), buckets.clone()),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Baseline cells as `(workload, cores) -> (cycles, buckets)`.
fn baseline_cells(doc: &Value) -> Vec<((String, u64), (u64, Value))> {
    let mut out = Vec::new();
    let Some(workloads) = doc.get("workloads").as_array() else {
        die("baseline has no `workloads` array (expected clp-bench-v1)");
    };
    for w in workloads {
        let Some(name) = w.get("name").as_str() else {
            continue;
        };
        let Some(runs) = w.get("runs").as_array() else {
            continue;
        };
        for r in runs {
            if let (Some(cores), Some(cycles)) = (r.get("cores").as_u64(), r.get("cycles").as_u64())
            {
                out.push((
                    (name.to_string(), cores),
                    (cycles, r.get("buckets").clone()),
                ));
            }
        }
    }
    out
}

/// One timed cell: fastest-of-reps wall clock for the serial engine
/// and (when `--threads` is given) the sharded stepper.
struct TimedCell {
    workload: String,
    cores: usize,
    cycles: u64,
    wall_ms: f64,
    wall_ms_threaded: Option<f64>,
}

/// Runs one cell `reps` times with `threads` workers and returns
/// `(cycles, fastest wall ms)`. The profiling layer stays off so the
/// measurement reflects the engine, not the observer.
fn time_cell(
    cw: &clp_core::CompiledWorkload,
    cores: usize,
    threads: usize,
    reps: usize,
) -> (u64, f64) {
    let mut cfg = ProcessorConfig::tflex(cores);
    cfg.sim.threads = threads;
    let obs = ObsOptions::default();
    let mut cycles = 0;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let r = run_compiled_observed(cw, &cfg, &obs)
            .unwrap_or_else(|e| panic!("{} on {cores} cores: {e}", cw.workload.name));
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        assert!(
            cycles == 0 || cycles == r.stats.cycles,
            "nondeterministic run"
        );
        cycles = r.stats.cycles;
        if wall < best {
            best = wall;
        }
    }
    (cycles, best)
}

/// The `--time` harness: serial cell-by-cell measurement (compilation
/// is parallel, simulation is not, so cells never contend for cores).
fn measure_wallclock(reps: usize, threads: usize) -> Vec<TimedCell> {
    let workloads = suite::all();
    let compiled: Vec<_> = thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| {
                scope.spawn(move || {
                    compile_workload(w).unwrap_or_else(|e| panic!("{}: {e}", w.name))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("compiles"))
            .collect()
    });
    let mut cells = Vec::new();
    for cw in &compiled {
        for &n in &BENCH_SIZES {
            let (cycles, wall_ms) = time_cell(cw, n, 1, reps);
            let wall_ms_threaded = (threads > 1).then(|| {
                let (tc, tw) = time_cell(cw, n, threads, reps);
                assert_eq!(
                    tc, cycles,
                    "{} x{n}: threaded run diverged from serial",
                    cw.workload.name
                );
                tw
            });
            cells.push(TimedCell {
                workload: cw.workload.name.to_string(),
                cores: n,
                cycles,
                wall_ms,
                wall_ms_threaded,
            });
        }
    }
    cells
}

fn time_doc(cells: &[TimedCell], reps: usize, threads: usize) -> Value {
    let mut top = vec![
        (
            "schema".to_string(),
            Value::String("clp-bench-time-v1".to_string()),
        ),
        ("reps".to_string(), Value::UInt(reps as u64)),
    ];
    if threads > 1 {
        top.push(("threads".to_string(), Value::UInt(threads as u64)));
    }
    top.push((
        "cells".to_string(),
        Value::Array(
            cells
                .iter()
                .map(|c| {
                    let mut cell = vec![
                        ("workload".to_string(), Value::String(c.workload.clone())),
                        ("cores".to_string(), Value::UInt(c.cores as u64)),
                        ("cycles".to_string(), Value::UInt(c.cycles)),
                        ("wall_ms".to_string(), Value::Float(c.wall_ms)),
                    ];
                    if let Some(t) = c.wall_ms_threaded {
                        cell.push(("wall_ms_threaded".to_string(), Value::Float(t)));
                    }
                    Value::Object(cell)
                })
                .collect(),
        ),
    ));
    Value::Object(top)
}

/// Baseline wall-clock cells as `(workload, cores) -> wall_ms`.
fn baseline_walls(doc: &Value) -> Vec<((String, u64), f64)> {
    let Some(cells) = doc.get("cells").as_array() else {
        die("speedup baseline has no `cells` array (expected clp-bench-time-v1)");
    };
    cells
        .iter()
        .filter_map(|c| {
            let name = c.get("workload").as_str()?;
            let cores = c.get("cores").as_u64()?;
            let wall = c.get("wall_ms").as_f64()?;
            Some(((name.to_string(), cores), wall))
        })
        .collect()
}

fn speedup_doc(cells: &[TimedCell], baseline: &[((String, u64), f64)], from: &str) -> Value {
    let mut rows = Vec::new();
    // Per-size aggregates over cells present in both measurements:
    // total serial-baseline wall over total fresh wall (the honest
    // "suite sweep at this size is N x faster" number), plus the
    // geometric mean of per-cell speedups.
    let mut by_size: Vec<(u64, f64, f64, f64, usize)> = BENCH_SIZES
        .iter()
        .map(|&n| (n as u64, 0.0, 0.0, 0.0, 0))
        .collect();
    for c in cells {
        let Some((_, base)) = baseline
            .iter()
            .find(|((n, cs), _)| *n == c.workload && *cs == c.cores as u64)
        else {
            continue;
        };
        let speedup = base / c.wall_ms;
        rows.push(Value::Object(vec![
            ("workload".to_string(), Value::String(c.workload.clone())),
            ("cores".to_string(), Value::UInt(c.cores as u64)),
            ("baseline_wall_ms".to_string(), Value::Float(*base)),
            ("wall_ms".to_string(), Value::Float(c.wall_ms)),
            ("speedup".to_string(), Value::Float(speedup)),
        ]));
        let row = by_size
            .iter_mut()
            .find(|(n, ..)| *n == c.cores as u64)
            .expect("bench size");
        row.1 += base;
        row.2 += c.wall_ms;
        row.3 += speedup.ln();
        row.4 += 1;
    }
    Value::Object(vec![
        (
            "schema".to_string(),
            Value::String("clp-bench-speedup-v1".to_string()),
        ),
        ("baseline".to_string(), Value::String(from.to_string())),
        (
            "by_size".to_string(),
            Value::Array(
                by_size
                    .iter()
                    .filter(|(.., count)| *count > 0)
                    .map(|&(n, base, fresh, ln_sum, count)| {
                        Value::Object(vec![
                            ("cores".to_string(), Value::UInt(n)),
                            ("cells".to_string(), Value::UInt(count as u64)),
                            ("baseline_wall_ms".to_string(), Value::Float(base)),
                            ("wall_ms".to_string(), Value::Float(fresh)),
                            ("speedup".to_string(), Value::Float(base / fresh)),
                            (
                                "geomean_speedup".to_string(),
                                Value::Float((ln_sum / count as f64).exp()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("cells".to_string(), Value::Array(rows)),
    ])
}

fn run_time_mode(args: &Args) {
    let cells = measure_wallclock(args.reps, args.threads);
    let doc = time_doc(&cells, args.reps, args.threads);
    let out = "BENCH_wallclock.json";
    std::fs::write(out, serde_json::to_string_pretty(&doc).expect("serializes"))
        .unwrap_or_else(|e| die(&format!("cannot write `{out}`: {e}")));
    println!("clp-bench: wrote {} timed cells to {out}", cells.len());
    if let Some(path) = &args.speedup {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read `{path}`: {e}")));
        let base = serde_json::from_str::<Value>(&text)
            .unwrap_or_else(|e| die(&format!("cannot parse `{path}`: {e}")));
        let doc = speedup_doc(&cells, &baseline_walls(&base), path);
        let out = "BENCH_speedup.json";
        std::fs::write(out, serde_json::to_string_pretty(&doc).expect("serializes"))
            .unwrap_or_else(|e| die(&format!("cannot write `{out}`: {e}")));
        for row in doc.get("by_size").as_array().unwrap_or(&Vec::new()) {
            println!(
                "clp-bench: x{} suite speedup {:.2} (geomean {:.2}) over {} cells",
                row.get("cores").as_u64().unwrap_or(0),
                row.get("speedup").as_f64().unwrap_or(0.0),
                row.get("geomean_speedup").as_f64().unwrap_or(0.0),
                row.get("cells").as_u64().unwrap_or(0),
            );
        }
        println!("clp-bench: wrote speedup vs {path} to {out}");
    }
}

/// The clp-bound static cycle floor of one suite cell, or `None` if
/// the workload vanished or no longer compiles (the regression line
/// itself already reports that kind of drift).
fn static_floor(name: &str, cores: usize) -> Option<u64> {
    let w = suite::by_name(name)?;
    let cw = compile_workload(&w).ok()?;
    let cfg = clp_lint::LintConfig::default();
    Some(clp_lint::bound_program(&cw.edge, &cfg, cores).cycles)
}

fn main() {
    let args = parse_args();
    if args.time {
        run_time_mode(&args);
        return;
    }
    let rows = measure_suite();
    let doc = to_doc(&rows);
    // Always emit the measured suite (also under --check, so CI uploads
    // the fresh numbers a re-baseline can copy from).
    std::fs::write(
        &args.out,
        serde_json::to_string_pretty(&doc).expect("serializes"),
    )
    .unwrap_or_else(|e| die(&format!("cannot write `{}`: {e}", args.out)));
    println!(
        "clp-bench: wrote {} workloads x {:?} cores to {}",
        rows.len(),
        BENCH_SIZES,
        args.out
    );

    if let Some(baseline_path) = &args.check {
        let text = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| die(&format!("cannot read `{baseline_path}`: {e}")));
        let baseline = serde_json::from_str::<Value>(&text)
            .unwrap_or_else(|e| die(&format!("cannot parse `{baseline_path}`: {e}")));
        let mut regressions = Vec::new();
        for ((name, cores), (want, want_buckets)) in baseline_cells(&baseline) {
            let got = rows
                .iter()
                .find(|(n, _)| *n == name)
                .and_then(|(_, cells)| cells.iter().find(|(n, ..)| *n as u64 == cores));
            match got {
                None => regressions.push(format!("{name} x{cores}: cell disappeared")),
                Some((_, got, _, got_buckets)) => {
                    let delta = 100.0 * (*got as f64 / want as f64 - 1.0);
                    if delta > args.threshold {
                        let mut msg = format!(
                            "{name} x{cores}: {want} -> {got} cycles ({delta:+.2}% > {:.2}%)",
                            args.threshold
                        );
                        if args.explain {
                            // Attribute the regression to the buckets
                            // that moved, largest movers first.
                            for e in attribute_buckets(&want_buckets, got_buckets).iter().take(3) {
                                msg.push_str(&format!(
                                    "\n      {}: {} -> {} ({:+})",
                                    e.label,
                                    e.before,
                                    e.after,
                                    e.delta()
                                ));
                            }
                            // How much of the regression is headroom:
                            // tightness against the static cycle floor.
                            if let Some(bound) = static_floor(&name, cores as usize) {
                                msg.push_str(&format!(
                                    "\n      static floor {bound} cycles: tightness \
                                     {:.2}x -> {:.2}x",
                                    want as f64 / bound as f64,
                                    *got as f64 / bound as f64,
                                ));
                            }
                        }
                        regressions.push(msg);
                    }
                }
            }
        }
        if regressions.is_empty() {
            println!(
                "clp-bench: {} cells within {:.2}% of {baseline_path}",
                baseline_cells(&baseline).len(),
                args.threshold
            );
        } else {
            eprintln!("clp-bench: {} regressed cells:", regressions.len());
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
    }
}
