//! clp-bench: the performance-regression harness.
//!
//! ```sh
//! cargo run --release -p clp-bench --bin clp-bench            # write BENCH_suite.json
//! cargo run --release -p clp-bench --bin clp-bench -- \
//!     --check BENCH_baseline.json --threshold 2               # CI regression gate
//! ```
//!
//! Runs the built-in suite at 1/2/4/8/16 cores with the clp-prof layer
//! enabled and emits `BENCH_suite.json` (pinned `clp-bench-v1` schema:
//! cycles, IPC, and the top-down cycle-accounting buckets per cell) in
//! the current directory. With `--check <baseline>` it instead compares
//! every `(workload, cores)` cell's cycle count against the committed
//! baseline and exits 1 if any cell regressed by more than
//! `--threshold` percent (default 2) or disappeared — the CI perf gate.
//! The simulator is deterministic, so the threshold only leaves room
//! for intentional modeling changes, which must re-baseline.
//!
//! `--explain` augments every regressed cell with clp-diff bucket
//! attribution: the cycle-accounting buckets that moved between the
//! baseline's recorded breakdown and the fresh measurement, largest
//! movers first — so a gate failure names *what got slower*, not just
//! that something did.

use clp_core::{compile_workload, run_compiled_observed, ObsOptions, ProcessorConfig};
use clp_obs::attribute_buckets;
use clp_workloads::suite;
use serde::Value;
use std::sync::mpsc;
use std::thread;

/// The composition sizes of the regression matrix.
const BENCH_SIZES: [usize; 5] = [1, 2, 4, 8, 16];

struct Args {
    out: String,
    check: Option<String>,
    threshold: f64,
    explain: bool,
}

fn die(msg: &str) -> ! {
    eprintln!("clp-bench: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_suite.json".to_string(),
        check: None,
        threshold: 2.0,
        explain: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut flag_value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{flag} requires a value")))
        };
        match a.as_str() {
            "--out" => args.out = flag_value("--out"),
            "--check" => args.check = Some(flag_value("--check")),
            "--explain" => args.explain = true,
            "--threshold" => {
                let v = flag_value("--threshold");
                match v.parse() {
                    Ok(t) if t >= 0.0 => args.threshold = t,
                    _ => die(&format!("bad --threshold `{v}`")),
                }
            }
            _ => die(&format!("unexpected argument `{a}`")),
        }
    }
    args
}

/// One measured cell: `(cores, cycles, ipc, run-level buckets json)`.
type Cell = (usize, u64, f64, Value);

fn measure_suite() -> Vec<(String, Vec<Cell>)> {
    let workloads = suite::all();
    let (tx, rx) = mpsc::channel();
    thread::scope(|scope| {
        for (idx, w) in workloads.iter().enumerate() {
            let tx = tx.clone();
            scope.spawn(move || {
                let cw = compile_workload(w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
                let obs = ObsOptions {
                    profile: true,
                    ..ObsOptions::default()
                };
                let cells: Vec<Cell> = BENCH_SIZES
                    .iter()
                    .map(|&n| {
                        let r = run_compiled_observed(&cw, &ProcessorConfig::tflex(n), &obs)
                            .unwrap_or_else(|e| panic!("{} on {n} cores: {e}", w.name));
                        let report = r.profile.expect("profiled");
                        let buckets = Value::Object(
                            report
                                .run_buckets()
                                .iter()
                                .map(|(b, c)| (b.label().to_string(), Value::UInt(c)))
                                .collect(),
                        );
                        (n, r.stats.cycles, r.stats.procs[0].ipc(), buckets)
                    })
                    .collect();
                tx.send((idx, (w.name.to_string(), cells)))
                    .expect("receiver alive");
            });
        }
        drop(tx);
        let mut rows: Vec<Option<(String, Vec<Cell>)>> =
            (0..workloads.len()).map(|_| None).collect();
        for (idx, row) in rx {
            rows[idx] = Some(row);
        }
        rows.into_iter().map(|r| r.expect("all sent")).collect()
    })
}

fn to_doc(rows: &[(String, Vec<Cell>)]) -> Value {
    Value::Object(vec![
        (
            "schema".to_string(),
            Value::String("clp-bench-v1".to_string()),
        ),
        (
            "sizes".to_string(),
            Value::Array(BENCH_SIZES.iter().map(|&n| Value::UInt(n as u64)).collect()),
        ),
        (
            "workloads".to_string(),
            Value::Array(
                rows.iter()
                    .map(|(name, cells)| {
                        Value::Object(vec![
                            ("name".to_string(), Value::String(name.clone())),
                            (
                                "runs".to_string(),
                                Value::Array(
                                    cells
                                        .iter()
                                        .map(|(n, cycles, ipc, buckets)| {
                                            Value::Object(vec![
                                                ("cores".to_string(), Value::UInt(*n as u64)),
                                                ("cycles".to_string(), Value::UInt(*cycles)),
                                                ("ipc".to_string(), Value::Float(*ipc)),
                                                ("buckets".to_string(), buckets.clone()),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Baseline cells as `(workload, cores) -> (cycles, buckets)`.
fn baseline_cells(doc: &Value) -> Vec<((String, u64), (u64, Value))> {
    let mut out = Vec::new();
    let Some(workloads) = doc.get("workloads").as_array() else {
        die("baseline has no `workloads` array (expected clp-bench-v1)");
    };
    for w in workloads {
        let Some(name) = w.get("name").as_str() else {
            continue;
        };
        let Some(runs) = w.get("runs").as_array() else {
            continue;
        };
        for r in runs {
            if let (Some(cores), Some(cycles)) = (r.get("cores").as_u64(), r.get("cycles").as_u64())
            {
                out.push((
                    (name.to_string(), cores),
                    (cycles, r.get("buckets").clone()),
                ));
            }
        }
    }
    out
}

fn main() {
    let args = parse_args();
    let rows = measure_suite();
    let doc = to_doc(&rows);
    // Always emit the measured suite (also under --check, so CI uploads
    // the fresh numbers a re-baseline can copy from).
    std::fs::write(
        &args.out,
        serde_json::to_string_pretty(&doc).expect("serializes"),
    )
    .unwrap_or_else(|e| die(&format!("cannot write `{}`: {e}", args.out)));
    println!(
        "clp-bench: wrote {} workloads x {:?} cores to {}",
        rows.len(),
        BENCH_SIZES,
        args.out
    );

    if let Some(baseline_path) = &args.check {
        let text = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| die(&format!("cannot read `{baseline_path}`: {e}")));
        let baseline = serde_json::from_str::<Value>(&text)
            .unwrap_or_else(|e| die(&format!("cannot parse `{baseline_path}`: {e}")));
        let mut regressions = Vec::new();
        for ((name, cores), (want, want_buckets)) in baseline_cells(&baseline) {
            let got = rows
                .iter()
                .find(|(n, _)| *n == name)
                .and_then(|(_, cells)| cells.iter().find(|(n, ..)| *n as u64 == cores));
            match got {
                None => regressions.push(format!("{name} x{cores}: cell disappeared")),
                Some((_, got, _, got_buckets)) => {
                    let delta = 100.0 * (*got as f64 / want as f64 - 1.0);
                    if delta > args.threshold {
                        let mut msg = format!(
                            "{name} x{cores}: {want} -> {got} cycles ({delta:+.2}% > {:.2}%)",
                            args.threshold
                        );
                        if args.explain {
                            // Attribute the regression to the buckets
                            // that moved, largest movers first.
                            for e in attribute_buckets(&want_buckets, got_buckets).iter().take(3) {
                                msg.push_str(&format!(
                                    "\n      {}: {} -> {} ({:+})",
                                    e.label,
                                    e.before,
                                    e.after,
                                    e.delta()
                                ));
                            }
                        }
                        regressions.push(msg);
                    }
                }
            }
        }
        if regressions.is_empty() {
            println!(
                "clp-bench: {} cells within {:.2}% of {baseline_path}",
                baseline_cells(&baseline).len(),
                args.threshold
            );
        } else {
            eprintln!("clp-bench: {} regressed cells:", regressions.len());
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
    }
}
