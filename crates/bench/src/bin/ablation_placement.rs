//! Ablation: placement-aware instruction scheduling (§4.4 / Figure 4a).
//! Compiles the suite with and without the locality scheduler and
//! compares cycles at 8 and 32 cores.

use clp_bench::{geomean, save_json};
use clp_compiler::{compile, CompileOptions};
use clp_core::{run_compiled, CompiledWorkload, ProcessorConfig};
use clp_workloads::suite;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    cores: usize,
    speedup_from_placement_pct: f64,
}

fn main() {
    let workloads = suite::all();
    let mut series = Vec::new();
    for &n in &[8usize, 32] {
        let mut ratios = Vec::new();
        for w in &workloads {
            let unplaced_opts = CompileOptions {
                placement: false,
                ..Default::default()
            };
            let make = |opts: &CompileOptions| CompiledWorkload {
                golden: w.golden(),
                workload: w.clone(),
                edge: compile(&w.program, opts).unwrap_or_else(|e| panic!("{}: {e}", w.name)),
            };
            let placed = run_compiled(
                &make(&CompileOptions::default()),
                &ProcessorConfig::tflex(n),
            )
            .unwrap_or_else(|e| panic!("{} placed: {e}", w.name));
            let unplaced = run_compiled(&make(&unplaced_opts), &ProcessorConfig::tflex(n))
                .unwrap_or_else(|e| panic!("{} unplaced: {e}", w.name));
            ratios.push(unplaced.stats.cycles as f64 / placed.stats.cycles as f64);
        }
        let pct = 100.0 * (geomean(&ratios) - 1.0);
        println!("{n:>2} cores: locality-aware placement buys {pct:+.1}%");
        series.push(Point {
            cores: n,
            speedup_from_placement_pct: pct,
        });
    }
    save_json("ablation_placement.json", &series);
}
