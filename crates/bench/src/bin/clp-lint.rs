//! Standalone linter CLI: semantic static analysis of EDGE programs.
//!
//! ```sh
//! # Lint one built-in workload (compiled for 32 cores by default):
//! cargo run --release -p clp-bench --bin clp-lint -- mcf
//! # Lint the whole built-in suite:
//! cargo run --release -p clp-bench --bin clp-lint -- --suite
//! # Lint an assembled program from disk:
//! cargo run --release -p clp-bench --bin clp-lint -- --asm prog.edge
//! ```
//!
//! `--json` emits the machine-readable diagnostics report instead of
//! rendered text; `--allow <code>` silences a lint and
//! `--deny <code>` promotes it to an error (codes accept `L001` or
//! slug form, e.g. `dead-dataflow`); `--cores <n>` sets the composition
//! size assumed by the placement and bound lints; `--bound` adds the
//! L5xx static-cycle-bound lints, whose notes name the binding
//! resource (dataflow height vs issue bandwidth vs NoC link) per
//! block. Exits 1 if any error-severity diagnostic remains, 2 on usage
//! or input errors.

use clp_core::compile_workload;
use clp_isa::asm;
use clp_lint::{lint_program, render_report, LintCode, LintConfig, LintReport};
use clp_workloads::suite;

struct Args {
    names: Vec<String>,
    all: bool,
    asm_path: Option<String>,
    json: bool,
    bound: bool,
    cores: usize,
}

fn die(msg: &str) -> ! {
    eprintln!("clp-lint: {msg}");
    std::process::exit(2);
}

fn parse_code(s: &str) -> LintCode {
    LintCode::from_code(s).unwrap_or_else(|| die(&format!("unknown lint code `{s}`")))
}

fn parse_args(cfg: &mut LintConfig) -> Args {
    let mut args = Args {
        names: Vec::new(),
        all: false,
        asm_path: None,
        json: false,
        bound: false,
        cores: 32,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut flag_value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{flag} requires a value")))
        };
        match a.as_str() {
            "--suite" => args.all = true,
            "--asm" => args.asm_path = Some(flag_value("--asm")),
            "--json" => args.json = true,
            "--bound" => args.bound = true,
            "--allow" => {
                cfg.allow(parse_code(&flag_value("--allow")));
            }
            "--deny" => {
                cfg.set_level(parse_code(&flag_value("--deny")), clp_lint::Severity::Error);
            }
            "--cores" => {
                let v = flag_value("--cores");
                match v.parse() {
                    Ok(c) => args.cores = c,
                    Err(_) => die(&format!("bad core count `{v}`")),
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: clp-lint [--suite | --asm FILE | WORKLOAD...] \
                     [--json] [--bound] [--allow CODE] [--deny CODE] [--cores N]"
                );
                println!("\nlint codes:");
                for &c in LintCode::ALL {
                    println!(
                        "  {} {:28} {:7} {}",
                        c.code(),
                        c.slug(),
                        c.default_severity().to_string(),
                        c.describes()
                    );
                }
                std::process::exit(0);
            }
            _ if a.starts_with('-') => die(&format!("unknown flag `{a}`")),
            _ => args.names.push(a),
        }
    }
    args
}

fn main() {
    let mut cfg = LintConfig::default();
    let args = parse_args(&mut cfg);
    cfg.placement_cores = args.cores;

    // (label, program) pairs to lint.
    let mut programs = Vec::new();
    if let Some(path) = &args.asm_path {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read `{path}`: {e}")));
        let prog = asm::parse_program(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")));
        programs.push((path.clone(), prog));
    }
    let names: Vec<String> = if args.all {
        suite::all()
            .into_iter()
            .map(|w| w.name.to_string())
            .collect()
    } else {
        args.names.clone()
    };
    for name in &names {
        let w = suite::by_name(name).unwrap_or_else(|| {
            let all: Vec<&str> = suite::all().into_iter().map(|w| w.name).collect();
            die(&format!(
                "unknown workload `{name}`; available: {}",
                all.join(", ")
            ))
        });
        let cw = compile_workload(&w)
            .unwrap_or_else(|e| die(&format!("{name} does not compile: {e:?}")));
        programs.push((name.clone(), cw.edge));
    }
    if programs.is_empty() {
        die("nothing to lint: pass workload names, --suite, or --asm FILE");
    }

    let mut merged = LintReport::default();
    let mut failed = false;
    for (label, prog) in &programs {
        let mut report = lint_program(prog, &cfg);
        if args.bound {
            report.diagnostics.extend(clp_lint::lint_bounds(prog, &cfg));
        }
        if args.json {
            merged.diagnostics.extend(report.diagnostics.clone());
        } else if report.is_empty() {
            println!("{label}: clean");
        } else {
            print!("{label}:\n{}", render_report(&report, Some(prog)));
        }
        failed |= report.has_errors();
    }
    if args.json {
        println!("{}", merged.to_json());
    }
    std::process::exit(i32::from(failed));
}
