//! Figure 5: relative performance (1/cycles) of the TRIPS configuration
//! normalized to the conventional out-of-order reference, per benchmark.
//!
//! The paper's claim (measured hardware): hand-optimized code runs ~2.7x
//! faster on TRIPS than a Core2; compiled embedded code ~1.5x; SPEC-INT-
//! like code slower. The reproduction checks the *shape*: hand-optimized
//! >> compiled-INT, with compiled-INT at or below parity.

use clp_baseline::{run_baseline, BaselineConfig};
use clp_bench::cli::FigObs;
use clp_bench::{geomean, save_json};
use clp_core::{compile_workload, run_compiled_observed, ProcessorConfig};
use clp_workloads::{suite, WorkloadClass};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    name: &'static str,
    class: String,
    trips_cycles: u64,
    baseline_cycles: u64,
    /// baseline/trips: >1 means the EDGE machine wins.
    relative: f64,
}

fn main() {
    let fig = FigObs::parse_env("fig5");
    let obs = fig.obs_options();
    let mut rows = Vec::new();
    let mut snapshots = Vec::new();
    for w in suite::all() {
        let cw = compile_workload(&w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let trips = run_compiled_observed(&cw, &ProcessorConfig::trips(), &obs)
            .unwrap_or_else(|e| panic!("{} on TRIPS: {e}", w.name));
        if fig.stats_json.is_some() {
            snapshots.push((format!("{}/trips", w.name), trips.snapshot.clone()));
        }
        let base = run_baseline(&w.program, &w.args, &w.init_mem, &BaselineConfig::core2());
        rows.push(Row {
            name: w.name,
            class: format!("{:?}", w.class),
            trips_cycles: trips.cycles(),
            baseline_cycles: base.cycles,
            relative: base.cycles as f64 / trips.cycles() as f64,
        });
    }

    println!("Figure 5: TRIPS performance relative to the conventional OoO reference");
    println!(
        "{:<10} {:>14} {:>12} {:>12} {:>9}",
        "benchmark", "class", "OoO cyc", "TRIPS cyc", "rel"
    );
    for r in &rows {
        println!(
            "{:<10} {:>14} {:>12} {:>12} {:>8.2}x",
            r.name, r.class, r.baseline_cycles, r.trips_cycles, r.relative
        );
    }

    let class_mean = |pred: &dyn Fn(&Row) -> bool| {
        let v: Vec<f64> = rows
            .iter()
            .filter(|r| pred(r))
            .map(|r| r.relative)
            .collect();
        geomean(&v)
    };
    let hand = class_mean(&|r| {
        r.class == format!("{:?}", WorkloadClass::HandOptimized)
            || r.class == format!("{:?}", WorkloadClass::Eembc)
            || r.class == format!("{:?}", WorkloadClass::Versabench)
    });
    let int = class_mean(&|r| r.class == format!("{:?}", WorkloadClass::SpecInt));
    let fp = class_mean(&|r| r.class == format!("{:?}", WorkloadClass::SpecFp));
    println!();
    println!("geomean  hand-optimized+embedded: {hand:.2}x   SPEC-INT-like: {int:.2}x   SPEC-FP-like: {fp:.2}x");
    println!(
        "paper    hand-optimized ~2.7x; EEMBC/Versabench ~1.5x; SPEC INT 0.64x; SPEC FP 0.97x"
    );

    save_json("fig5.json", &rows);
    fig.save_snapshots(snapshots);
}
