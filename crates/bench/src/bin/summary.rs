//! Aggregates the JSON written by the `fig*`/`ablation_*` binaries into
//! one paper-versus-measured summary table. Run the other binaries
//! first (see EXPERIMENTS.md); missing results are reported as such.
//!
//! The fault-injection and recovery subsystems are summarized from their
//! unified stats-registry nodes (`faults/*`, `recovery/*`) via two quick
//! deterministic in-process runs, so those lines never depend on other
//! binaries having been run first.

use clp_bench::results_dir;
use clp_core::{compile_workload, run_workload, ProcessorConfig};
use clp_sim::FaultPlan;
use clp_workloads::suite;
use serde_json::Value;

fn load(name: &str) -> Option<Value> {
    let path = results_dir().join(name);
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

fn main() {
    println!("CLP reproduction summary (see EXPERIMENTS.md for the full discussion)");
    println!();

    match load("fig6.json") {
        Some(Value::Array(rows)) => {
            let speedups: Vec<f64> = rows.iter().filter_map(|r| r["best"].as_f64()).collect();
            let avg_best =
                (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
            let best16: Vec<f64> = rows
                .iter()
                .filter_map(|r| {
                    r["speedups"]
                        .as_array()?
                        .iter()
                        .find_map(|p| (p[0].as_u64() == Some(16)).then(|| p[1].as_f64())?)
                })
                .collect();
            let avg16 = (best16.iter().map(|s| s.ln()).sum::<f64>() / best16.len() as f64).exp();
            println!(
                "Fig 6   AVG x16 speedup {avg16:.2} (paper ~3.5); BEST {avg_best:.2} (paper ~4)"
            );
        }
        _ => println!("Fig 6   [run the fig6 binary first]"),
    }

    match load("fig7.json") {
        Some(Value::Array(rows)) => {
            let small = rows
                .iter()
                .filter(|r| r["peak_size"].as_u64().is_some_and(|p| p <= 2))
                .count();
            println!(
                "Fig 7   perf/area peaks at 1-2 cores for {small}/{} benchmarks (paper: most)",
                rows.len()
            );
        }
        _ => println!("Fig 7   [run the fig7 binary first]"),
    }

    match load("fig10.json") {
        Some(Value::Array(points)) => {
            let gains: Vec<f64> = points
                .iter()
                .filter_map(|p| p["tflex_over_best_cmp_pct"].as_f64())
                .collect();
            let avg = gains.iter().sum::<f64>() / gains.len() as f64;
            let max = gains.iter().fold(f64::MIN, |a, &b| a.max(b));
            println!(
                "Fig 10  TFlex over best fixed CMP: avg {avg:+.1}% max {max:+.1}% (paper +26%/+47%)"
            );
        }
        _ => println!("Fig 10  [run the fig10 binary first]"),
    }

    match load("ablation_handshake.json") {
        Some(Value::Array(points)) => {
            if let Some(p32) = points
                .iter()
                .find(|p| p["cores"].as_u64() == Some(32))
                .and_then(|p| p["overhead_pct"].as_f64())
            {
                println!("§6.4    handshake overhead at 32 cores: {p32:+.1}% (paper <2%)");
            }
        }
        _ => println!("§6.4    [run the ablation_handshake binary first]"),
    }

    match load("ablation_schedule_target.json") {
        Some(Value::Array(points)) => {
            let worst = points
                .iter()
                .filter_map(|p| p["degradation_pct"].as_f64())
                .fold(f64::MIN, f64::max);
            println!("§5      schedule-for-32 penalty on fewer cores: worst {worst:+.1}% (paper: 'little')");
        }
        _ => println!("§5      [run the ablation_schedule_target binary first]"),
    }

    // Fault-injection registry node (`faults/*`): a deterministic seeded
    // chaos run on conv x8, summarized from the snapshot.
    let w = suite::by_name("conv").expect("conv exists");
    let plan = FaultPlan::parse("all=50", 1).expect("valid spec");
    match run_workload(&w, &ProcessorConfig::tflex(8).with_faults(plan)) {
        Ok(r) => println!(
            "Faults  conv x8 @ all=50 seed 1: {} injected ({} noc delays, {} forced nacks, \
             {} flipped predictions), still correct={}",
            r.snapshot.expect("faults/total") as u64,
            r.snapshot.expect("faults/noc_delays") as u64,
            r.snapshot.expect("faults/forced_nacks") as u64,
            r.snapshot.expect("faults/flipped_predictions") as u64,
            r.correct,
        ),
        Err(e) => println!("Faults  [chaos run failed: {e}]"),
    }

    // Recovery registry node (`recovery/*`): kill one core of four
    // mid-run and summarize detection/migration from the snapshot.
    let cw = compile_workload(&w).expect("compiles");
    let clean = clp_core::run_compiled(&cw, &ProcessorConfig::tflex(4)).expect("clean run");
    let region = clp_noc::region_for(&ProcessorConfig::tflex(4).sim.operand_net, 4, 0)
        .expect("region exists");
    let victim = region[2].0;
    let mut plan = FaultPlan::none();
    plan.add_kill(victim, (clean.stats.cycles / 2).max(1))
        .expect("valid kill");
    match clp_core::run_compiled(&cw, &ProcessorConfig::tflex(4).with_faults(plan)) {
        Ok(r) => println!(
            "Recov   conv x4, core {victim} killed mid-run: detection {} cycles, \
             {} blocks flushed, {} B migrated, degraded ipc {:.2}, correct={}",
            r.snapshot.expect("recovery/detection_cycles") as u64,
            r.snapshot.expect("recovery/flushed_blocks") as u64,
            r.snapshot.expect("recovery/migrated_bytes") as u64,
            r.snapshot.expect("recovery/degraded_ipc"),
            r.correct,
        ),
        Err(e) => println!("Recov   [kill run failed: {e}]"),
    }
}
