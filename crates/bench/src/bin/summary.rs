//! Aggregates the JSON written by the `fig*`/`ablation_*` binaries into
//! one paper-versus-measured summary table. Run the other binaries
//! first (see EXPERIMENTS.md); missing results are reported as such.

use clp_bench::results_dir;
use serde_json::Value;

fn load(name: &str) -> Option<Value> {
    let path = results_dir().join(name);
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

fn main() {
    println!("CLP reproduction summary (see EXPERIMENTS.md for the full discussion)");
    println!();

    match load("fig6.json") {
        Some(Value::Array(rows)) => {
            let speedups: Vec<f64> = rows.iter().filter_map(|r| r["best"].as_f64()).collect();
            let avg_best =
                (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
            let best16: Vec<f64> = rows
                .iter()
                .filter_map(|r| {
                    r["speedups"]
                        .as_array()?
                        .iter()
                        .find_map(|p| (p[0].as_u64() == Some(16)).then(|| p[1].as_f64())?)
                })
                .collect();
            let avg16 = (best16.iter().map(|s| s.ln()).sum::<f64>() / best16.len() as f64).exp();
            println!(
                "Fig 6   AVG x16 speedup {avg16:.2} (paper ~3.5); BEST {avg_best:.2} (paper ~4)"
            );
        }
        _ => println!("Fig 6   [run the fig6 binary first]"),
    }

    match load("fig7.json") {
        Some(Value::Array(rows)) => {
            let small = rows
                .iter()
                .filter(|r| r["peak_size"].as_u64().is_some_and(|p| p <= 2))
                .count();
            println!(
                "Fig 7   perf/area peaks at 1-2 cores for {small}/{} benchmarks (paper: most)",
                rows.len()
            );
        }
        _ => println!("Fig 7   [run the fig7 binary first]"),
    }

    match load("fig10.json") {
        Some(Value::Array(points)) => {
            let gains: Vec<f64> = points
                .iter()
                .filter_map(|p| p["tflex_over_best_cmp_pct"].as_f64())
                .collect();
            let avg = gains.iter().sum::<f64>() / gains.len() as f64;
            let max = gains.iter().fold(f64::MIN, |a, &b| a.max(b));
            println!(
                "Fig 10  TFlex over best fixed CMP: avg {avg:+.1}% max {max:+.1}% (paper +26%/+47%)"
            );
        }
        _ => println!("Fig 10  [run the fig10 binary first]"),
    }

    match load("ablation_handshake.json") {
        Some(Value::Array(points)) => {
            if let Some(p32) = points
                .iter()
                .find(|p| p["cores"].as_u64() == Some(32))
                .and_then(|p| p["overhead_pct"].as_f64())
            {
                println!("§6.4    handshake overhead at 32 cores: {p32:+.1}% (paper <2%)");
            }
        }
        _ => println!("§6.4    [run the ablation_handshake binary first]"),
    }

    match load("ablation_schedule_target.json") {
        Some(Value::Array(points)) => {
            let worst = points
                .iter()
                .filter_map(|p| p["degradation_pct"].as_f64())
                .fold(f64::MIN, f64::max);
            println!("§5      schedule-for-32 penalty on fewer cores: worst {worst:+.1}% (paper: 'little')");
        }
        _ => println!("§5      [run the ablation_schedule_target binary first]"),
    }
}
