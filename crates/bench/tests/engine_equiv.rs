//! The standing engine-equivalence suite.
//!
//! The execution engine has three interchangeable drivers: the
//! reference single-step loop (`Machine::run_stepped`), the
//! event-driven skip-ahead loop (`Machine::run`), and the sharded
//! parallel stepper (`SimConfig::threads > 1`). Their contract is
//! *bit-identity*: same cycle counts, same stats registry, same
//! clp-prof cycle accounting, same clp-trend time series — an optimized
//! driver that changes any reported number is a bug, not a speedup.
//!
//! Two test families enforce the contract:
//!
//! * the full benchmark suite across logical-processor sizes 1, 2, 4,
//!   8, and 16, comparing cycles everywhere and full snapshot /
//!   clp-prof / clp-trend JSON on a cross-class subset (the JSON
//!   comparison is byte-level: `serde_json` output is field-ordered,
//!   so equal strings mean equal reports);
//! * a proptest-style loop over seeded generated programs — random op
//!   mixes, loop trip counts, data-dependent branches, and store
//!   patterns from a hand-rolled LCG — so the equivalence claim does
//!   not rest on the curated suite alone. Failures print the seed,
//!   which reproduces the program deterministically.

use clp_compiler::{FunctionBuilder, ProgramBuilder, VReg};
use clp_core::{compile_workload, run_compiled_observed, ObsOptions, ProcessorConfig, RunOutcome};
use clp_isa::Opcode;
use clp_obs::TrendOptions;
use clp_workloads::{CheckSpec, IlpClass, Workload, WorkloadClass};

const SIZES: [usize; 5] = [1, 2, 4, 8, 16];

/// Shard width for the threaded leg. Three does not divide the mesh
/// evenly, so the last shard is ragged — the interesting case.
const THREADS: usize = 3;

/// Runs `cw` on `cores` with the given driver and full observability.
fn run_with(
    cw: &clp_core::CompiledWorkload,
    cores: usize,
    stepped: bool,
    threads: usize,
) -> RunOutcome {
    let mut cfg = ProcessorConfig::tflex(cores);
    cfg.sim.threads = threads;
    let obs = ObsOptions {
        profile: true,
        trend: Some(TrendOptions::default()),
        stepped,
        ..ObsOptions::default()
    };
    let r = run_compiled_observed(cw, &cfg, &obs)
        .unwrap_or_else(|e| panic!("{} on {cores} cores: {e}", cw.workload.name));
    assert!(
        r.correct,
        "{} on {cores} cores: wrong output",
        cw.workload.name
    );
    r
}

/// Renders every report of a run as one comparable string.
fn reports(r: &RunOutcome) -> (String, String, String) {
    let snapshot = serde_json::to_string(&r.snapshot).expect("serializes");
    let profile = r
        .profile
        .as_ref()
        .map(|p| serde_json::to_string(&p.to_json_value()).expect("serializes"))
        .unwrap_or_default();
    let trend = r.trend.as_ref().map(|t| t.to_json()).unwrap_or_default();
    (snapshot, profile, trend)
}

/// Asserts full bit-identity (cycles + all three reports) between the
/// reference stepper and both optimized drivers.
fn assert_equivalent(cw: &clp_core::CompiledWorkload, cores: usize, label: &str) {
    let reference = run_with(cw, cores, true, 1);
    let skip = run_with(cw, cores, false, 1);
    let sharded = run_with(cw, cores, false, THREADS);
    for (name, run) in [("skip-ahead", &skip), ("sharded", &sharded)] {
        assert_eq!(
            reference.stats.cycles, run.stats.cycles,
            "{label} x{cores}: {name} cycle count diverged"
        );
        assert_eq!(
            reference.ret, run.ret,
            "{label} x{cores}: {name} return value diverged"
        );
        let (want_snap, want_prof, want_trend) = reports(&reference);
        let (snap, prof, trend) = reports(run);
        assert_eq!(
            want_snap, snap,
            "{label} x{cores}: {name} snapshot diverged"
        );
        assert_eq!(
            want_prof, prof,
            "{label} x{cores}: {name} clp-prof diverged"
        );
        assert_eq!(
            want_trend, trend,
            "{label} x{cores}: {name} clp-trend diverged"
        );
    }
}

/// Full suite, every size: cycles and return values must match across
/// all three drivers. (Reports are compared on the subset below — this
/// test keeps the full sweep affordable while still covering every
/// workload's cycle count five times over.)
#[test]
fn suite_cycles_identical_across_engines() {
    for w in clp_workloads::suite::all() {
        let cw = compile_workload(&w).expect("compiles");
        for &n in &SIZES {
            let reference = run_with(&cw, n, true, 1);
            let skip = run_with(&cw, n, false, 1);
            let sharded = run_with(&cw, n, false, THREADS);
            for (name, run) in [("skip-ahead", &skip), ("sharded", &sharded)] {
                assert_eq!(
                    reference.stats.cycles, run.stats.cycles,
                    "{} x{n}: {name} cycle count diverged",
                    w.name
                );
                assert_eq!(
                    reference.ret, run.ret,
                    "{} x{n}: {name} return value diverged",
                    w.name
                );
            }
        }
    }
}

/// One workload per class, every size: full report bit-identity
/// (snapshot, clp-prof, clp-trend JSON byte-for-byte).
#[test]
fn reports_identical_across_engines() {
    for name in ["conv", "mcf", "equake", "a2time", "802.11b"] {
        let w = clp_workloads::suite::by_name(name).expect("exists");
        let cw = compile_workload(&w).expect("compiles");
        for &n in &SIZES {
            assert_equivalent(&cw, n, name);
        }
    }
}

// ---- generated programs ----------------------------------------------

/// Deterministic split-free LCG; same constants as the workload suite's
/// data generator.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 11
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

const GEN_IN: u64 = 0x1_0000_0000;
const GEN_OUT: u64 = 0x1_0001_0000;

/// Builds a random-but-deterministic workload from `seed`: a loop over
/// an input array whose body chains 2–7 random ALU ops, optionally
/// forks on a data-dependent test (exercising predication and the
/// flush path when the predictor guesses wrong), and stores an
/// accumulator per element.
fn generated_workload(seed: u64) -> Workload {
    let mut rng = Lcg::new(seed);
    let n = 24 + rng.below(40) as usize;
    let ops = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Xor,
        Opcode::And,
        Opcode::Or,
    ];
    let chain = 2 + rng.below(6) as usize;
    let with_branch = rng.below(2) == 1;
    let op_picks: Vec<Opcode> = (0..chain)
        .map(|_| ops[rng.below(ops.len() as u64) as usize])
        .collect();

    let mut f = FunctionBuilder::new("gen", 2);
    let input = f.param(0);
    let out = f.param(1);
    let total = f.vreg();
    f.c_into(total, 0);
    let n_reg = f.c(n as i64);
    let i = f.c(0);
    let (head, body, exit) = (f.new_block(), f.new_block(), f.new_block());
    f.jump(head);
    f.switch_to(head);
    let done = f.bin(Opcode::Tge, i, n_reg);
    f.branch(done, exit, body);
    f.switch_to(body);
    let eight = f.c(8);
    let off = f.bin(Opcode::Mul, i, eight);
    let addr = f.bin(Opcode::Add, input, off);
    let x = f.load(addr, 0);
    let mut acc: VReg = x;
    for &op in &op_picks {
        let k = f.c((1 + rng.below(97)) as i64);
        acc = f.bin(op, acc, k);
    }
    if with_branch {
        // Data-dependent fork: odd elements take a different op chain,
        // so the next-block predictor is wrong on a pseudo-random
        // subset of iterations and the engines must agree on every
        // resulting flush.
        let one = f.c(1);
        let odd = f.bin(Opcode::And, x, one);
        let (odd_bb, even_bb, join) = (f.new_block(), f.new_block(), f.new_block());
        let merged = f.vreg();
        f.branch(odd, odd_bb, even_bb);
        f.switch_to(odd_bb);
        let t = f.bin(Opcode::Xor, acc, x);
        f.assign(merged, t);
        f.jump(join);
        f.switch_to(even_bb);
        let t = f.bin(Opcode::Add, acc, i);
        f.assign(merged, t);
        f.jump(join);
        f.switch_to(join);
        acc = merged;
    }
    let dst = f.bin(Opcode::Add, out, off);
    f.store(dst, 0, acc);
    let new_total = f.bin(Opcode::Add, total, acc);
    f.assign(total, new_total);
    let one = f.c(1);
    let next = f.bin(Opcode::Add, i, one);
    f.assign(i, next);
    f.jump(head);
    f.switch_to(exit);
    f.ret(Some(total));

    let mut pb = ProgramBuilder::new();
    let id = pb.add_function(f.finish());
    let words: Vec<u64> = (0..n + 1).map(|_| rng.below(1 << 20)).collect();
    Workload {
        name: Box::leak(format!("gen{seed}").into_boxed_str()),
        class: WorkloadClass::HandOptimized,
        ilp: IlpClass::Low,
        program: pb.finish(id),
        args: vec![GEN_IN, GEN_OUT],
        init_mem: vec![(GEN_IN, words)],
        check: CheckSpec {
            check_ret: true,
            regions: vec![(GEN_OUT, n)],
        },
    }
}

/// Generated programs, every size, full report bit-identity. Ten seeds
/// keep the runtime modest; any seed reproduces its program exactly.
#[test]
fn generated_programs_identical_across_engines() {
    for seed in 0..10u64 {
        let w = generated_workload(seed);
        let cw =
            compile_workload(&w).unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}"));
        for &n in &SIZES {
            assert_equivalent(&cw, n, w.name);
        }
    }
}
