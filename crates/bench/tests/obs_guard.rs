//! Guards the cost of the observability hooks.
//!
//! Four properties: (1) attaching any sink must not perturb the
//! simulated machine — cycle counts are bit-identical with tracing on,
//! off, or null; (2) a `NullSink` run's wall-clock throughput stays
//! within noise of a tracer-off run (the hooks are one branch, not a
//! call); (3) the clp-prof layer's recording and backward walk stay
//! within a generous wall-clock factor of the bare run (the CI guard on
//! the `obs_overhead` bench's profiler-on column); (4) the clp-trend
//! recorder is equally free — cycle counts with trend recording on stay
//! bit-identical to the pinned goldens *and* to the committed
//! `BENCH_baseline.json` cells, and its wall-clock cost stays within
//! noise of the profiler-on run.

use clp_core::{compile_workload, run_compiled_observed, ObsOptions, ProcessorConfig};
use clp_obs::{NullSink, RingRecorder, Tracer, TrendOptions};
use serde::Value;
use std::time::Instant;

fn run_with(obs: &ObsOptions) -> u64 {
    let w = clp_workloads::suite::by_name("conv").expect("exists");
    let cw = compile_workload(&w).expect("compiles");
    let r = run_compiled_observed(&cw, &ProcessorConfig::tflex(8), obs).expect("runs");
    assert!(r.correct);
    r.cycles()
}

#[test]
fn tracing_never_perturbs_the_simulation() {
    let off = run_with(&ObsOptions::default());
    let null = run_with(&ObsOptions {
        tracer: Tracer::new(NullSink),
        ..ObsOptions::default()
    });
    let ring = run_with(&ObsOptions {
        tracer: Tracer::new(RingRecorder::new(4096)),
        sample_every: Some(500),
        ..ObsOptions::default()
    });
    let profiled = run_with(&ObsOptions {
        profile: true,
        ..ObsOptions::default()
    });
    assert_eq!(off, null, "NullSink changed the simulated cycle count");
    assert_eq!(
        off, ring,
        "recording sink changed the simulated cycle count"
    );
    assert_eq!(off, profiled, "clp-prof changed the simulated cycle count");
}

#[test]
fn null_sink_throughput_within_noise_of_off() {
    let w = clp_workloads::suite::by_name("conv").expect("exists");
    let cw = compile_workload(&w).expect("compiles");
    let cfg = ProcessorConfig::tflex(8);
    let off_obs = ObsOptions::default();
    let null_obs = ObsOptions {
        tracer: Tracer::new(NullSink),
        ..ObsOptions::default()
    };

    let time = |obs: &ObsOptions| {
        // Warm-up, then best-of-3 to shed scheduler noise.
        let _ = run_compiled_observed(&cw, &cfg, obs).expect("runs");
        (0..3)
            .map(|_| {
                let t = Instant::now();
                let _ = run_compiled_observed(&cw, &cfg, obs).expect("runs");
                t.elapsed()
            })
            .min()
            .expect("nonempty")
    };

    let off = time(&off_obs);
    let null = time(&null_obs);
    // Generous noise bound: the hooks add one branch per site, which is
    // well under measurement jitter; 1.5x catches a real regression
    // (e.g. events constructed on the disabled path) without flaking.
    let ratio = null.as_secs_f64() / off.as_secs_f64();
    assert!(
        ratio < 1.5,
        "NullSink run {ratio:.2}x slower than tracer-off ({null:?} vs {off:?})"
    );
}

#[test]
fn profiler_overhead_bounded() {
    let w = clp_workloads::suite::by_name("conv").expect("exists");
    let cw = compile_workload(&w).expect("compiles");
    let cfg = ProcessorConfig::tflex(8);
    let off_obs = ObsOptions::default();
    let prof_obs = ObsOptions {
        profile: true,
        ..ObsOptions::default()
    };

    let time = |obs: &ObsOptions| {
        let _ = run_compiled_observed(&cw, &cfg, obs).expect("runs");
        (0..3)
            .map(|_| {
                let t = Instant::now();
                let _ = run_compiled_observed(&cw, &cfg, obs).expect("runs");
                t.elapsed()
            })
            .min()
            .expect("nonempty")
    };

    let off = time(&off_obs);
    let prof = time(&prof_obs);
    // The recording is O(1) per event and the walk is O(chain) per
    // committed block; real overhead is a few percent. 2.5x (plus a 5 ms
    // absolute floor for very fast runs) only trips on a hot-path
    // mistake — e.g. cloning a block profile or walking per cycle.
    let cap = off.as_secs_f64() * 2.5 + 0.005;
    assert!(
        prof.as_secs_f64() < cap,
        "clp-prof run too slow: {prof:?} vs bare {off:?}"
    );
}

fn trend_cycles(name: &str, cores: usize) -> u64 {
    let w = clp_workloads::suite::by_name(name).expect("exists");
    let cw = compile_workload(&w).expect("compiles");
    let obs = ObsOptions {
        trend: Some(TrendOptions::default()),
        ..ObsOptions::default()
    };
    let r = run_compiled_observed(&cw, &ProcessorConfig::tflex(cores), &obs).expect("runs");
    assert!(r.correct);
    r.cycles()
}

/// Trend recording is pure observation: with the recorder (and the
/// profiler it pulls in) attached, cycle counts stay bit-identical to
/// the pre-observability goldens that gate the fig5/TRIPS numbers.
#[test]
fn trend_never_perturbs_pinned_goldens() {
    let goldens: [(&str, usize, u64); 3] = [
        ("conv", 4, 9_383),
        ("conv", 32, 7_085),
        ("bezier", 32, 5_012),
    ];
    for (name, cores, want) in goldens {
        assert_eq!(
            trend_cycles(name, cores),
            want,
            "{name} x{cores}: trend recording perturbed the cycle count"
        );
    }
}

/// The same bit-identity against every committed `BENCH_baseline.json`
/// cell for a representative workload subset: the perf baseline and the
/// trend layer agree on the machine they measure.
#[test]
fn trend_cycles_match_the_bench_baseline() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json");
    let text = std::fs::read_to_string(path).expect("BENCH_baseline.json is committed");
    let doc = serde_json::from_str::<Value>(&text).expect("baseline parses");
    let workloads = doc.get("workloads").as_array().expect("clp-bench-v1 shape");
    let mut checked = 0;
    for w in workloads {
        let name = w.get("name").as_str().expect("named workload");
        if !["conv", "tblook", "bezier"].contains(&name) {
            continue;
        }
        for r in w.get("runs").as_array().expect("runs array") {
            let cores = r.get("cores").as_u64().expect("cores") as usize;
            if ![1, 4, 16].contains(&cores) {
                continue;
            }
            let want = r.get("cycles").as_u64().expect("cycles");
            assert_eq!(
                trend_cycles(name, cores),
                want,
                "{name} x{cores}: trend-on run diverged from BENCH_baseline.json"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 9, "baseline subset went missing");
}

/// The trend recorder's marginal wall-clock cost over a profiler-on run
/// is one compare per cycle plus a columnar push per interval —
/// measured under 5%. The 1.5x cap (plus a 5 ms floor for fast runs)
/// only trips on a hot-path mistake, e.g. sampling the stats registry
/// every cycle instead of every interval.
#[test]
fn trend_overhead_bounded() {
    let w = clp_workloads::suite::by_name("conv").expect("exists");
    let cw = compile_workload(&w).expect("compiles");
    let cfg = ProcessorConfig::tflex(8);
    let prof_obs = ObsOptions {
        profile: true,
        ..ObsOptions::default()
    };
    let trend_obs = ObsOptions {
        trend: Some(TrendOptions::default()),
        ..ObsOptions::default()
    };

    let time = |obs: &ObsOptions| {
        let _ = run_compiled_observed(&cw, &cfg, obs).expect("runs");
        (0..3)
            .map(|_| {
                let t = Instant::now();
                let _ = run_compiled_observed(&cw, &cfg, obs).expect("runs");
                t.elapsed()
            })
            .min()
            .expect("nonempty")
    };

    let prof = time(&prof_obs);
    let trend = time(&trend_obs);
    let cap = prof.as_secs_f64() * 1.5 + 0.005;
    assert!(
        trend.as_secs_f64() < cap,
        "clp-trend run too slow: {trend:?} vs profiler-on {prof:?}"
    );
}
