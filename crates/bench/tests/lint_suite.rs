//! Pinned acceptance test for the static-analysis gate: every built-in
//! workload compiles to an EDGE program with **zero error-severity**
//! diagnostics. Error lints are sound (they name a real deadlock or
//! memory-order violation on a real path), so a failure here means
//! codegen regressed, not that the linter is noisy.

use clp_core::compile_workload;
use clp_lint::{lint_program, render_report, LintCode, LintConfig, Severity};
use clp_workloads::suite;

#[test]
fn full_suite_lints_with_zero_errors() {
    let mut checked = 0;
    for w in suite::all() {
        let cw = compile_workload(&w).expect("suite workloads compile");
        let report = lint_program(&cw.edge, &LintConfig::default());
        let errors: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(
            errors.is_empty(),
            "{}: {} error lint(s):\n{}",
            w.name,
            errors.len(),
            render_report(&report, Some(&cw.edge))
        );
        checked += 1;
    }
    assert!(checked >= 20, "suite unexpectedly small: {checked}");
}

#[test]
fn compile_gate_passes_the_whole_suite() {
    // The compiler-integrated gate must agree with the standalone pass.
    for w in suite::all() {
        let opts = clp_compiler::CompileOptions::default();
        clp_compiler::compile_with_lints(&w.program, &opts, &LintConfig::default())
            .unwrap_or_else(|e| panic!("{} rejected by the lint gate: {e}", w.name));
    }
}

#[test]
fn known_benign_warnings_only() {
    // The suite is allowed exactly two warning classes today: L403
    // (path-insensitive maybe-uninit reads of caller scratch registers)
    // and L201 (dead codegen artifacts). Anything new should be looked
    // at, not silently accumulated.
    let allowed = [
        LintCode::MaybeUninitRead,
        LintCode::DeadDataflow,
        LintCode::DeepFanoutTree,
        LintCode::LongOperandRoute,
    ];
    for w in suite::all() {
        let cw = compile_workload(&w).expect("compiles");
        let report = lint_program(&cw.edge, &LintConfig::default());
        for d in &report.diagnostics {
            assert!(
                allowed.contains(&d.code),
                "{}: unexpected diagnostic class {}: {}",
                w.name,
                d.code,
                d.message
            );
        }
    }
}
